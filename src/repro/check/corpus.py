"""Repro files and the seed-corpus regression runner.

A *repro file* is one minimized fault schedule frozen as JSON, together
with the expectation it must keep meeting:

* ``expect: "pass"`` — a schedule that once looked dangerous (or
  exercised a fixed bug) and must now replay cleanly under every listed
  algorithm; the committed corpus under ``tests/corpus/`` is of this
  kind and runs in CI forever.
* ``expect: "violation"`` — a schedule that must keep failing; used by
  fixtures with deliberately broken algorithms to prove the harness
  still detects what it is supposed to detect.

Serialization is canonical (sorted keys), so regenerating a repro from
the same plan yields byte-identical files — diffs stay reviewable.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.check.differential import DifferentialReport, check_plan
from repro.check.plan import (
    PLAN_FORMAT_VERSION,
    PlanError,
    SchedulePlan,
    plan_from_dict,
    plan_to_dict,
)

REPRO_KIND = "repro.check/repro"
EXPECT_PASS = "pass"
EXPECT_VIOLATION = "violation"


@dataclass(frozen=True)
class ReproFile:
    """One repro: the plan, who to run it under, and the expectation."""

    plan: SchedulePlan
    #: Algorithms to replay; None means every registered algorithm.
    algorithms: Optional[Tuple[str, ...]] = None
    expect: str = EXPECT_PASS
    note: str = ""

    def __post_init__(self) -> None:
        if self.expect not in (EXPECT_PASS, EXPECT_VIOLATION):
            raise PlanError(f"unknown expectation {self.expect!r}")
        if self.algorithms is not None:
            # Canonical order: serialization is sorted, so equality
            # must not depend on how the caller listed the names.
            object.__setattr__(self, "algorithms", tuple(sorted(self.algorithms)))


def repro_to_dict(repro: ReproFile) -> Dict[str, Any]:
    """JSON-compatible form of a repro file."""
    return {
        "kind": REPRO_KIND,
        "format": PLAN_FORMAT_VERSION,
        "plan": plan_to_dict(repro.plan),
        "algorithms": sorted(repro.algorithms) if repro.algorithms else None,
        "expect": repro.expect,
        "note": repro.note,
    }


def repro_from_dict(data: Mapping[str, Any]) -> ReproFile:
    """Inverse of :func:`repro_to_dict`."""
    if data.get("kind") != REPRO_KIND:
        raise PlanError(f"not a repro file (kind={data.get('kind')!r})")
    algorithms = data.get("algorithms")
    return ReproFile(
        plan=plan_from_dict(data["plan"]),
        algorithms=tuple(algorithms) if algorithms else None,
        expect=str(data.get("expect", EXPECT_PASS)),
        note=str(data.get("note", "")),
    )


def write_repro(path: Path, repro: ReproFile) -> Path:
    """Serialize one repro canonically; returns the written path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    text = json.dumps(repro_to_dict(repro), sort_keys=True, indent=2) + "\n"
    path.write_text(text, encoding="utf-8")
    return path


def load_repro(path: Path) -> ReproFile:
    """Parse one repro file."""
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise PlanError(f"{path}: not valid JSON ({error})") from error
    return repro_from_dict(data)


def run_repro(
    repro: ReproFile, algorithms: Optional[Sequence[str]] = None
) -> Tuple[bool, DifferentialReport]:
    """Replay one repro; returns (expectation met, full report).

    ``algorithms`` overrides the file's own list (the CLI's
    ``--algorithms`` flag); otherwise the file decides.
    """
    names = (
        list(algorithms)
        if algorithms is not None
        else (list(repro.algorithms) if repro.algorithms else None)
    )
    report = check_plan(repro.plan, names)
    met = report.ok if repro.expect == EXPECT_PASS else not report.ok
    return met, report


@dataclass
class CorpusResult:
    """Outcome of replaying a whole corpus directory."""

    directory: Path
    #: (path, expectation met, report) per repro, in sorted path order.
    entries: List[Tuple[Path, bool, DifferentialReport]] = field(
        default_factory=list
    )

    @property
    def ok(self) -> bool:
        return all(met for _, met, _ in self.entries)

    @property
    def regressions(self) -> List[Tuple[Path, DifferentialReport]]:
        return [(path, report) for path, met, report in self.entries if not met]

    def describe(self) -> str:
        """Human-readable corpus summary."""
        lines = [
            f"corpus {self.directory}: {len(self.entries)} repros, "
            f"{len(self.regressions)} regressions"
        ]
        for path, report in self.regressions:
            lines.append(f"REGRESSION {path.name}:\n{report.describe()}")
        return "\n".join(lines)


def run_corpus(
    directory: Path, algorithms: Optional[Sequence[str]] = None
) -> CorpusResult:
    """Replay every ``*.json`` repro in a directory, sorted by name.

    An unreadable or malformed file counts as a regression — a corpus
    that silently skips entries is not a regression suite.
    """
    directory = Path(directory)
    result = CorpusResult(directory=directory)
    for path in sorted(directory.glob("*.json")):
        try:
            repro = load_repro(path)
        except PlanError as error:
            result.entries.append(
                (
                    path,
                    False,
                    DifferentialReport(
                        plan=SchedulePlan(n_processes=2, steps=()),
                        divergences=[f"unloadable repro: {error}"],
                    ),
                )
            )
            continue
        met, report = run_repro(repro, algorithms)
        result.entries.append((path, met, report))
    return result
