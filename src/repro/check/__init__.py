"""Differential fuzzing, failure minimization and regression corpora.

The production correctness stack on top of the simulator:

* :mod:`repro.check.plan` — explicit, replayable fault schedules and
  their canonical JSON (the repro-file format);
* :mod:`repro.check.differential` — run one plan under every registered
  algorithm with full invariant checking, a topology oracle, and
  family-chain agreement;
* :mod:`repro.check.fuzzer` — coverage of the random fault space from
  one master seed, fully deterministic;
* :mod:`repro.check.shrink` — delta-debugging a violating schedule to a
  locally minimal reproducer;
* :mod:`repro.check.corpus` — committed repro files replayed in CI.

CLI: ``repro-experiments check`` (fuzz), ``check --replay FILE``,
``check --corpus DIR``.
"""

from repro.check.corpus import (
    EXPECT_PASS,
    EXPECT_VIOLATION,
    CorpusResult,
    ReproFile,
    load_repro,
    run_corpus,
    run_repro,
    write_repro,
)
from repro.check.differential import (
    AlgorithmVerdict,
    DifferentialReport,
    check_plan,
    run_plan,
)
from repro.check.fuzzer import (
    FuzzConfig,
    FuzzFailure,
    FuzzResult,
    classify_report,
    fuzz,
    generate_plan,
)
from repro.check.plan import (
    PlanError,
    PlanStep,
    SchedulePlan,
    plan_from_json,
    plan_from_recorded,
    plan_to_json,
    validate_plan,
)
from repro.check.shrink import ShrinkResult, minimize, violation_predicate

__all__ = [
    "EXPECT_PASS",
    "EXPECT_VIOLATION",
    "AlgorithmVerdict",
    "CorpusResult",
    "DifferentialReport",
    "FuzzConfig",
    "FuzzFailure",
    "FuzzResult",
    "PlanError",
    "PlanStep",
    "ReproFile",
    "SchedulePlan",
    "ShrinkResult",
    "check_plan",
    "classify_report",
    "fuzz",
    "generate_plan",
    "load_repro",
    "minimize",
    "plan_from_json",
    "plan_from_recorded",
    "plan_to_json",
    "run_corpus",
    "run_plan",
    "run_repro",
    "validate_plan",
    "violation_predicate",
    "write_repro",
]
