"""Explicit, replayable fault schedules — the repro-file format.

A :class:`SchedulePlan` is a fault schedule with nothing left to
chance: the process count, and for every injected change its quiet-gap
prefix, the concrete :class:`~repro.net.changes.ConnectivityChange`,
and the exact late-set of the mid-round cut.  Replaying a plan through
:meth:`repro.sim.driver.DriverLoop.execute_schedule` is bit-for-bit
deterministic, whatever RNG the driver holds — which is what makes
plans shrinkable (``repro.check.shrink``), diffable across algorithms
(``repro.check.differential``) and committable as regression seeds
(``repro.check.corpus``).

Plans serialize to JSON with sorted keys, so the same plan always
produces the same bytes; the canonical JSON doubles as a dedup key.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.errors import ReproError, TopologyError
from repro.faults.model import (
    FaultModel,
    FaultModelError,
    faults_from_dict,
    faults_to_dict,
)
from repro.net.changes import (
    ConnectivityChange,
    CrashChange,
    MergeChange,
    PartitionChange,
    RecoverChange,
    affected_processes,
    apply_change,
)
from repro.net.topology import Topology
from repro.types import Members

#: Version stamp of the plan/repro JSON layout.
PLAN_FORMAT_VERSION = 1


class PlanError(ReproError):
    """A schedule plan is malformed or infeasible."""


@dataclass(frozen=True)
class PlanStep:
    """One scripted change: quiet gap, the change, the mid-round cut."""

    gap: int
    change: ConnectivityChange
    late: Members

    def describe(self) -> str:
        """Short label, e.g. ``gap=1 partition(moved={2,3}) late=[2]``."""
        return f"gap={self.gap} {self.change.describe()} late={sorted(self.late)}"


@dataclass(frozen=True)
class SchedulePlan:
    """A complete explicit fault schedule for one system.

    ``faults`` is the optional adversarial fault model the plan runs
    under (:class:`repro.faults.FaultModel`).  A default-constructed
    model is normalized to ``None`` so a clean plan has exactly one
    representation — and therefore exactly one canonical JSON, byte-
    identical to the pre-fault format.
    """

    n_processes: int
    steps: Tuple[PlanStep, ...]
    faults: Optional[FaultModel] = None

    def __post_init__(self) -> None:
        if self.faults is not None and self.faults.is_default():
            object.__setattr__(self, "faults", None)

    def cost(self) -> Tuple[int, int, int]:
        """Shrink ordering: fewer steps < fewer processes < less detail.

        Every transformation the minimizer accepts strictly decreases
        this triple, which is what guarantees termination and gives
        "smaller" a concrete meaning in the acceptance criteria.  Fault
        knobs count as detail, so relaxing a knob (lower loss, milder
        Byzantine behaviour, persistent instead of amnesiac) is a
        strict shrink too.
        """
        detail = sum(
            step.gap + len(step.late) + _change_weight(step.change)
            for step in self.steps
        )
        if self.faults is not None:
            detail += self.faults.cost_detail()
        return (len(self.steps), self.n_processes, detail)

    def describe(self) -> str:
        """One line per step, for failure reports and traces."""
        header = f"{self.n_processes} processes, {len(self.steps)} changes"
        body = "; ".join(step.describe() for step in self.steps)
        return f"{header}: {body}" if body else header


def _change_weight(change: ConnectivityChange) -> int:
    """Set-size contribution of a change to the shrink cost."""
    if isinstance(change, PartitionChange):
        return len(change.component) + len(change.moved)
    if isinstance(change, MergeChange):
        return len(change.first) + len(change.second)
    return 1  # crash / recover


# ----------------------------------------------------------------------
# Validation.
# ----------------------------------------------------------------------


def validate_plan(plan: SchedulePlan) -> Topology:
    """Replay a plan's topology evolution; returns the final topology.

    Raises :class:`PlanError` when any step is infeasible — a partition
    of a non-component, a gap below zero, a late process outside the
    step's affected set.  Topology evolution is algorithm-independent,
    so the returned topology is also an oracle: every algorithm
    replaying the plan must end on exactly these components.
    """
    if plan.n_processes < 2:
        raise PlanError("a plan needs at least two processes")
    topology = Topology.fully_connected(plan.n_processes)
    for index, step in enumerate(plan.steps):
        if step.gap < 0:
            raise PlanError(f"step {index}: negative gap {step.gap}")
        try:
            affected = affected_processes(step.change, topology)
            next_topology = apply_change(topology, step.change)
        except TopologyError as error:
            raise PlanError(
                f"step {index} ({step.change.describe()}) infeasible: {error}"
            ) from error
        stray = frozenset(step.late) - frozenset(affected)
        if stray:
            raise PlanError(
                f"step {index}: late processes {sorted(stray)} are not "
                "affected by the change"
            )
        topology = next_topology
    if plan.faults is not None:
        try:
            plan.faults.validate_for(plan.n_processes)
        except FaultModelError as error:
            raise PlanError(f"fault model infeasible: {error}") from error
    return topology


# ----------------------------------------------------------------------
# JSON codec.
# ----------------------------------------------------------------------

_CHANGE_KINDS = {
    PartitionChange: "partition",
    MergeChange: "merge",
    CrashChange: "crash",
    RecoverChange: "recover",
}


def change_to_dict(change: ConnectivityChange) -> Dict[str, Any]:
    """JSON-compatible form of a connectivity change."""
    if isinstance(change, PartitionChange):
        return {
            "kind": "partition",
            "component": sorted(change.component),
            "moved": sorted(change.moved),
        }
    if isinstance(change, MergeChange):
        return {
            "kind": "merge",
            "first": sorted(change.first),
            "second": sorted(change.second),
        }
    if isinstance(change, CrashChange):
        return {"kind": "crash", "pid": change.pid}
    if isinstance(change, RecoverChange):
        return {"kind": "recover", "pid": change.pid}
    raise TypeError(f"unknown change type {type(change).__name__}")


def change_from_dict(data: Mapping[str, Any]) -> ConnectivityChange:
    """Inverse of :func:`change_to_dict`."""
    kind = data.get("kind")
    if kind == "partition":
        return PartitionChange(
            component=frozenset(int(p) for p in data["component"]),
            moved=frozenset(int(p) for p in data["moved"]),
        )
    if kind == "merge":
        return MergeChange(
            first=frozenset(int(p) for p in data["first"]),
            second=frozenset(int(p) for p in data["second"]),
        )
    if kind == "crash":
        return CrashChange(pid=int(data["pid"]))
    if kind == "recover":
        return RecoverChange(pid=int(data["pid"]))
    raise PlanError(f"unknown change kind {kind!r}")


def plan_to_dict(plan: SchedulePlan) -> Dict[str, Any]:
    """JSON-compatible form of a whole plan.

    The ``faults`` key is emitted only when a fault model is present
    (and within it, only non-default fields — see
    :func:`repro.faults.model.faults_to_dict`), so clean plans keep the
    exact pre-fault byte layout.
    """
    out: Dict[str, Any] = {
        "format": PLAN_FORMAT_VERSION,
        "n_processes": plan.n_processes,
        "steps": [
            {
                "gap": step.gap,
                "change": change_to_dict(step.change),
                "late": sorted(step.late),
            }
            for step in plan.steps
        ],
    }
    if plan.faults is not None:
        out["faults"] = faults_to_dict(plan.faults)
    return out


def plan_from_dict(data: Mapping[str, Any]) -> SchedulePlan:
    """Inverse of :func:`plan_to_dict`."""
    if data.get("format") != PLAN_FORMAT_VERSION:
        raise PlanError(f"unsupported plan format {data.get('format')!r}")
    steps: List[PlanStep] = []
    for raw in data["steps"]:
        steps.append(
            PlanStep(
                gap=int(raw["gap"]),
                change=change_from_dict(raw["change"]),
                late=frozenset(int(p) for p in raw["late"]),
            )
        )
    faults: Optional[FaultModel] = None
    if "faults" in data:
        try:
            faults = faults_from_dict(data["faults"])
        except FaultModelError as error:
            raise PlanError(f"bad fault model: {error}") from error
    return SchedulePlan(
        n_processes=int(data["n_processes"]), steps=tuple(steps), faults=faults
    )


def plan_to_json(plan: SchedulePlan) -> str:
    """Canonical JSON text of a plan (sorted keys — stable bytes)."""
    return json.dumps(plan_to_dict(plan), sort_keys=True, indent=2) + "\n"


def plan_from_json(text: str) -> SchedulePlan:
    """Parse a plan from its JSON text."""
    return plan_from_dict(json.loads(text))


def driver_steps(
    plan: SchedulePlan,
) -> List[Tuple[int, ConnectivityChange, Members]]:
    """The plan as the (gap, change, late) triples the driver replays."""
    return [(step.gap, step.change, frozenset(step.late)) for step in plan.steps]


def plan_from_recorded(
    n_processes: int,
    steps: Any,
    faults: Optional[FaultModel] = None,
) -> SchedulePlan:
    """A plan from driver-recorded (gap, change, late) triples.

    This is the bridge from a random campaign to the repro workflow:
    ``DriverLoop.recorded_steps()`` — or the ``repro_steps`` attribute
    a campaign attaches to an :class:`~repro.errors.InvariantViolation`
    — goes in, a shrinkable, serializable plan comes out.  Runs under
    an adversarial fault model pass it as ``faults`` so the repro
    replays the same fault environment.
    """
    return SchedulePlan(
        n_processes=n_processes,
        steps=tuple(
            PlanStep(gap=gap, change=change, late=frozenset(late))
            for gap, change, late in steps
        ),
        faults=faults,
    )
