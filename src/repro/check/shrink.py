"""Delta-debugging minimizer for violating fault schedules.

A fuzzer finding is only as useful as its smallest reproducer.  Given a
plan and a predicate ("this plan still fails"), the minimizer applies
the classic ddmin discipline plus domain-specific reductions, greedily
accepting any candidate that (a) is still a feasible schedule and
(b) still satisfies the predicate:

* **drop steps** — remove contiguous chunks of changes, halving chunk
  size down to single steps (ddmin);
* **remove processes** — delete a process from the system entirely,
  rewriting every component/moved/late set and renumbering the rest;
* **shrink moved sets** — move fewer processes in a partition;
* **shrink late sets** — cut fewer processes mid-round;
* **zero gaps** — replace each gap with 0, then with half its value.

Each accepted transformation strictly decreases
:meth:`~repro.check.plan.SchedulePlan.cost`, so the loop terminates;
passes repeat until a full sweep accepts nothing, which makes the
result *locally minimal*: no single step, process, moved/late member or
gap can be removed without losing the failure.

Candidate feasibility is not reasoned about — a transformation may
produce an infeasible schedule (a partition whose moved set became the
whole component, a merge of a vanished component); such candidates fail
:func:`~repro.check.plan.validate_plan` and are simply rejected.  This
keeps every reduction trivially correct.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.check.differential import check_plan
from repro.check.fuzzer import classify_report
from repro.check.plan import PlanError, PlanStep, SchedulePlan, validate_plan
from repro.faults.model import (
    PERSISTENT,
    ByzantineFaults,
    ChurnFaults,
    FaultModel,
    LinkFaults,
)
from repro.net.changes import (
    ConnectivityChange,
    CrashChange,
    MergeChange,
    PartitionChange,
    RecoverChange,
)

Predicate = Callable[[SchedulePlan], bool]


def violation_predicate(
    algorithms: Sequence[str],
    max_quiescence_rounds: int = 400,
    require_unexpected: bool = False,
) -> Predicate:
    """The standard predicate: the plan still produces any finding.

    "Any finding" (rather than the exact original message) follows the
    delta-debugging convention — while shrinking, the failure may shift
    between equivalent manifestations of the same bug, and chasing the
    original string overfits the reproducer.

    With ``require_unexpected`` the plan must keep producing a finding
    the fault oracle does *not* sanction — the right predicate when
    shrinking a genuine bug found under an adversarial fault model, so
    the minimizer cannot drift into oracle-expected breakage.
    """
    names = list(algorithms)

    def predicate(plan: SchedulePlan) -> bool:
        report = check_plan(
            plan, names, max_quiescence_rounds=max_quiescence_rounds
        )
        if report.ok:
            return False
        if require_unexpected:
            return not classify_report(report)
        return True

    return predicate


def _is_feasible(plan: SchedulePlan) -> bool:
    try:
        validate_plan(plan)
    except PlanError:
        return False
    return True


# ----------------------------------------------------------------------
# Transformations.  Each yields candidate plans strictly smaller (by
# cost) than the input; feasibility is checked by the accept loop.
# ----------------------------------------------------------------------


def _drop_step_chunks(plan: SchedulePlan) -> Iterator[SchedulePlan]:
    """ddmin over the step list: drop chunks, largest first."""
    n_steps = len(plan.steps)
    chunk = n_steps
    while chunk >= 1:
        for start in range(0, n_steps, chunk):
            remaining = plan.steps[:start] + plan.steps[start + chunk:]
            if len(remaining) < n_steps:
                yield replace(plan, steps=remaining)
        chunk //= 2


def _remap_change(
    change: ConnectivityChange, mapping: Dict[int, int]
) -> Optional[ConnectivityChange]:
    """The change with processes dropped/renumbered; None when it
    degenerates to nothing (e.g. a crash of the removed process)."""
    if isinstance(change, PartitionChange):
        component = frozenset(mapping[p] for p in change.component if p in mapping)
        moved = frozenset(mapping[p] for p in change.moved if p in mapping)
        if not moved or moved == component:
            return None
        return PartitionChange(component=component, moved=moved)
    if isinstance(change, MergeChange):
        first = frozenset(mapping[p] for p in change.first if p in mapping)
        second = frozenset(mapping[p] for p in change.second if p in mapping)
        if not first or not second:
            return None
        return MergeChange(first=first, second=second)
    if isinstance(change, CrashChange):
        if change.pid not in mapping:
            return None
        return CrashChange(pid=mapping[change.pid])
    if isinstance(change, RecoverChange):
        if change.pid not in mapping:
            return None
        return RecoverChange(pid=mapping[change.pid])
    raise TypeError(f"unknown change type {type(change).__name__}")


def _remap_faults(
    model: Optional[FaultModel], mapping: Dict[int, int]
) -> Optional[FaultModel]:
    """The fault model with processes dropped/renumbered."""
    if model is None:
        return None
    link = model.link
    if link.link_loss:
        link = replace(
            link,
            link_loss=tuple(
                (mapping[s], mapping[r], permille)
                for s, r, permille in link.link_loss
                if s in mapping and r in mapping
            ),
        )
    if link.link_delay:
        link = replace(
            link,
            link_delay=tuple(
                (mapping[s], mapping[r], permille, delay_max)
                for s, r, permille, delay_max in link.link_delay
                if s in mapping and r in mapping
            ),
        )
    byzantine = model.byzantine
    if byzantine.members:
        byzantine = replace(
            byzantine,
            members=tuple(
                mapping[p] for p in byzantine.members if p in mapping
            ),
        )
    return replace(model, link=link, byzantine=byzantine)


def _remove_processes(plan: SchedulePlan) -> Iterator[SchedulePlan]:
    """Delete one process entirely, renumbering the survivors."""
    if plan.n_processes <= 2:
        return
    for removed in range(plan.n_processes - 1, -1, -1):
        survivors = [p for p in range(plan.n_processes) if p != removed]
        mapping = {old: new for new, old in enumerate(survivors)}
        steps: List[PlanStep] = []
        for step in plan.steps:
            change = _remap_change(step.change, mapping)
            if change is None:
                continue  # the step degenerated; dropping it shrinks too
            late = frozenset(mapping[p] for p in step.late if p in mapping)
            steps.append(replace(step, change=change, late=late))
        yield SchedulePlan(
            n_processes=plan.n_processes - 1,
            steps=tuple(steps),
            faults=_remap_faults(plan.faults, mapping),
        )


def _shrink_moved_sets(plan: SchedulePlan) -> Iterator[SchedulePlan]:
    """Move one process fewer in a partition."""
    for index, step in enumerate(plan.steps):
        if not isinstance(step.change, PartitionChange):
            continue
        if len(step.change.moved) <= 1:
            continue
        for dropped in sorted(step.change.moved):
            smaller = PartitionChange(
                component=step.change.component,
                moved=step.change.moved - {dropped},
            )
            steps = list(plan.steps)
            steps[index] = replace(step, change=smaller)
            yield replace(plan, steps=tuple(steps))


def _shrink_late_sets(plan: SchedulePlan) -> Iterator[SchedulePlan]:
    """Try an empty cut first, then dropping single late processes."""
    for index, step in enumerate(plan.steps):
        if not step.late:
            continue
        candidates = [frozenset()]
        if len(step.late) > 1:
            candidates.extend(
                step.late - {dropped} for dropped in sorted(step.late)
            )
        for late in candidates:
            steps = list(plan.steps)
            steps[index] = replace(step, late=late)
            yield replace(plan, steps=tuple(steps))


def _shrink_gaps(plan: SchedulePlan) -> Iterator[SchedulePlan]:
    """Try gap 0 first, then halving."""
    for index, step in enumerate(plan.steps):
        if step.gap <= 0:
            continue
        for gap in dict.fromkeys((0, step.gap // 2)):
            steps = list(plan.steps)
            steps[index] = replace(step, gap=gap)
            yield replace(plan, steps=tuple(steps))


def _shrink_faults(plan: SchedulePlan) -> Iterator[SchedulePlan]:
    """Relax fault-model knobs, most drastic reduction first.

    Every candidate strictly decreases
    :meth:`~repro.faults.model.FaultModel.cost_detail` (and therefore
    the plan cost): drop the whole model, silence the link, lower the
    loss, disable delay/reorder, retire Byzantine members, demote the
    behaviour (equivocate > alter > drop), restore persistence, strip
    the churn provenance marker.  A model that relaxes to all-defaults
    normalizes to ``None`` — the clean plan — automatically.
    """
    model = plan.faults
    if model is None:
        return
    yield replace(plan, faults=None)
    link = model.link
    if link.is_active():
        yield replace(plan, faults=replace(model, link=LinkFaults()))
        if link.loss_permille:
            for permille in dict.fromkeys((0, link.loss_permille // 2)):
                yield replace(
                    plan,
                    faults=replace(
                        model, link=replace(link, loss_permille=permille)
                    ),
                )
        if link.delay_max or link.delay_permille or link.link_delay:
            yield replace(
                plan,
                faults=replace(
                    model,
                    link=replace(
                        link,
                        delay_permille=0,
                        delay_max=0,
                        link_delay=(),
                        reorder=False,
                    ),
                ),
            )
        if link.reorder:
            yield replace(
                plan, faults=replace(model, link=replace(link, reorder=False))
            )
        for index in range(len(link.link_loss)):
            remaining = link.link_loss[:index] + link.link_loss[index + 1:]
            yield replace(
                plan,
                faults=replace(model, link=replace(link, link_loss=remaining)),
            )
        for index in range(len(link.link_delay)):
            remaining = link.link_delay[:index] + link.link_delay[index + 1:]
            yield replace(
                plan,
                faults=replace(model, link=replace(link, link_delay=remaining)),
            )
    byzantine = model.byzantine
    if byzantine.is_active():
        yield replace(plan, faults=replace(model, byzantine=ByzantineFaults()))
        if len(byzantine.members) > 1:
            for dropped in byzantine.members:
                yield replace(
                    plan,
                    faults=replace(
                        model,
                        byzantine=replace(
                            byzantine,
                            members=tuple(
                                p for p in byzantine.members if p != dropped
                            ),
                        ),
                    ),
                )
        downgrades = {"equivocate": ("drop", "alter"), "alter": ("drop",)}
        for behavior in downgrades.get(byzantine.behavior, ()):
            yield replace(
                plan,
                faults=replace(
                    model, byzantine=replace(byzantine, behavior=behavior)
                ),
            )
        if byzantine.activity_permille > 1:
            yield replace(
                plan,
                faults=replace(
                    model,
                    byzantine=replace(
                        byzantine,
                        activity_permille=byzantine.activity_permille // 2,
                    ),
                ),
            )
    if model.crashrec.is_active():
        yield replace(
            plan,
            faults=replace(
                model, crashrec=replace(model.crashrec, persistence=PERSISTENT)
            ),
        )
    if model.churn.is_active():
        yield replace(plan, faults=replace(model, churn=ChurnFaults()))


_PASSES = (
    _drop_step_chunks,
    _remove_processes,
    _shrink_moved_sets,
    _shrink_late_sets,
    _shrink_gaps,
    _shrink_faults,
)


@dataclass
class ShrinkResult:
    """A minimization outcome, with its audit trail."""

    original: SchedulePlan
    minimized: SchedulePlan
    tests_run: int
    accepted: int

    @property
    def reduced(self) -> bool:
        return self.minimized.cost() < self.original.cost()


def minimize(
    plan: SchedulePlan,
    predicate: Predicate,
    max_tests: int = 5000,
) -> ShrinkResult:
    """Shrink ``plan`` to a locally minimal schedule still satisfying
    ``predicate``.

    ``max_tests`` bounds predicate evaluations (each one replays the
    schedule under every algorithm of interest); on exhaustion the best
    plan found so far is returned — still failing, possibly not yet
    minimal.  The input plan must itself satisfy the predicate.
    """
    if not predicate(plan):
        raise ValueError("the input plan does not satisfy the predicate")
    current = plan
    tests_run = 1
    accepted = 0
    improved = True
    while improved and tests_run < max_tests:
        improved = False
        for transformation in _PASSES:
            # Re-derive candidates from the current plan after every
            # acceptance: stale candidates would fight the new baseline.
            restart = True
            while restart and tests_run < max_tests:
                restart = False
                for candidate in transformation(current):
                    if candidate.cost() >= current.cost():
                        continue
                    if not _is_feasible(candidate):
                        continue
                    tests_run += 1
                    if predicate(candidate):
                        current = candidate
                        accepted += 1
                        improved = True
                        restart = True
                        break
                    if tests_run >= max_tests:
                        break
    return ShrinkResult(
        original=plan,
        minimized=current,
        tests_run=tests_run,
        accepted=accepted,
    )
