"""The schedule fuzzer: random fault plans, differentially checked.

Between the thesis' 1.3-million-random-changes endurance trial and the
exhaustive-but-tiny bounded model checker (``repro.sim.explore``) sits
this workhorse: generate random explicit fault plans — partitions,
merges, crashes, recoveries, mid-round cuts, gap choices — and run
*every* registered algorithm against each plan under the full
differential harness (``repro.check.differential``).

Every random draw comes from ``repro.sim.rng`` labelled streams keyed
by ``(master_seed, "check", "fuzz", index)``, so one integer reproduces
the entire campaign: the same seed yields identical plans, identical
verdicts and byte-identical repro files.  Plan generation never
consults an algorithm, so all algorithms face the same faults —
schedule ``index`` under seed ``s`` is one immutable test case.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.check.differential import DifferentialReport, check_plan
from repro.check.plan import PlanStep, SchedulePlan
from repro.core.registry import algorithm_names
from repro.net.changes import (
    CrashRecoveryChangeGenerator,
    UniformChangeGenerator,
    affected_processes,
    apply_change,
)
from repro.net.topology import Topology
from repro.sim.rng import derive_rng


@dataclass(frozen=True)
class FuzzConfig:
    """Knobs of one fuzzing campaign (all defaults CI-sized)."""

    master_seed: int = 0
    schedules: int = 200
    #: Algorithms to cross-check; None means every registered one.
    algorithms: Optional[Tuple[str, ...]] = None
    min_processes: int = 3
    max_processes: int = 6
    min_changes: int = 1
    max_changes: int = 6
    max_gap: int = 3
    #: Probability that a change is drawn from the crash/recovery
    #: family (0 keeps the thesis' pure partition/merge model).
    crash_weight: float = 0.2
    #: Per-process probability of landing in a step's late-set.
    cut_bias: float = 0.5
    max_quiescence_rounds: int = 400

    def __post_init__(self) -> None:
        if self.schedules < 0:
            raise ValueError("schedules must be >= 0")
        if not 2 <= self.min_processes <= self.max_processes:
            raise ValueError("need 2 <= min_processes <= max_processes")
        if not 0 <= self.min_changes <= self.max_changes:
            raise ValueError("need 0 <= min_changes <= max_changes")
        if self.max_gap < 0:
            raise ValueError("max_gap must be >= 0")
        if not 0.0 <= self.cut_bias <= 1.0:
            raise ValueError("cut_bias must be in [0, 1]")


@dataclass(frozen=True)
class FuzzFailure:
    """One plan that produced a finding."""

    index: int
    plan: SchedulePlan
    report: DifferentialReport

    def describe(self) -> str:
        """Human-readable failure summary, with the full report."""
        return f"schedule #{self.index}:\n{self.report.describe()}"


@dataclass
class FuzzResult:
    """Outcome of a whole fuzzing campaign."""

    config: FuzzConfig
    algorithms: Tuple[str, ...]
    schedules_run: int = 0
    changes_injected: int = 0
    failures: List[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def describe(self) -> str:
        """Human-readable campaign summary."""
        lines = [
            f"fuzzed {self.schedules_run} schedules "
            f"({self.changes_injected} changes) under seed "
            f"{self.config.master_seed} across "
            f"{len(self.algorithms)} algorithms: "
            f"{len(self.failures)} failing"
        ]
        lines.extend(failure.describe() for failure in self.failures)
        return "\n".join(lines)


def generate_plan(config: FuzzConfig, index: int) -> SchedulePlan:
    """Deterministically generate fuzz schedule ``index``.

    The labelled stream covers every draw — system size, change count,
    each change, each cut, each gap — and never mentions an algorithm,
    so the plan is the same for every algorithm under test.  Changes
    are drawn against the evolving topology, so every generated plan is
    feasible by construction.
    """
    rng = derive_rng(config.master_seed, "check", "fuzz", index)
    n_processes = rng.randint(config.min_processes, config.max_processes)
    n_changes = rng.randint(config.min_changes, config.max_changes)
    generator = (
        CrashRecoveryChangeGenerator(crash_weight=config.crash_weight)
        if config.crash_weight > 0
        else UniformChangeGenerator()
    )
    topology = Topology.fully_connected(n_processes)
    steps: List[PlanStep] = []
    for _ in range(n_changes):
        change = generator.propose(topology, rng)
        if change is None:  # pragma: no cover - needs a frozen topology
            break
        affected = affected_processes(change, topology)
        late = frozenset(
            pid for pid in sorted(affected) if rng.random() < config.cut_bias
        )
        gap = rng.randint(0, config.max_gap)
        steps.append(PlanStep(gap=gap, change=change, late=late))
        topology = apply_change(topology, change)
    return SchedulePlan(n_processes=n_processes, steps=tuple(steps))


def fuzz(
    config: FuzzConfig,
    on_schedule: Optional[Callable[[int, DifferentialReport], None]] = None,
) -> FuzzResult:
    """Run one fuzzing campaign; deterministic from the master seed.

    ``on_schedule`` (if given) observes every (index, report) pair —
    the CLI uses it for progress reporting; it must not mutate the
    report.
    """
    algorithms = tuple(config.algorithms or algorithm_names())
    result = FuzzResult(config=config, algorithms=algorithms)
    for index in range(config.schedules):
        plan = generate_plan(config, index)
        report = check_plan(
            plan,
            algorithms,
            max_quiescence_rounds=config.max_quiescence_rounds,
        )
        result.schedules_run += 1
        result.changes_injected += len(plan.steps)
        if not report.ok:
            result.failures.append(
                FuzzFailure(index=index, plan=plan, report=report)
            )
        if on_schedule is not None:
            on_schedule(index, report)
    return result
