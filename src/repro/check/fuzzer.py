"""The schedule fuzzer: random fault plans, differentially checked.

Between the thesis' 1.3-million-random-changes endurance trial and the
exhaustive-but-tiny bounded model checker (``repro.sim.explore``) sits
this workhorse: generate random explicit fault plans — partitions,
merges, crashes, recoveries, mid-round cuts, gap choices — and run
*every* registered algorithm against each plan under the full
differential harness (``repro.check.differential``).

Every random draw comes from ``repro.sim.rng`` labelled streams keyed
by ``(master_seed, "check", "fuzz", index)``, so one integer reproduces
the entire campaign: the same seed yields identical plans, identical
verdicts and byte-identical repro files.  Plan generation never
consults an algorithm, so all algorithms face the same faults —
schedule ``index`` under seed ``s`` is one immutable test case.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.check.differential import (
    OUTCOME_LIVELOCK,
    OUTCOME_VIOLATION,
    DifferentialReport,
    check_plan,
)
from repro.check.plan import PlanStep, SchedulePlan
from repro.core.registry import algorithm_names
from repro.faults.churn import churn_steps
from repro.faults.model import (
    AMNESIAC,
    BYZANTINE_BEHAVIORS,
    FAULT_CLASSES,
    PERSISTENT,
    ByzantineFaults,
    ChurnFaults,
    CrashRecoveryFaults,
    FaultModel,
    LinkFaults,
)
from repro.faults.oracle import livelock_expected, violation_expected
from repro.net.changes import (
    CrashRecoveryChangeGenerator,
    UniformChangeGenerator,
    affected_processes,
    apply_change,
)
from repro.net.topology import Topology
from repro.sim.rng import derive_rng


@dataclass(frozen=True)
class FuzzConfig:
    """Knobs of one fuzzing campaign (all defaults CI-sized)."""

    master_seed: int = 0
    schedules: int = 200
    #: Algorithms to cross-check; None means every registered one.
    algorithms: Optional[Tuple[str, ...]] = None
    min_processes: int = 3
    max_processes: int = 6
    min_changes: int = 1
    max_changes: int = 6
    max_gap: int = 3
    #: Probability that a change is drawn from the crash/recovery
    #: family (0 keeps the thesis' pure partition/merge model).
    crash_weight: float = 0.2
    #: Per-process probability of landing in a step's late-set.
    cut_bias: float = 0.5
    max_quiescence_rounds: int = 400
    #: Adversarial fault classes to draw per schedule (subset of
    #: ``repro.faults.FAULT_CLASSES``).  Empty keeps the clean-fault
    #: campaign — and, crucially, the exact historical draw sequence,
    #: since fault draws are appended strictly after the clean ones.
    fault_classes: Tuple[str, ...] = ()
    #: Knob ceilings for the drawn fault models.
    max_loss_permille: int = 300
    max_delay_rounds: int = 2
    max_churn_cells: int = 3
    max_churn_epochs: int = 4

    def __post_init__(self) -> None:
        if self.schedules < 0:
            raise ValueError("schedules must be >= 0")
        if not 2 <= self.min_processes <= self.max_processes:
            raise ValueError("need 2 <= min_processes <= max_processes")
        if not 0 <= self.min_changes <= self.max_changes:
            raise ValueError("need 0 <= min_changes <= max_changes")
        if self.max_gap < 0:
            raise ValueError("max_gap must be >= 0")
        if not 0.0 <= self.cut_bias <= 1.0:
            raise ValueError("cut_bias must be in [0, 1]")
        object.__setattr__(
            self, "fault_classes", tuple(self.fault_classes)
        )
        for fault_class in self.fault_classes:
            if fault_class not in FAULT_CLASSES:
                raise ValueError(
                    f"unknown fault class {fault_class!r}; "
                    f"known: {FAULT_CLASSES}"
                )
        if not 1 <= self.max_loss_permille <= 1000:
            raise ValueError("max_loss_permille must be in [1, 1000]")
        if self.max_delay_rounds < 0:
            raise ValueError("max_delay_rounds must be >= 0")
        if self.max_churn_cells < 2:
            raise ValueError("max_churn_cells must be >= 2")
        if self.max_churn_epochs < 1:
            raise ValueError("max_churn_epochs must be >= 1")


@dataclass(frozen=True)
class FuzzFailure:
    """One plan that produced a finding.

    ``expected`` marks findings the per-class fault oracle
    (:mod:`repro.faults.oracle`) sanctions — e.g. an equivocation
    breaking the primary chain.  Expected findings are still findings
    (they prove the oracle detects the breakage, and they seed the
    corpus), but they are not bugs in the algorithms under test.
    """

    index: int
    plan: SchedulePlan
    report: DifferentialReport
    expected: bool = False

    def describe(self) -> str:
        """Human-readable failure summary, with the full report."""
        tag = " (expected under fault model)" if self.expected else ""
        return f"schedule #{self.index}{tag}:\n{self.report.describe()}"


def classify_report(report: DifferentialReport) -> bool:
    """Whether *every* finding of a report is oracle-sanctioned.

    Divergences are never expected (the topology oracle and family
    agreement hold under any fault model they are checked against);
    violations are judged by their structured kind, livelocks by
    :func:`repro.faults.oracle.livelock_expected`.  A clean report
    classifies as expected vacuously but is never wrapped in a
    :class:`FuzzFailure` to begin with.
    """
    model = report.plan.faults
    if model is None:
        return False
    if report.divergences:
        return False
    for verdict in report.failures:
        if verdict.outcome == OUTCOME_VIOLATION:
            if not violation_expected(model, verdict.violation_kind):
                return False
        elif verdict.outcome == OUTCOME_LIVELOCK:
            if not livelock_expected(model):
                return False
        else:  # pragma: no cover - no other failure outcomes exist
            return False
    return True


@dataclass
class FuzzResult:
    """Outcome of a whole fuzzing campaign."""

    config: FuzzConfig
    algorithms: Tuple[str, ...]
    schedules_run: int = 0
    changes_injected: int = 0
    failures: List[FuzzFailure] = field(default_factory=list)

    @property
    def unexpected_failures(self) -> List[FuzzFailure]:
        """Findings the fault oracle does *not* sanction — real bugs."""
        return [failure for failure in self.failures if not failure.expected]

    @property
    def expected_failures(self) -> List[FuzzFailure]:
        """Oracle-sanctioned breakage (detected, attributed, non-bug)."""
        return [failure for failure in self.failures if failure.expected]

    @property
    def ok(self) -> bool:
        return not self.unexpected_failures

    def describe(self) -> str:
        """Human-readable campaign summary."""
        expected = len(self.expected_failures)
        breakdown = f"{len(self.unexpected_failures)} failing"
        if expected:
            breakdown += f", {expected} expected under the fault oracle"
        lines = [
            f"fuzzed {self.schedules_run} schedules "
            f"({self.changes_injected} changes) under seed "
            f"{self.config.master_seed} across "
            f"{len(self.algorithms)} algorithms: {breakdown}"
        ]
        lines.extend(failure.describe() for failure in self.failures)
        return "\n".join(lines)


def generate_plan(config: FuzzConfig, index: int) -> SchedulePlan:
    """Deterministically generate fuzz schedule ``index``.

    The labelled stream covers every draw — system size, change count,
    each change, each cut, each gap, and (when fault classes are
    enabled) every fault-model knob — and never mentions an algorithm,
    so the plan is the same for every algorithm under test.  Changes
    are drawn against the evolving topology, so every generated plan is
    feasible by construction.

    Fault draws happen strictly *after* the clean-schedule draws, so a
    config without fault classes consumes exactly the historical
    stream — schedule ``index`` under seed ``s`` is byte-identical to
    what the pre-fault fuzzer generated.
    """
    rng = derive_rng(config.master_seed, "check", "fuzz", index)
    n_processes = rng.randint(config.min_processes, config.max_processes)
    n_changes = rng.randint(config.min_changes, config.max_changes)
    generator = (
        CrashRecoveryChangeGenerator(crash_weight=config.crash_weight)
        if config.crash_weight > 0
        else UniformChangeGenerator()
    )
    topology = Topology.fully_connected(n_processes)
    steps: List[PlanStep] = []
    for _ in range(n_changes):
        change = generator.propose(topology, rng)
        if change is None:  # pragma: no cover - needs a frozen topology
            break
        affected = affected_processes(change, topology)
        late = frozenset(
            pid for pid in sorted(affected) if rng.random() < config.cut_bias
        )
        gap = rng.randint(0, config.max_gap)
        steps.append(PlanStep(gap=gap, change=change, late=late))
        topology = apply_change(topology, change)
    if not config.fault_classes:
        return SchedulePlan(n_processes=n_processes, steps=tuple(steps))
    faults = _draw_fault_model(config, rng, n_processes)
    if faults.churn.is_active():
        steps = _churn_plan_steps(config, rng, faults.churn, n_processes)
    return SchedulePlan(
        n_processes=n_processes, steps=tuple(steps), faults=faults
    )


def _draw_fault_model(config: FuzzConfig, rng, n_processes: int) -> FaultModel:
    """Draw one fault model from the enabled classes' knob ranges."""
    classes = config.fault_classes
    link = LinkFaults()
    crashrec = CrashRecoveryFaults()
    byzantine = ByzantineFaults()
    churn = ChurnFaults()
    if "loss" in classes:
        delay_max = rng.randint(0, config.max_delay_rounds)
        link = LinkFaults(
            loss_permille=rng.randint(1, config.max_loss_permille),
            delay_permille=(
                rng.randint(1, config.max_loss_permille) if delay_max else 0
            ),
            delay_max=delay_max,
            reorder=bool(delay_max) and rng.random() < 0.5,
            seed=rng.randint(0, 2 ** 32 - 1),
        )
    if "crashrec" in classes:
        crashrec = CrashRecoveryFaults(
            persistence=AMNESIAC if rng.random() < 0.5 else PERSISTENT
        )
    if "byzantine" in classes:
        byzantine = ByzantineFaults(
            members=(rng.randrange(n_processes),),
            behavior=rng.choice(BYZANTINE_BEHAVIORS),
            activity_permille=rng.choice((250, 500, 1000)),
            seed=rng.randint(0, 2 ** 32 - 1),
        )
    if "churn" in classes:
        churn = ChurnFaults(
            cells=rng.randint(2, config.max_churn_cells),
            epochs=rng.randint(1, config.max_churn_epochs),
            seed=rng.randint(0, 2 ** 32 - 1),
        )
    return FaultModel(
        link=link, crashrec=crashrec, byzantine=byzantine, churn=churn
    )


def _churn_plan_steps(
    config: FuzzConfig, rng, churn: ChurnFaults, n_processes: int
) -> List[PlanStep]:
    """Trace-derived steps with explicitly drawn late-sets.

    The churn class replaces the generator-drawn changes with the
    mobility trace's compiled partition/merge sequence; the mid-round
    cuts are still drawn here so the plan stays fully explicit.
    """
    dwell = rng.randint(0, config.max_gap)
    steps: List[PlanStep] = []
    topology = Topology.fully_connected(n_processes)
    for gap, change, _ in churn_steps(churn, n_processes, dwell=dwell):
        affected = affected_processes(change, topology)
        late = frozenset(
            pid for pid in sorted(affected) if rng.random() < config.cut_bias
        )
        steps.append(PlanStep(gap=gap, change=change, late=late))
        topology = apply_change(topology, change)
    return steps


def fuzz(
    config: FuzzConfig,
    on_schedule: Optional[Callable[[int, DifferentialReport], None]] = None,
) -> FuzzResult:
    """Run one fuzzing campaign; deterministic from the master seed.

    ``on_schedule`` (if given) observes every (index, report) pair —
    the CLI uses it for progress reporting; it must not mutate the
    report.
    """
    algorithms = tuple(config.algorithms or algorithm_names())
    result = FuzzResult(config=config, algorithms=algorithms)
    for index in range(config.schedules):
        plan = generate_plan(config, index)
        report = check_plan(
            plan,
            algorithms,
            max_quiescence_rounds=config.max_quiescence_rounds,
        )
        result.schedules_run += 1
        result.changes_injected += len(plan.steps)
        if not report.ok:
            result.failures.append(
                FuzzFailure(
                    index=index,
                    plan=plan,
                    report=report,
                    expected=classify_report(report),
                )
            )
        if on_schedule is not None:
            on_schedule(index, report)
    return result
