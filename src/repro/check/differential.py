"""Differential execution: one fault plan, every algorithm, cross-checked.

The thesis' central experimental discipline — "the same random sequence
was used to test each of the algorithms" — becomes a correctness weapon
here: because a :class:`~repro.check.plan.SchedulePlan` pins every
nondeterministic choice, all registered algorithms can be driven
through *identical* faults and their behaviour compared.

Three layers of checking run per plan:

1. **Per-algorithm invariants** — the full
   :class:`~repro.sim.invariants.InvariantChecker` (at most one live
   primary, view agreement, subquorum chain) plus the strict
   stable-point check at quiescence, and livelock detection.
2. **Replay oracle** — topology evolution never depends on the
   algorithm, so every run must end on exactly the components the pure
   topology replay (:func:`~repro.check.plan.validate_plan`) predicts.
3. **Family agreement** — variants of one base protocol
   (:data:`repro.core.registry.FAMILIES`) must produce *consistent
   formed-primary chains*: no order key claimed with two different
   member sets across variants, and the merged chain must still be
   subquorum-linked.  An optimization that changes which primaries its
   family forms is a divergence finding, not a tuning knob.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.check.plan import SchedulePlan, driver_steps, validate_plan
from repro.core.quorum import is_subquorum
from repro.core.registry import algorithm_family, algorithm_names
from repro.errors import InvariantViolation, SimulationError
from repro.net.topology import Topology
from repro.sim.driver import DriverLoop
from repro.sim.invariants import InvariantChecker
from repro.sim.rng import derive_rng

#: Verdict outcomes, in decreasing order of severity.
OUTCOME_VIOLATION = "violation"
OUTCOME_LIVELOCK = "livelock"
OUTCOME_OK = "ok"

Components = Tuple[Tuple[int, ...], ...]
Chain = Tuple[Tuple[int, Tuple[int, ...]], ...]


@dataclass(frozen=True)
class AlgorithmVerdict:
    """Outcome of replaying one plan under one algorithm."""

    algorithm: str
    outcome: str
    detail: str = ""
    available: Optional[bool] = None
    final_components: Components = ()
    chain: Chain = ()
    #: Structured kind of the violated invariant (``InvariantViolation
    #: .kind``), empty for non-violation outcomes.  The fault oracle
    #: (:mod:`repro.faults.oracle`) classifies findings by this label.
    violation_kind: str = ""
    #: Non-primary rounds by blame category (nonzero entries only,
    #: sorted), reconstructed live by ``repro.obs.causal`` during the
    #: replay — the span-level explanation a failing schedule carries
    #: into its repro file.
    blame: Tuple[Tuple[str, int], ...] = ()

    @property
    def ok(self) -> bool:
        return self.outcome == OUTCOME_OK

    def describe(self) -> str:
        """One line for failure reports."""
        if self.ok:
            return f"{self.algorithm}: ok (available={self.available})"
        line = f"{self.algorithm}: {self.outcome} — {self.detail}"
        if self.blame:
            breakdown = ", ".join(f"{k}={v}" for k, v in self.blame)
            line += f" [lost rounds: {breakdown}]"
        return line


@dataclass
class DifferentialReport:
    """Everything one plan revealed across all algorithms."""

    plan: SchedulePlan
    verdicts: Dict[str, AlgorithmVerdict] = field(default_factory=dict)
    divergences: List[str] = field(default_factory=list)

    @property
    def failures(self) -> List[AlgorithmVerdict]:
        """Verdicts that are not clean, most severe first."""
        order = {OUTCOME_VIOLATION: 0, OUTCOME_LIVELOCK: 1}
        return sorted(
            (v for v in self.verdicts.values() if not v.ok),
            key=lambda v: (order.get(v.outcome, 9), v.algorithm),
        )

    @property
    def ok(self) -> bool:
        return not self.failures and not self.divergences

    def describe(self) -> str:
        """Multi-line summary of every finding on this plan."""
        lines = [self.plan.describe()]
        lines.extend(f"  {v.describe()}" for v in self.failures)
        lines.extend(f"  divergence: {d}" for d in self.divergences)
        if self.ok:
            lines.append("  all algorithms clean")
        return "\n".join(lines)


def _canonical_components(topology: Topology) -> Components:
    return tuple(
        sorted(tuple(sorted(component)) for component in topology.components)
    )


def run_plan(
    plan: SchedulePlan,
    algorithm: str,
    max_quiescence_rounds: int = 400,
) -> AlgorithmVerdict:
    """Replay one plan under one algorithm with full invariant checking.

    The driver's fault RNG is labelled but never consumed — every
    late-set is explicit — so the verdict is a pure function of
    (plan, algorithm).
    """
    from repro.obs.causal import CausalObserver

    causal = CausalObserver()
    driver = DriverLoop(
        algorithm=algorithm,
        n_processes=plan.n_processes,
        fault_rng=derive_rng(0, "check", "replay", algorithm),
        observers=[InvariantChecker(), causal],
        max_quiescence_rounds=max_quiescence_rounds,
        fault_model=plan.faults,
    )
    outcome, detail, kind = OUTCOME_OK, "", ""
    try:
        driver.execute_schedule(driver_steps(plan))
        driver.checker.check_stable_primary(
            driver.algorithms,
            driver.topology.components,
            driver.topology.active_processes(),
        )
    except InvariantViolation as violation:
        outcome, detail = OUTCOME_VIOLATION, str(violation)
        kind = violation.kind
    except SimulationError as error:
        outcome, detail = OUTCOME_LIVELOCK, str(error)
    blame_totals = causal.finalize().blame_totals()
    return AlgorithmVerdict(
        algorithm=algorithm,
        outcome=outcome,
        detail=detail,
        violation_kind=kind,
        available=driver.primary_exists() if outcome == OUTCOME_OK else None,
        final_components=_canonical_components(driver.topology),
        chain=tuple(
            (order_key, tuple(sorted(members)))
            for order_key, members in driver.checker.formed_chain
        ),
        blame=tuple(
            (category, count)
            for category, count in sorted(blame_totals.items())
            if count
        ),
    )


def _check_family_chains(
    verdicts: Dict[str, AlgorithmVerdict], divergences: List[str]
) -> None:
    """Merge the formed chains of each family and re-verify them.

    Only clean runs participate: a run that already violated has a
    failure verdict of its own, and its partial chain would produce
    noise findings here.
    """
    families: Dict[str, List[AlgorithmVerdict]] = {}
    for verdict in verdicts.values():
        if verdict.ok and verdict.chain:
            families.setdefault(
                algorithm_family(verdict.algorithm), []
            ).append(verdict)
    for family, members in sorted(families.items()):
        if len(members) < 2:
            continue
        merged: Dict[int, Tuple[int, ...]] = {}
        claimants: Dict[int, str] = {}
        for verdict in sorted(members, key=lambda v: v.algorithm):
            for order_key, chain_members in verdict.chain:
                known = merged.get(order_key)
                if known is None:
                    merged[order_key] = chain_members
                    claimants[order_key] = verdict.algorithm
                elif known != chain_members:
                    divergences.append(
                        f"family {family!r}: primary #{order_key} formed as "
                        f"{list(known)} by {claimants[order_key]} but as "
                        f"{list(chain_members)} by {verdict.algorithm}"
                    )
        ordered = sorted(merged)
        for previous, current in zip(ordered, ordered[1:]):
            if not is_subquorum(set(merged[current]), set(merged[previous])):
                divergences.append(
                    f"family {family!r}: merged chain broken — primary "
                    f"#{current} {list(merged[current])} lacks a subquorum "
                    f"of #{previous} {list(merged[previous])}"
                )


def check_plan(
    plan: SchedulePlan,
    algorithms: Optional[Sequence[str]] = None,
    max_quiescence_rounds: int = 400,
) -> DifferentialReport:
    """Run one plan under every algorithm and cross-check the results."""
    names = list(algorithms) if algorithms else algorithm_names()
    expected = _canonical_components(validate_plan(plan))
    report = DifferentialReport(plan=plan)
    for name in names:
        report.verdicts[name] = run_plan(
            plan, name, max_quiescence_rounds=max_quiescence_rounds
        )
    for name in names:
        verdict = report.verdicts[name]
        # A violating run aborts mid-plan, so only clean runs are held
        # to the oracle (the violation is already its own finding).
        if verdict.ok and verdict.final_components != expected:
            report.divergences.append(
                f"{name}: final components {list(verdict.final_components)} "
                f"differ from the topology oracle {list(expected)}"
            )
    # Family-chain agreement assumes all variants saw identical inputs.
    # Under an active fault model the settle phases of different
    # variants span different round indices, so their (round-keyed)
    # loss/delay draws legitimately diverge — the cross-variant chain
    # comparison would report that as a finding.  Per-algorithm
    # invariants and the topology oracle above still apply in full.
    if plan.faults is None or plan.faults.is_clean():
        _check_family_chains(report.verdicts, report.divergences)
    return report
