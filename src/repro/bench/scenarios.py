"""Pinned-seed benchmark workloads.

Each scenario is a deterministic workload over the simulation hot path:
seeds, process counts and schedules are pinned, so two runs of the same
scenario on the same code execute the identical sequence of rounds and
differ only in wall time.  That is what makes the recorded
``BENCH_<scenario>.json`` trajectory meaningful — and it is also why the
same workloads double as byte-identity subjects (the acceptance
campaign of ``tests/test_byte_identity.py`` is exactly the ``campaign``
scenario's workload).

Scenarios report how many driver rounds they executed; the harness
divides by wall time to get the headline rounds/sec figure.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from repro.core.knowledge import make_state_item, outcome_for
from repro.core.quorum import is_subquorum
from repro.core.registry import algorithm_names
from repro.core.session import Session, initial_session
from repro.errors import BenchError
from repro.net.changes import MergeChange, PartitionChange
from repro.obs import CampaignMetrics, PhaseProfiler, Subscriber
from repro.sim.campaign import CaseConfig, run_case
from repro.sim.driver import DriverLoop
from repro.sim.explore import explore, explore_replay
from repro.sim.trace import TraceDigester


@dataclass(frozen=True)
class WorkloadResult:
    """What one scenario execution did (not how long it took)."""

    rounds: int
    detail: str = ""


@dataclass(frozen=True)
class BenchScenario:
    """One named, pinned benchmark workload."""

    name: str
    description: str
    runner: Callable[[bool], WorkloadResult]

    def run(self, quick: bool = False) -> WorkloadResult:
        """Execute the workload (``quick`` selects the CI-sized variant)."""
        return self.runner(quick)


# ----------------------------------------------------------------------
# core_ops: the micro hot path — quorum checks, LEARN evaluation, and
# repeated 16-process state exchanges through the full driver loop.
# ----------------------------------------------------------------------


def _run_core_ops(quick: bool) -> WorkloadResult:
    repeats = 40 if quick else 240
    micro_iterations = 2_000 if quick else 20_000

    # Quorum predicate micro-loop (the innermost decision primitive).
    x = frozenset(range(0, 48))
    y = frozenset(range(16, 80))
    for _ in range(micro_iterations):
        is_subquorum(x, y)

    # LEARN-rule evaluation micro-loop over a fresh state item each
    # time, matching how every view change rebuilds the exchange.
    w = initial_session(range(64))
    session = Session.of(4, range(16))
    for _ in range(micro_iterations // 10):
        state = make_state_item(
            session_number=5,
            ambiguous=[Session.of(5, range(32))],
            last_primary=w,
            last_formed={q: w for q in range(64)},
        )
        outcome_for(state, session)

    # Full driver rounds: a 16-process YKD partition + merge exchange.
    rounds = 0
    for _ in range(repeats):
        driver = DriverLoop("ykd", 16, fault_rng=random.Random(1))
        whole = driver.topology.components[0]
        driver.run_round(
            PartitionChange(component=whole, moved=frozenset({14, 15}))
        )
        driver.run_until_quiescent()
        first, second = driver.topology.components
        driver.run_round(MergeChange(first=first, second=second))
        driver.run_until_quiescent()
        if not driver.primary_exists():
            raise BenchError("core_ops scenario lost its primary")
        rounds += driver.round_index
    return WorkloadResult(
        rounds=rounds,
        detail=(
            f"{repeats} partition+merge exchanges, "
            f"{micro_iterations} subquorum checks"
        ),
    )


# ----------------------------------------------------------------------
# campaign: the macro hot path — a pinned-seed fresh-start campaign of
# ~10k rounds (the acceptance workload of the throughput overhaul).
# ----------------------------------------------------------------------


def _campaign_config(quick: bool) -> CaseConfig:
    return CaseConfig(
        algorithm="ykd",
        n_processes=16,
        n_changes=6,
        mean_rounds_between_changes=4.0,
        runs=40 if quick else 300,
        master_seed=0,
    )


def _run_campaign(quick: bool) -> WorkloadResult:
    result = run_case(_campaign_config(quick))
    return WorkloadResult(
        rounds=result.rounds_total,
        detail=(
            f"{result.runs} runs, {result.changes_total} changes, "
            f"availability {result.availability_percent:.1f}%"
        ),
    )


# ----------------------------------------------------------------------
# campaign_batched: the identical campaign workload on the vectorized
# kernel of ``repro.sim.batch``.  Comparing its rounds/sec against
# ``campaign`` prices the batching win; the differential suite
# (``tests/test_batch_differential.py``) guarantees both scenarios
# execute the exact same rounds, so the ratio is pure speedup.
# ----------------------------------------------------------------------


def _run_campaign_batched(quick: bool) -> WorkloadResult:
    from repro.sim.batch import BatchCaseResult

    # Quick mode runs the *full* workload: the kernel's fixed per-case
    # costs (compile pass, array allocation) dominate the 40-run quick
    # campaign and would make its rounds/sec incomparable with the
    # committed full-mode baseline the CI gate diffs against — and the
    # full workload is already CI-cheap (well under a second).
    result = run_case(_campaign_config(False), kernel="batched")
    if not isinstance(result, BatchCaseResult):
        # A silent scalar fallback would invalidate the measurement.
        raise BenchError(
            "campaign_batched fell back to the scalar engine; the "
            "campaign workload must stay on the batched surface"
        )
    return WorkloadResult(
        rounds=result.rounds_total,
        detail=(
            f"{result.runs} runs, {result.changes_total} changes, "
            f"availability {result.availability_percent:.1f}%"
        ),
    )


# ----------------------------------------------------------------------
# campaign_obs: the identical campaign workload with the observability
# layer fully engaged — metrics collection, trace digesting and phase
# profiling all at once.  Comparing its rounds/sec against ``campaign``
# prices the observer overhead; the ``campaign`` scenario itself keeps
# guarding the observer-free fast path.
# ----------------------------------------------------------------------


def _run_campaign_obs(quick: bool) -> WorkloadResult:
    metrics = CampaignMetrics()
    digester = TraceDigester()
    profiler = PhaseProfiler()
    result = run_case(
        _campaign_config(quick), observers=[metrics, digester, profiler]
    )
    return WorkloadResult(
        rounds=result.rounds_total,
        detail=(
            f"{result.runs} runs, {digester.event_count} trace events, "
            f"{len(metrics.registry.series())} metric series, "
            f"availability {result.availability_percent:.1f}%"
        ),
    )


# ----------------------------------------------------------------------
# campaign_causal: the identical campaign workload with the causal
# forensics layer engaged — live span reconstruction plus the metrics
# fold.  Comparing its rounds/sec against ``campaign_obs`` prices the
# explanation on top of plain observability; against ``campaign``, the
# full cost of explaining every lost round.
# ----------------------------------------------------------------------


def _run_campaign_causal(quick: bool) -> WorkloadResult:
    from repro.obs.causal import CausalMetrics, CausalObserver

    causal = CausalObserver()
    metrics = CausalMetrics()
    result = run_case(_campaign_config(quick), observers=[causal, metrics])
    spans = causal.finalize()
    blamed = sum(spans.blame_totals().values())
    if blamed != spans.nonprimary_rounds:
        raise BenchError("campaign_causal blame does not cover lost rounds")
    return WorkloadResult(
        rounds=result.rounds_total,
        detail=(
            f"{result.runs} runs, {len(spans.attempts)} attempts, "
            f"{blamed} rounds blamed, "
            f"{len(metrics.registry.series())} metric series, "
            f"availability {result.availability_percent:.1f}%"
        ),
    )


# ----------------------------------------------------------------------
# explore: the bounded model checker — the fork-based explorer against
# its replay reference on the same bound (recording the speedup), plus
# the previously infeasible n=4, depth=2 sweep as the headline workload.
# The work unit is scenarios covered, so the headline figure reads as
# verified scenarios per second.
# ----------------------------------------------------------------------


def _run_explore(quick: bool) -> WorkloadResult:
    # Differential cross-check: the fork engine must reproduce the
    # replay reference exactly.  The quick variant keeps the check on a
    # small bound so the (deliberately slow) reference engine does not
    # dominate the timed workload; the full run uses the real bound and
    # records the measured speedup in the committed trajectory.
    check_depth = 1 if quick else 2
    started = time.perf_counter()
    reference = explore_replay(
        "ykd", n_processes=3, depth=check_depth, gap_options=(0, 1, 2, 3)
    )
    replay_seconds = time.perf_counter() - started

    started = time.perf_counter()
    forked = explore(
        "ykd", n_processes=3, depth=check_depth, gap_options=(0, 1, 2, 3)
    )
    fork_seconds = time.perf_counter() - started
    if (reference.scenarios, reference.available, reference.violations) != (
        forked.scenarios,
        forked.available,
        forked.violations,
    ):
        raise BenchError(
            "fork explorer diverged from the replay reference on the "
            "bench bound"
        )
    speedup = replay_seconds / max(fork_seconds, 1e-9)

    # The headline workload: the n=4, depth=2 sweep the replay engine
    # could never finish in CI time (one algorithm quick, all in full).
    scenarios = forked.scenarios
    algorithms = ("ykd",) if quick else algorithm_names()
    started = time.perf_counter()
    for algorithm in algorithms:
        deep = explore(
            algorithm, n_processes=4, depth=2, gap_options=(0, 1, 2, 3)
        )
        if not deep.passed:
            raise BenchError(
                f"explore scenario found violations in {algorithm}"
            )
        scenarios += deep.scenarios
    deep_seconds = time.perf_counter() - started

    return WorkloadResult(
        rounds=scenarios,
        detail=(
            f"fork vs replay on ykd n=3 depth={check_depth}: "
            f"{speedup:.1f}x ({replay_seconds:.2f}s -> {fork_seconds:.2f}s); "
            f"n=4 depth=2 x{len(algorithms)} algorithms in "
            f"{deep_seconds:.2f}s"
        ),
    )


# ----------------------------------------------------------------------
# service_gcs: the group-communication substrate — repeated pinned
# partition/heal schedules through the full negotiated-membership stack
# (failure detection, coordinator agreement, view synchrony, primary
# voting) on the in-memory transport.  The work unit is GCS ticks, so
# the headline figure reads as membership-protocol ticks per second;
# the detail records how many views that negotiated.  This is the
# deterministic baseline the network transports are differentially
# pinned against (``tests/test_proc_cluster.py``) — their throughput is
# wall-clock-bound by design, so only the memory backend is priced.
# ----------------------------------------------------------------------


class _InstallCounter(Subscriber):
    """Counts every view installation the cluster publishes."""

    def __init__(self) -> None:
        self.installs = 0

    def on_gcs_event(self, cluster, pid, event) -> None:
        from repro.gcs.stack import ViewInstalled

        if isinstance(event, ViewInstalled):
            self.installs += 1


def _run_service_gcs(quick: bool) -> WorkloadResult:
    from repro.gcs import PrimaryComponentService
    from repro.net.topology import Topology

    repeats = 10 if quick else 80
    n = 8
    ticks = 0
    installs = 0
    datagrams = 0
    for _ in range(repeats):
        counter = _InstallCounter()
        service = PrimaryComponentService("ykd", n, observers=(counter,))
        service.run_until_stable()
        # A fixed cascade: shed {5,6,7}, split the survivors, heal all.
        service.set_topology(
            service.cluster.topology.partition(
                frozenset(range(n)), frozenset({5, 6, 7})
            )
        )
        service.run_until_stable()
        service.set_topology(
            service.cluster.topology.partition(
                frozenset({0, 1, 2, 3, 4}), frozenset({0, 1})
            )
        )
        service.run_until_stable()
        service.set_topology(Topology.fully_connected(n))
        service.run_until_stable()
        if service.primary_members() != tuple(range(n)):
            raise BenchError("service_gcs schedule lost its primary")
        ticks += service.cluster.ticks
        installs += counter.installs
        datagrams += service.cluster.transport.delivered_count
    return WorkloadResult(
        rounds=ticks,
        detail=(
            f"{repeats} partition/heal schedules on {n} processes, "
            f"{installs} views installed, {datagrams} datagrams delivered"
        ),
    )


# ----------------------------------------------------------------------
# service: the user-facing availability pipeline — seeded heavy-tailed
# workloads routed against a splitting-and-healing replicated store,
# through the full scenario runner (load generation, replica pinning,
# NotPrimary redirects, causal blame).  The work unit is requests
# routed, so the headline figure reads as end-user requests per second;
# the run doubles as an oracle: the pinned seed must replay to a
# byte-identical report, and a fault-free pass must serve 100%.
# ----------------------------------------------------------------------


def _run_service(quick: bool) -> WorkloadResult:
    from repro.gcs.proc.schedule import STOCK_SCHEDULES
    from repro.service.load import LoadProfile
    from repro.service.report import render_report
    from repro.service.scenario import run_scenario

    # Quick mode runs the *full* workload (as campaign_batched does):
    # the fixed warm-up cost per scenario would skew a shrunken quick
    # figure against the committed full-mode baseline, and the full
    # workload is already CI-cheap.
    repeats = 8
    schedule = STOCK_SCHEDULES["split_restore"]
    requests = 0
    unserved = 0
    first_render = ""
    for seed in range(repeats):
        profile = LoadProfile(clients=8, ticks=240, seed=seed)
        report = run_scenario(profile, schedule=schedule)
        requests += report["requests"]["total"]
        unserved += report["requests"]["unserved"]["total"]
        if seed == 0:
            first_render = render_report(report)
    replay = run_scenario(
        LoadProfile(clients=8, ticks=240, seed=0), schedule=schedule
    )
    if render_report(replay) != first_render:
        raise BenchError("service scenario replay diverged")
    clean = run_scenario(LoadProfile(clients=8, ticks=120, seed=0))
    if clean["availability"]["user_perceived_percent"] != 100.0:
        raise BenchError("service scenario lost requests without faults")
    return WorkloadResult(
        rounds=requests,
        detail=(
            f"{repeats} seeded 240-tick workloads over split_restore, "
            f"{unserved}/{requests} requests unserved, replay "
            "byte-identical, fault-free pass 100%"
        ),
    )


# ----------------------------------------------------------------------
# service_obs: the identical service workload with the distributed
# telemetry plane fully engaged — per-replica flight recorders, trace
# minting on every request, the scenario-level metric notes, and the
# collector pull at the end of each run.  Comparing its rounds/sec
# against ``service`` prices the flight-recorder overhead (the CI gate
# requires the recorder-*off* path to stay within 5% of its committed
# baseline); the run doubles as the telemetry replay oracle: the
# aggregated stream must replay byte-identically, trace ids included.
# ----------------------------------------------------------------------


def _run_service_obs(quick: bool) -> WorkloadResult:
    from repro.gcs.proc.schedule import STOCK_SCHEDULES
    from repro.obs.telemetry import TelemetryCollector
    from repro.service.load import LoadProfile
    from repro.service.scenario import run_scenario

    # Quick mode runs the full workload, for the same reason as the
    # ``service`` scenario it mirrors.
    repeats = 8
    schedule = STOCK_SCHEDULES["split_restore"]
    requests = 0
    events = 0
    first_stream = ""
    for seed in range(repeats):
        profile = LoadProfile(clients=8, ticks=240, seed=seed)
        collector = TelemetryCollector()
        report = run_scenario(
            profile, schedule=schedule, collector=collector
        )
        requests += report["requests"]["total"]
        events += len(collector.aggregated_jsonl().splitlines())
        if seed == 0:
            first_stream = collector.aggregated_jsonl()
    replay = TelemetryCollector()
    run_scenario(
        LoadProfile(clients=8, ticks=240, seed=0),
        schedule=schedule,
        collector=replay,
    )
    if replay.aggregated_jsonl() != first_stream:
        raise BenchError("service_obs telemetry replay diverged")
    return WorkloadResult(
        rounds=requests,
        detail=(
            f"{repeats} seeded 240-tick workloads over split_restore "
            f"with flight recorders on, {events} telemetry lines, "
            "aggregated stream replay byte-identical"
        ),
    )


SCENARIOS: Dict[str, BenchScenario] = {
    scenario.name: scenario
    for scenario in (
        BenchScenario(
            name="core_ops",
            description=(
                "micro hot path: subquorum checks, LEARN evaluation, "
                "16-process partition/merge exchanges"
            ),
            runner=_run_core_ops,
        ),
        BenchScenario(
            name="campaign",
            description=(
                "macro hot path: pinned-seed 16-process YKD campaign "
                "(~10k rounds at full scale)"
            ),
            runner=_run_campaign,
        ),
        BenchScenario(
            name="campaign_batched",
            description=(
                "the campaign workload on the vectorized batch kernel "
                "(same rounds as campaign, measured off the fast path)"
            ),
            runner=_run_campaign_batched,
        ),
        BenchScenario(
            name="campaign_obs",
            description=(
                "the campaign workload with metrics, trace digesting "
                "and phase profiling attached (observer overhead)"
            ),
            runner=_run_campaign_obs,
        ),
        BenchScenario(
            name="campaign_causal",
            description=(
                "the campaign workload with causal span reconstruction "
                "and blame metrics attached (forensics overhead)"
            ),
            runner=_run_campaign_causal,
        ),
        BenchScenario(
            name="service_gcs",
            description=(
                "group communication substrate: pinned partition/heal "
                "schedules through negotiated membership on the memory "
                "transport (work unit: GCS ticks)"
            ),
            runner=_run_service_gcs,
        ),
        BenchScenario(
            name="service",
            description=(
                "user-facing availability: seeded heavy-tailed load "
                "routed against a splitting replicated store "
                "(work unit: requests routed)"
            ),
            runner=_run_service,
        ),
        BenchScenario(
            name="service_obs",
            description=(
                "the service workload with per-replica flight "
                "recorders, trace minting and the collector pull "
                "attached (telemetry overhead)"
            ),
            runner=_run_service_obs,
        ),
        BenchScenario(
            name="explore",
            description=(
                "bounded model checking: fork-based explorer vs its "
                "replay reference, plus the n=4 depth=2 sweep "
                "(work unit: scenarios verified)"
            ),
            runner=_run_explore,
        ),
    )
}


def scenario_names() -> Tuple[str, ...]:
    """All scenario names, in definition order."""
    return tuple(SCENARIOS)


def get_scenario(name: str) -> BenchScenario:
    """Look up one scenario by name."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise BenchError(
            f"unknown bench scenario {name!r}; known: {', '.join(SCENARIOS)}"
        ) from None
