"""Measurement, canonical BENCH files, and the regression diff.

One measurement runs one pinned scenario once and records wall time,
rounds/sec, peak RSS and the current commit hash.  Results serialize to
``BENCH_<scenario>.json`` at the repository root with sorted keys, so
the files diff cleanly commit over commit — that sequence of committed
files *is* the repo's perf trajectory.

Writing a new result embeds the headline numbers of the file it
replaces as ``baseline``, and the harness flags a regression when
rounds/sec drops more than ``regression_threshold`` below that
baseline (10% by default; CI uses 25% to absorb shared-runner noise).
"""

from __future__ import annotations

import json
import resource
import subprocess
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.bench.scenarios import BenchScenario, get_scenario
from repro.errors import BenchError

#: Version stamp of the BENCH JSON layout.
BENCH_FORMAT_VERSION = 1
BENCH_KIND = "repro.bench/result"

#: Relative rounds/sec drop (vs the previous file) that fails the run.
DEFAULT_REGRESSION_THRESHOLD = 0.10


@dataclass(frozen=True)
class BenchResult:
    """One measured execution of one scenario."""

    scenario: str
    quick: bool
    rounds: int
    wall_seconds: float
    rounds_per_second: float
    peak_rss_kb: int
    commit: str
    python: str
    detail: str = ""
    repeats: int = 1


def current_commit() -> str:
    """The checked-out commit hash, or ``"unknown"`` outside a repo."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except OSError:
        return "unknown"
    hash_text = completed.stdout.strip()
    return hash_text if completed.returncode == 0 and hash_text else "unknown"


def peak_rss_kb() -> int:
    """Peak resident set size of this process, in kilobytes.

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; normalize
    to kilobytes so the recorded trajectory is comparable.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - platform specific
        peak //= 1024
    return int(peak)


def measure(
    scenario: BenchScenario, quick: bool = False, repeats: int = 1
) -> BenchResult:
    """Run one scenario under the timer and collect its metrics.

    With ``repeats > 1`` the workload runs several times and the
    fastest execution is reported — the standard throughput-benchmark
    defence against scheduler noise (the workload itself is
    deterministic, so only the timing varies between repeats).
    """
    if repeats < 1:
        raise BenchError("repeats must be at least 1")
    best_wall = None
    workload = None
    for _ in range(repeats):
        started = time.perf_counter()
        workload = scenario.run(quick)
        wall = time.perf_counter() - started
        if best_wall is None or wall < best_wall:
            best_wall = wall
    assert workload is not None and best_wall is not None
    if workload.rounds <= 0:
        raise BenchError(f"scenario {scenario.name!r} executed no rounds")
    if best_wall <= 0.0:  # pragma: no cover - clock resolution guard
        best_wall = 1e-9
    return BenchResult(
        scenario=scenario.name,
        quick=quick,
        rounds=workload.rounds,
        wall_seconds=round(best_wall, 4),
        rounds_per_second=round(workload.rounds / best_wall, 1),
        peak_rss_kb=peak_rss_kb(),
        commit=current_commit(),
        python=".".join(str(part) for part in sys.version_info[:3]),
        detail=workload.detail,
        repeats=repeats,
    )


# ----------------------------------------------------------------------
# Canonical JSON files.
# ----------------------------------------------------------------------


def bench_path(output_dir: Path, scenario_name: str) -> Path:
    """Where ``BENCH_<scenario>.json`` lives for a given root."""
    return Path(output_dir) / f"BENCH_{scenario_name}.json"


def result_to_dict(
    result: BenchResult, baseline: Optional[Mapping[str, Any]] = None
) -> Dict[str, Any]:
    """JSON-compatible form of one result, with its predecessor inlined."""
    data: Dict[str, Any] = {
        "kind": BENCH_KIND,
        "format": BENCH_FORMAT_VERSION,
        "scenario": result.scenario,
        "quick": result.quick,
        "rounds": result.rounds,
        "wall_seconds": result.wall_seconds,
        "rounds_per_second": result.rounds_per_second,
        "peak_rss_kb": result.peak_rss_kb,
        "commit": result.commit,
        "python": result.python,
        "detail": result.detail,
        "repeats": result.repeats,
        "baseline": None,
    }
    if baseline is not None:
        speedup = None
        previous_rate = baseline.get("rounds_per_second")
        if previous_rate:
            speedup = round(result.rounds_per_second / previous_rate, 2)
        data["baseline"] = {
            "commit": baseline.get("commit"),
            "quick": baseline.get("quick"),
            "rounds_per_second": previous_rate,
            "wall_seconds": baseline.get("wall_seconds"),
            "peak_rss_kb": baseline.get("peak_rss_kb"),
            "speedup": speedup,
        }
    return data


def load_bench(path: Path) -> Dict[str, Any]:
    """Parse one BENCH file, validating the envelope."""
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise BenchError(f"{path}: not valid JSON ({error})") from error
    if data.get("kind") != BENCH_KIND:
        raise BenchError(f"{path}: not a bench result (kind={data.get('kind')!r})")
    return data


def write_bench(
    path: Path, result: BenchResult, baseline: Optional[Mapping[str, Any]]
) -> Path:
    """Serialize one result canonically; returns the written path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    text = json.dumps(
        result_to_dict(result, baseline), sort_keys=True, indent=2
    ) + "\n"
    path.write_text(text, encoding="utf-8")
    return path


# ----------------------------------------------------------------------
# Regression comparison.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class BenchComparison:
    """New result vs the previous BENCH file for the same scenario."""

    scenario: str
    previous_rate: Optional[float]
    new_rate: float
    threshold: float

    @property
    def speedup(self) -> Optional[float]:
        if not self.previous_rate:
            return None
        return self.new_rate / self.previous_rate

    @property
    def regressed(self) -> bool:
        """True when throughput dropped more than the threshold allows."""
        if not self.previous_rate:
            return False
        return self.new_rate < self.previous_rate * (1.0 - self.threshold)

    def describe(self) -> str:
        """One-line human-readable verdict for the CLI output."""
        if self.previous_rate is None:
            return f"{self.scenario}: no previous result — recorded as baseline"
        verdict = (
            f"REGRESSION (>{self.threshold:.0%} below baseline)"
            if self.regressed
            else "ok"
        )
        return (
            f"{self.scenario}: {self.new_rate:,.0f} rounds/s vs "
            f"{self.previous_rate:,.0f} baseline "
            f"({self.speedup:.2f}x) — {verdict}"
        )


def compare_to_previous(
    result: BenchResult,
    previous: Optional[Mapping[str, Any]],
    threshold: float = DEFAULT_REGRESSION_THRESHOLD,
) -> BenchComparison:
    """Diff one new result against the previous file's numbers."""
    previous_rate = None
    if previous is not None:
        raw = previous.get("rounds_per_second")
        if isinstance(raw, (int, float)) and raw > 0:
            previous_rate = float(raw)
    return BenchComparison(
        scenario=result.scenario,
        previous_rate=previous_rate,
        new_rate=result.rounds_per_second,
        threshold=threshold,
    )


# ----------------------------------------------------------------------
# The bench run driver (what the CLI subcommand calls).
# ----------------------------------------------------------------------


def run_bench(
    scenario_names: Optional[Sequence[str]] = None,
    quick: bool = False,
    output_dir: Path = Path("."),
    threshold: float = DEFAULT_REGRESSION_THRESHOLD,
    write: bool = True,
    repeats: int = 1,
    echo=print,
) -> List[BenchComparison]:
    """Measure scenarios, diff against the committed files, rewrite them.

    Returns one comparison per scenario; any ``regressed`` comparison
    should fail the calling process.  With ``write=False`` the committed
    files are left untouched (compare-only mode).
    """
    from repro.bench.scenarios import scenario_names as all_names

    names: Iterable[str] = scenario_names or all_names()
    output_dir = Path(output_dir)
    comparisons: List[BenchComparison] = []
    for name in names:
        scenario = get_scenario(name)
        path = bench_path(output_dir, name)
        previous = load_bench(path) if path.exists() else None
        result = measure(scenario, quick=quick, repeats=repeats)
        comparison = compare_to_previous(result, previous, threshold)
        comparisons.append(comparison)
        echo(
            f"{name}: {result.rounds} rounds in {result.wall_seconds:.2f}s "
            f"-> {result.rounds_per_second:,.0f} rounds/s, "
            f"peak RSS {result.peak_rss_kb} KB ({result.detail})"
        )
        echo("  " + comparison.describe())
        if write:
            write_bench(path, result, previous)
            echo(f"  written: {path}")
    return comparisons
