"""``repro.bench`` — the perf-trajectory benchmark subsystem.

Pinned-seed workloads over the simulation hot path, measured and
recorded as canonical ``BENCH_<scenario>.json`` files at the repository
root.  Committing the rewritten files after a perf-relevant change is
how the repo records its throughput trajectory; the harness itself
flags any >10% drop against the previous file (CI runs the quick
variant with a looser 25% gate).

Usage::

    repro-experiments bench             # full pinned workloads
    repro-experiments bench --quick     # CI-sized smoke variant
    repro-experiments bench campaign    # one scenario only

Every scenario is deterministic, so throughput changes are always code
changes — and the matching byte-identity tests
(``tests/test_byte_identity.py``) prove the optimized code still
executes the identical rounds.
"""

from repro.bench.harness import (
    BENCH_FORMAT_VERSION,
    BENCH_KIND,
    DEFAULT_REGRESSION_THRESHOLD,
    BenchComparison,
    BenchResult,
    bench_path,
    compare_to_previous,
    current_commit,
    load_bench,
    measure,
    peak_rss_kb,
    result_to_dict,
    run_bench,
    write_bench,
)
from repro.bench.scenarios import (
    SCENARIOS,
    BenchScenario,
    WorkloadResult,
    get_scenario,
    scenario_names,
)

__all__ = [
    "BENCH_FORMAT_VERSION",
    "BENCH_KIND",
    "DEFAULT_REGRESSION_THRESHOLD",
    "BenchComparison",
    "BenchResult",
    "BenchScenario",
    "SCENARIOS",
    "WorkloadResult",
    "bench_path",
    "compare_to_previous",
    "current_commit",
    "get_scenario",
    "load_bench",
    "measure",
    "peak_rss_kb",
    "result_to_dict",
    "run_bench",
    "scenario_names",
    "write_bench",
]
