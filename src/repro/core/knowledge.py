"""Shared reasoning helpers about exchanged algorithm state.

The dynamic voting algorithms of the thesis all exchange the same kind
of information on a view change — each process's last formed primary,
its ``lastFormed`` table, and its pending ambiguous sessions — and then
draw conclusions of the form "process q did / did not form session S".
This module holds that reasoning in one place so YKD, its unoptimized
variant, DFLS and 1-pending share a single, tested implementation.

Soundness of the two core rules (thesis Fig. 3-3, LEARN):

* *formed*: a process that formed S keeps S visible in its state until
  every member of S has been overwritten by a later formed session, so
  finding S among a peer's ``lastPrimary``/``lastFormed`` values proves
  S was formed.
* *not formed*: once a process installs any view after S's, it can
  never retroactively form S; so a peer m whose ``lastFormed`` entry
  for some member of S is still numbered below S provably did not form
  S (had m formed S, every member's entry would have been raised to S
  or beyond).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Set, Tuple

from repro.core.session import Session
from repro.types import ProcessId


class Outcome(enum.Enum):
    """What is known about whether a given process formed a session."""

    FORMED = "formed"
    NOT_FORMED = "not_formed"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class StateItem:
    """The round-1 state exchange payload (thesis Fig. 3-2).

    One per process per view: "send state (sessionNumber,
    ambiguousSessions, lastPrimary, and lastFormed) to everyone in V".
    Shared by the whole YKD family; 1-pending sends the same item with
    at most one ambiguous session.
    """

    session_number: int
    ambiguous: Tuple[Session, ...]
    last_primary: Session
    last_formed: Tuple[Tuple[ProcessId, Session], ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "ambiguous", tuple(self.ambiguous))
        object.__setattr__(self, "last_formed", tuple(sorted(self.last_formed)))

    @property
    def last_formed_map(self) -> Dict[ProcessId, Session]:
        try:
            return self._last_formed_map
        except AttributeError:
            cached = dict(self.last_formed)
            object.__setattr__(self, "_last_formed_map", cached)
            return cached

    def formed_evidence(self) -> Set[Session]:
        """Every session this state proves was successfully formed.

        The set is built once per (immutable) item and memoized; it is
        built exactly as the per-call version did — ``last_primary``
        first, then the ``last_formed`` sessions in tuple order — so
        even its iteration order is unchanged.  Callers must treat the
        returned set as read-only.
        """
        try:
            return self._formed_evidence
        except AttributeError:
            cached = {self.last_primary}
            cached.update(session for _, session in self.last_formed)
            object.__setattr__(self, "_formed_evidence", cached)
            return cached

    def best_formed_by_member(self) -> Dict[ProcessId, Session]:
        """For each process, the latest formed session here that includes it.

        "Latest" under the total session order, so for any pid the ACCEPT
        scan ``max(s for s in formed_evidence() if pid in s)`` equals
        ``best_formed_by_member().get(pid)`` exactly.  Computed once per
        item — every member of a view runs that scan against every
        peer's state, so sharing the single map removes the quadratic
        re-scans.  Read-only, like all memoized views of this item.
        """
        try:
            return self._best_formed_by_member
        except AttributeError:
            cached = {}
            for session in self.formed_evidence():
                for member in session.members:
                    current = cached.get(member)
                    if current is None or session > current:
                        cached[member] = session
            object.__setattr__(self, "_best_formed_by_member", cached)
            return cached


def make_state_item(
    session_number: int,
    ambiguous: Iterable[Session],
    last_primary: Session,
    last_formed: Mapping[ProcessId, Session],
) -> StateItem:
    """Convenience constructor taking a mapping for ``lastFormed``."""
    return StateItem(
        session_number=session_number,
        ambiguous=tuple(ambiguous),
        last_primary=last_primary,
        last_formed=tuple(last_formed.items()),
    )


def outcome_for(member_state: StateItem, session: Session) -> Outcome:
    """Did the process reporting ``member_state`` form ``session``?

    Evaluates the LEARN rules against one peer's exchanged state.  The
    peer is assumed to be a member of ``session``.

    Both arguments are immutable, so the answer is memoized on the
    state item (one dict per item, keyed by session): every process of
    a view evaluates the same (state, session) pairs, which made this
    the hottest function in campaign profiles.
    """
    try:
        memo = member_state._outcome_memo
    except AttributeError:
        memo = {}
        object.__setattr__(member_state, "_outcome_memo", memo)
    cached = memo.get(session)
    if cached is None:
        cached = _evaluate_outcome(member_state, session)
        memo[session] = cached
    return cached


def _evaluate_outcome(member_state: StateItem, session: Session) -> Outcome:
    if session in member_state.formed_evidence():
        return Outcome.FORMED
    last_formed = member_state.last_formed_map
    for member in session.members:
        entry = last_formed.get(member)
        if entry is not None and entry.number < session.number:
            # Had the peer formed `session`, this entry would have been
            # raised to `session` (or something later); it was not.
            return Outcome.NOT_FORMED
    return Outcome.UNKNOWN


def formed_anywhere(
    states: Mapping[ProcessId, StateItem], session: Session
) -> bool:
    """True when any exchanged state proves ``session`` was formed."""
    return any(session in state.formed_evidence() for state in states.values())


def provably_never_formed(
    states: Mapping[ProcessId, StateItem], session: Session
) -> bool:
    """True when the exchange proves no member ever formed ``session``.

    Requires *every* member of the session to be present in the
    exchange and to be provably innocent; with any member absent the
    session's fate stays unknown (this is exactly why 1-pending may
    need to hear from all members of its pending session).
    """
    for member in session.members:
        state = states.get(member)
        if state is None:
            return False
        if outcome_for(state, session) is not Outcome.NOT_FORMED:
            # FORMED means it certainly was formed; UNKNOWN means we
            # cannot prove innocence — both veto "never formed".
            return False
    return True


class KnowledgeBook:
    """Persistent per-process LEARN bookkeeping (thesis Fig. 3-3).

    YKD accumulates, across views, what it has learned about each of
    its own ambiguous sessions.  Two distinct kinds of fact exist, and
    conflating them is unsound (the ACCEPT rule propagates formation
    evidence through processes that never completed the session):

    * *the session was formed* — some member completed it; visible when
      the session appears among any peer's ``lastPrimary``/``lastFormed``
      values, whether the peer completed it or merely accepted it;
    * *member m never completed the session* — m's own ``lastFormed``
      row proves it, and the fact is stable (m left the session's view,
      so it can never complete it afterwards).

    The book survives view changes — a process may meet some members of
    a pending session now and the rest much later — and is consulted by
    the DELETE rule ("no member formed S").  It is private state; it is
    never transmitted.
    """

    __slots__ = ("_owner", "_not_formed", "_formed")

    def __init__(self, owner: ProcessId) -> None:
        self._owner = owner
        #: session -> members proven to have never completed it.
        self._not_formed: Dict[Session, Set[ProcessId]] = {}
        #: sessions proven formed by someone.
        self._formed: Set[Session] = set()

    def fork(self) -> "KnowledgeBook":
        """An independent copy carrying the same accumulated facts.

        Sessions are immutable and shared; the fact containers (and the
        per-session innocent sets, which grow in place as LEARN fires)
        are copied, so clone and original evolve independently.  Used
        by :meth:`PrimaryComponentAlgorithm.fork`.
        """
        clone = KnowledgeBook(self._owner)
        clone._not_formed = {
            session: set(members) for session, members in self._not_formed.items()
        }
        clone._formed = set(self._formed)
        return clone

    def open_session(self, session: Session) -> None:
        """Start tracking a session this process has just attempted.

        The owner knows it has not (yet) formed the session itself.
        """
        if self._owner not in session:
            raise ValueError(
                f"process {self._owner} cannot attempt session "
                f"{session.describe()} it is not a member of"
            )
        self._not_formed[session] = {self._owner}

    def close_session(self, session: Session) -> None:
        """Forget a session that is no longer pending."""
        self._not_formed.pop(session, None)
        self._formed.discard(session)

    def clear(self) -> None:
        """Forget everything (a new primary settles all pending sessions)."""
        self._not_formed.clear()
        self._formed.clear()

    def tracked_sessions(self) -> Tuple[Session, ...]:
        """The pending sessions currently under LEARN bookkeeping."""
        return tuple(self._not_formed)

    def learn(self, session: Session, member: ProcessId, outcome: Outcome) -> None:
        """Record one learned fact about a tracked session."""
        innocents = self._not_formed.get(session)
        if innocents is None or member not in session:
            return
        if outcome is Outcome.FORMED:
            self._formed.add(session)
        elif outcome is Outcome.NOT_FORMED:
            innocents.add(member)

    def learn_from_states(
        self, session: Session, states: Mapping[ProcessId, StateItem]
    ) -> None:
        """Apply the LEARN rules for one pending session to an exchange."""
        if session not in self._not_formed:
            return
        for member, state in states.items():
            if member == self._owner or member not in session:
                continue
            self.learn(session, member, outcome_for(state, session))

    def anyone_formed(self, session: Session) -> bool:
        """True when some member is known to have formed the session."""
        return session in self._formed

    def nobody_formed(self, session: Session) -> bool:
        """True when every member provably never completed the session.

        A session everyone failed to complete was never formed anywhere
        and imposes no constraint — the DELETE rule drops it.
        """
        innocents = self._not_formed.get(session)
        if innocents is None or session in self._formed:
            return False
        return session.members <= innocents

    def outcome(self, session: Session, member: ProcessId) -> Outcome:
        """Best current knowledge about one member of one session."""
        if session in self._formed:
            return Outcome.FORMED
        if member in self._not_formed.get(session, set()):
            return Outcome.NOT_FORMED
        return Outcome.UNKNOWN

    # ------------------------------------------------------------------
    # Durable-state export/import (used by repro.core.serialize).
    # ------------------------------------------------------------------

    def export_facts(self) -> Dict[str, list]:
        """All accumulated facts in a JSON-compatible structure."""
        return {
            "not_formed": [
                {
                    "session": {
                        "number": session.number,
                        "members": sorted(session.members),
                    },
                    "members": sorted(members),
                }
                for session, members in sorted(self._not_formed.items())
            ],
            "formed": [
                {"number": session.number, "members": sorted(session.members)}
                for session in sorted(self._formed)
            ],
        }

    def import_facts(self, data: Mapping[str, list]) -> None:
        """Replace all facts with a previously exported structure."""
        self.clear()
        for entry in data["not_formed"]:
            session = Session.of(
                int(entry["session"]["number"]), entry["session"]["members"]
            )
            self._not_formed[session] = set(entry["members"])
        for raw in data["formed"]:
            self._formed.add(Session.of(int(raw["number"]), raw["members"]))
