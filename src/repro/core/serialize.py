"""Snapshot and restore of algorithm state.

The thesis builds its framework "for real-world use" (Ch. 2); deployed
dynamic voting algorithms must keep their state on stable storage so a
process that restarts does not forget formed primaries or pending
ambiguous sessions — forgetting either re-opens the Fig. 3-1 split
brain.  This module converts every studied algorithm's state to and
from plain JSON-compatible dictionaries.

Snapshots capture *durable* state only: the identity, the quorum chain
(lastPrimary/lastFormed or cur_primary/formedViews), pending ambiguous
sessions with their ballot numbers, and LEARN knowledge.  Per-view
volatile state (collected messages of the round in flight) is excluded
deliberately — a restored process behaves like one whose view just
changed, which is exactly what view-synchronous recovery provides.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping

from repro.core.interface import PrimaryComponentAlgorithm
from repro.core.knowledge import KnowledgeBook
from repro.core.majority import SimpleMajority
from repro.core.mr1p import MR1p
from repro.core.registry import algorithm_class
from repro.core.session import Session
from repro.core.view import View
from repro.core.ykd import YKD
from repro.errors import ReproError

FORMAT_VERSION = 1


class SnapshotError(ReproError):
    """A snapshot could not be produced or restored."""


# ----------------------------------------------------------------------
# Value-object codecs.
# ----------------------------------------------------------------------


def session_to_dict(session: Session) -> Dict[str, Any]:
    """JSON-compatible form of a session."""
    return {"number": session.number, "members": sorted(session.members)}


def session_from_dict(data: Mapping[str, Any]) -> Session:
    """Inverse of :func:`session_to_dict`."""
    return Session.of(int(data["number"]), data["members"])


def view_to_dict(view: View) -> Dict[str, Any]:
    """JSON-compatible form of a view."""
    return {"seq": view.seq, "members": sorted(view.members)}


def view_from_dict(data: Mapping[str, Any]) -> View:
    """Inverse of :func:`view_to_dict`."""
    return View.of(data["members"], seq=int(data["seq"]))


# ----------------------------------------------------------------------
# Per-algorithm snapshots.
# ----------------------------------------------------------------------


def snapshot(algorithm: PrimaryComponentAlgorithm) -> Dict[str, Any]:
    """Durable-state snapshot of any registered algorithm instance."""
    base: Dict[str, Any] = {
        "format": FORMAT_VERSION,
        "algorithm": algorithm.name,
        "pid": algorithm.pid,
        "initial_view": view_to_dict(algorithm.initial_view),
    }
    if isinstance(algorithm, YKD):
        base["state"] = {
            "session_number": algorithm.session_number,
            "last_primary": session_to_dict(algorithm.last_primary),
            "last_formed": {
                str(member): session_to_dict(session)
                for member, session in sorted(algorithm.last_formed.items())
            },
            "ambiguous": [session_to_dict(s) for s in algorithm.ambiguous],
            "knowledge": (
                algorithm.knowledge.export_facts()
                if algorithm.knowledge is not None
                else None
            ),
        }
    elif isinstance(algorithm, MR1p):
        base["state"] = {
            "cur_primary": view_to_dict(algorithm.cur_primary),
            "formed_views": [
                view_to_dict(view)
                for view in sorted(
                    algorithm.formed_views, key=lambda v: (v.seq, sorted(v.members))
                )
            ],
            "pending": (
                view_to_dict(algorithm.pending)
                if algorithm.pending is not None
                else None
            ),
            "num": algorithm.num,
            "status": algorithm.status,
        }
    elif isinstance(algorithm, SimpleMajority):
        base["state"] = {}  # stateless beyond the universe
    else:
        raise SnapshotError(
            f"no snapshot codec for algorithm {type(algorithm).__name__}"
        )
    return base


def restore(data: Mapping[str, Any]) -> PrimaryComponentAlgorithm:
    """Rebuild an algorithm instance from a snapshot.

    The restored instance is *not* in any view: like a process fresh
    out of recovery, it waits for the group layer to deliver a view
    before participating again (and reports not-in-primary meanwhile).
    """
    if data.get("format") != FORMAT_VERSION:
        raise SnapshotError(
            f"unsupported snapshot format {data.get('format')!r}"
        )
    cls = algorithm_class(str(data["algorithm"]))
    initial_view = view_from_dict(data["initial_view"])
    algorithm = cls(int(data["pid"]), initial_view)
    algorithm._in_primary = False
    state = data["state"]
    if isinstance(algorithm, YKD):
        algorithm.session_number = int(state["session_number"])
        algorithm.last_primary = session_from_dict(state["last_primary"])
        algorithm.last_formed = {
            int(member): session_from_dict(raw)
            for member, raw in state["last_formed"].items()
        }
        algorithm.ambiguous = [
            session_from_dict(raw) for raw in state["ambiguous"]
        ]
        if algorithm.knowledge is not None and state["knowledge"] is not None:
            algorithm.knowledge.import_facts(state["knowledge"])
    elif isinstance(algorithm, MR1p):
        algorithm.cur_primary = view_from_dict(state["cur_primary"])
        algorithm.formed_views = {
            view_from_dict(raw) for raw in state["formed_views"]
        }
        pending = state["pending"]
        algorithm.pending = view_from_dict(pending) if pending else None
        algorithm.num = int(state["num"])
        algorithm.status = str(state["status"])
    return algorithm


def snapshots_equal(
    first: PrimaryComponentAlgorithm, second: PrimaryComponentAlgorithm
) -> bool:
    """Durable-state equality of two instances, via their snapshots."""
    return snapshot(first) == snapshot(second)
