"""The Transis-like view structure (thesis §2.1).

A *view* is "nothing more than a list of all of the processes which are
currently connected".  The thesis keeps the Transis view structure as
the one artifact of its original integration; here the equivalent is a
small immutable value object.  The driver stamps each installed view
with a sequence number so traces are readable, but algorithms never
rely on that number — they number their own sessions, exactly as in the
thesis pseudocode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.types import Members, ProcessId, ViewSeq, as_members, lexically_smallest, sorted_members


@dataclass(frozen=True)
class View:
    """An installed membership view.

    Attributes:
        members: the processes currently mutually connected.
        seq: driver-assigned installation sequence number (bookkeeping
            only; unique per run, monotone per process).
    """

    members: Members
    seq: ViewSeq = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "members", as_members(self.members))
        if self.seq < 0:
            raise ValueError("view seq must be non-negative")

    @classmethod
    def of(cls, processes: Iterable[ProcessId], seq: ViewSeq = 0) -> "View":
        """Convenience constructor from any iterable of process ids."""
        return cls(members=frozenset(processes), seq=seq)

    def __contains__(self, pid: ProcessId) -> bool:
        return pid in self.members

    def __iter__(self) -> Iterator[ProcessId]:
        return iter(sorted_members(self.members))

    def __len__(self) -> int:
        return len(self.members)

    @property
    def designated(self) -> ProcessId:
        """The lexically smallest member (dynamic linear voting tie-break)."""
        return lexically_smallest(self.members)

    def same_members(self, other: "View") -> bool:
        """True when both views contain exactly the same processes."""
        return self.members == other.members

    def describe(self) -> str:
        """Compact human-readable rendering, e.g. ``view#3{0,1,4}``."""
        inner = ",".join(str(p) for p in sorted_members(self.members))
        return f"view#{self.seq}{{{inner}}}"


def initial_view(n_processes: int) -> View:
    """The initial view W: all ``n_processes`` processes together.

    The thesis starts every simulation with all processes mutually
    connected and requires every later view to contain only processes
    present in this first view.
    """
    if n_processes < 1:
        raise ValueError("need at least one process")
    return View.of(range(n_processes), seq=0)
