"""The 1-pending variant: YKD restricted to one ambiguous session (§3.2.3).

1-pending does not attempt to form a new primary component while there
is a pending attempt anywhere in the view: it blocks until every
pending ambiguous session is resolved.  A pending session S resolves
when

* some exchanged state proves a member formed S (resolved *formed*),
* every member of S is present and provably never formed it (resolved
  *dead* — this is the worst case, which may require hearing from
  **all** members of S; a permanently absent member blocks forever), or
* the exchange proves a later primary containing S's owner formed,
  superseding S.

Resolution uses only the current exchange (no cross-view private
learning), so every member of the view reaches the same verdict from
the same snapshot and the protocol keeps YKD's two-round structure:
state exchange, then — only if nothing is pending — the attempt round.
This mirrors the dynamic voting algorithms of Jajodia & Mutchler and of
Amir's thesis, which recover interrupted updates before accepting new
ones.
"""

from __future__ import annotations

from typing import ClassVar, Dict

from repro.core.knowledge import (
    StateItem,
    formed_anywhere,
    provably_never_formed,
)
from repro.core.quorum import is_subquorum
from repro.core.session import Session
from repro.core.ykd import YKD
from repro.types import ProcessId


class OnePending(YKD):
    """YKD without pipelining: at most one ambiguous session, blocking."""

    name: ClassVar[str] = "one_pending"
    rounds_to_form: ClassVar[int] = 2
    optimized: ClassVar[bool] = False

    def _all_states_received(self) -> None:
        self._decided = True
        states = dict(self._states)
        members = self.current_view.members

        # ACCEPT: adopt the latest formed session that includes us.
        best = self.last_primary
        for state in states.values():
            formed = state.best_formed_by_member().get(self.pid)
            if formed is not None and formed > best:
                best = formed
        if best != self.last_primary:
            self.last_primary = best
            for member in best.members:
                self.last_formed[member] = best

        # Resolve our own pending session against the snapshot.
        if self.ambiguous:
            pending = self.ambiguous[0]
            if self._session_resolvable(states, self.pid, pending):
                self.ambiguous = []

        # The view may only proceed when *every* member's pending
        # session resolves; one unresolved session blocks everyone
        # (a blocked member would never send its attempt message).
        for owner, state in states.items():
            for pending in state.ambiguous:
                if not self._session_resolvable(states, owner, pending):
                    return

        max_session = max(state.session_number for state in states.values())
        max_primary = max(state.last_primary for state in states.values())
        if is_subquorum(members, max_primary.members):
            assert not self.ambiguous, "attempting with a pending session"
            self._begin_attempt(max_session + 1)

    @staticmethod
    def _session_resolvable(
        states: Dict[ProcessId, StateItem], owner: ProcessId, pending: Session
    ) -> bool:
        """Can this pending session be settled from the snapshot alone?

        Deterministic in the exchanged states, so all members agree.
        """
        if formed_anywhere(states, pending):
            return True
        # Superseded: a later formed primary containing the owner exists.
        # (Defensive: a live pending session normally precludes the owner
        # joining any later formation, but the rule mirrors DELETE.)
        # The session order is primarily by number, so the per-member
        # maximum has the greatest number any matching session carries.
        for state in states.values():
            formed = state.best_formed_by_member().get(owner)
            if formed is not None and formed.number > pending.number:
                return True
        return provably_never_formed(states, pending)

    def ambiguous_session_count(self) -> int:
        """At most one, by construction (§3.2.3)."""
        return min(len(self.ambiguous), 1)
