"""The simple majority baseline (thesis §3.3).

A stateless control: a component is the primary exactly when it holds a
majority of the *original* processes (with the usual lexical tie-break
for an exact half).  It exchanges no messages at all, so it can never
be interrupted — which is why the dynamic voting algorithms converge to
its availability when connectivity changes come too fast for any
message exchange to complete.
"""

from __future__ import annotations

from typing import Any, ClassVar, Sequence

from repro.core.interface import PrimaryComponentAlgorithm
from repro.core.quorum import simple_majority_primary
from repro.core.view import View
from repro.errors import ProtocolError
from repro.types import ProcessId


class SimpleMajority(PrimaryComponentAlgorithm):
    """Static majority voting over the initial process set."""

    name: ClassVar[str] = "simple_majority"
    rounds_to_form: ClassVar[int] = 0

    def _on_view(self, view: View) -> None:
        self._in_primary = simple_majority_primary(view.members, self.universe)

    def _on_items(self, sender: ProcessId, items: Sequence[Any]) -> None:
        raise ProtocolError(
            "simple majority never sends messages, yet received items "
            f"from {sender}"
        )
