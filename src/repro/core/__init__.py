"""Core abstractions: the interface of thesis Ch. 2 and the algorithms of Ch. 3."""

from repro.core.dfls import DFLS
from repro.core.interface import PrimaryComponentAlgorithm
from repro.core.majority import SimpleMajority
from repro.core.message import Message, Piggyback
from repro.core.mr1p import MR1p
from repro.core.one_pending import OnePending
from repro.core.quorum import is_majority, is_subquorum, simple_majority_primary
from repro.core.registry import (
    AMBIGUITY_ALGORITHMS,
    AVAILABILITY_ALGORITHMS,
    algorithm_class,
    algorithm_names,
    create_algorithm,
    display_name,
    register,
)
from repro.core.session import Session, initial_session
from repro.core.view import View, initial_view
from repro.core.ykd import UnoptimizedYKD, YKD

__all__ = [
    "AMBIGUITY_ALGORITHMS",
    "AVAILABILITY_ALGORITHMS",
    "DFLS",
    "MR1p",
    "Message",
    "OnePending",
    "Piggyback",
    "PrimaryComponentAlgorithm",
    "Session",
    "SimpleMajority",
    "UnoptimizedYKD",
    "View",
    "YKD",
    "algorithm_class",
    "algorithm_names",
    "create_algorithm",
    "display_name",
    "initial_session",
    "initial_view",
    "is_majority",
    "is_subquorum",
    "register",
    "simple_majority_primary",
]
