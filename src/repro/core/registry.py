"""Registry of the studied primary-component algorithms.

The thesis compares the availability of five algorithms — YKD, DFLS,
1-pending, MR1p and simple majority — plus the unoptimized YKD used in
the ambiguous-session measurements.  The registry maps stable names to
classes so experiments, benchmarks and applications can select
algorithms by configuration.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Type

from repro.core.dfls import DFLS
from repro.core.interface import PrimaryComponentAlgorithm
from repro.core.majority import SimpleMajority
from repro.core.mr1p import MR1p
from repro.core.one_pending import OnePending
from repro.core.view import View
from repro.core.ykd import UnoptimizedYKD, YKD, YKDAggressiveDelete
from repro.errors import ExperimentError
from repro.types import ProcessId

_REGISTRY: Dict[str, Type[PrimaryComponentAlgorithm]] = {}


def register(cls: Type[PrimaryComponentAlgorithm]) -> Type[PrimaryComponentAlgorithm]:
    """Add an algorithm class to the registry (extension point)."""
    name = cls.name
    if not name or name == "abstract":
        raise ValueError(f"{cls.__name__} must define a concrete name")
    existing = _REGISTRY.get(name)
    if existing is not None and existing is not cls:
        raise ValueError(f"algorithm name {name!r} already registered")
    _REGISTRY[name] = cls
    return cls


def unregister(name: str) -> None:
    """Remove an algorithm from the registry (tests, plug-in teardown)."""
    if name not in _REGISTRY:
        raise ValueError(f"algorithm name {name!r} is not registered")
    del _REGISTRY[name]


@contextmanager
def temporary_algorithm(
    cls: Type[PrimaryComponentAlgorithm],
) -> Iterator[Type[PrimaryComponentAlgorithm]]:
    """Register an algorithm for the duration of a ``with`` block.

    The differential fuzzer and the shrinker resolve algorithms by
    registry name; test fixtures (deliberately broken algorithms whose
    violations exercise the minimizer) use this to appear in the
    registry without leaking into other tests.
    """
    register(cls)
    try:
        yield cls
    finally:
        unregister(cls.name)


for _cls in (YKD, UnoptimizedYKD, YKDAggressiveDelete, DFLS, OnePending, MR1p, SimpleMajority):
    register(_cls)

#: The five algorithms whose availability the thesis plots (Figs. 4-1..4-6).
AVAILABILITY_ALGORITHMS: List[str] = [
    YKD.name,
    DFLS.name,
    OnePending.name,
    MR1p.name,
    SimpleMajority.name,
]

#: The three algorithms whose ambiguous sessions §4.2 measures.
AMBIGUITY_ALGORITHMS: List[str] = [YKD.name, UnoptimizedYKD.name, DFLS.name]

#: Algorithm families: variants of one base protocol that share its
#: formation rule and therefore its externally observable guarantees.
#: ``repro.check.differential`` cross-checks members of a family on
#: identical fault plans — properties the family must agree on (the
#: formed-primary chain) become divergence findings when they differ.
#: Names absent from this map are their own singleton family.  The
#: aggressive-delete YKD is deliberately *not* in the ykd family: the
#: Fig. 3-3 DELETE clause drops a vacuous constraint and therefore
#: forms (slightly) different primaries by design — the exact effect
#: the ``abl_never_formed`` ablation quantifies.  The §3.2.1
#: unoptimized YKD runs the identical decision rule, so it must agree.
FAMILIES: Dict[str, str] = {
    YKD.name: "ykd",
    UnoptimizedYKD.name: "ykd",
    YKDAggressiveDelete.name: "ykd_aggressive",
    DFLS.name: "dfls",
    OnePending.name: "one_pending",
    MR1p.name: "mr1p",
    SimpleMajority.name: "majority",
}

#: Human-readable labels matching the thesis figures' legends.
DISPLAY_NAMES: Dict[str, str] = {
    YKD.name: "YKD",
    UnoptimizedYKD.name: "Unoptimized YKD",
    DFLS.name: "DFLS",
    OnePending.name: "1-pending",
    MR1p.name: "MR1p",
    SimpleMajority.name: "Simple Majority",
    YKDAggressiveDelete.name: "YKD (aggressive delete)",
}


def algorithm_names() -> List[str]:
    """All registered algorithm names, sorted for stable iteration."""
    return sorted(_REGISTRY)


def algorithm_class(name: str) -> Type[PrimaryComponentAlgorithm]:
    """Look up a registered algorithm class by its stable name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ExperimentError(
            f"unknown algorithm {name!r}; known: {', '.join(algorithm_names())}"
        ) from None


def create_algorithm(
    name: str, pid: ProcessId, initial_view: View
) -> PrimaryComponentAlgorithm:
    """Instantiate one process's algorithm endpoint by name."""
    return algorithm_class(name)(pid, initial_view)


def display_name(name: str) -> str:
    """Human-readable label matching the thesis figures' legends."""
    return DISPLAY_NAMES.get(name, name)


def algorithm_family(name: str) -> str:
    """The family key of an algorithm (its own name when unmapped)."""
    return FAMILIES.get(name, name)
