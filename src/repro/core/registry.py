"""Registry of the studied primary-component algorithms.

The thesis compares the availability of five algorithms — YKD, DFLS,
1-pending, MR1p and simple majority — plus the unoptimized YKD used in
the ambiguous-session measurements.  The registry maps stable names to
classes so experiments, benchmarks and applications can select
algorithms by configuration.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Type

from repro.core.dfls import DFLS
from repro.core.interface import PrimaryComponentAlgorithm
from repro.core.majority import SimpleMajority
from repro.core.mr1p import MR1p
from repro.core.one_pending import OnePending
from repro.core.view import View
from repro.core.ykd import UnoptimizedYKD, YKD, YKDAggressiveDelete
from repro.errors import ExperimentError
from repro.types import ProcessId

_REGISTRY: Dict[str, Type[PrimaryComponentAlgorithm]] = {}


def register(cls: Type[PrimaryComponentAlgorithm]) -> Type[PrimaryComponentAlgorithm]:
    """Add an algorithm class to the registry (extension point)."""
    name = cls.name
    if not name or name == "abstract":
        raise ValueError(f"{cls.__name__} must define a concrete name")
    existing = _REGISTRY.get(name)
    if existing is not None and existing is not cls:
        raise ValueError(f"algorithm name {name!r} already registered")
    _REGISTRY[name] = cls
    return cls


for _cls in (YKD, UnoptimizedYKD, YKDAggressiveDelete, DFLS, OnePending, MR1p, SimpleMajority):
    register(_cls)

#: The five algorithms whose availability the thesis plots (Figs. 4-1..4-6).
AVAILABILITY_ALGORITHMS: List[str] = [
    YKD.name,
    DFLS.name,
    OnePending.name,
    MR1p.name,
    SimpleMajority.name,
]

#: The three algorithms whose ambiguous sessions §4.2 measures.
AMBIGUITY_ALGORITHMS: List[str] = [YKD.name, UnoptimizedYKD.name, DFLS.name]

#: Human-readable labels matching the thesis figures' legends.
DISPLAY_NAMES: Dict[str, str] = {
    YKD.name: "YKD",
    UnoptimizedYKD.name: "Unoptimized YKD",
    DFLS.name: "DFLS",
    OnePending.name: "1-pending",
    MR1p.name: "MR1p",
    SimpleMajority.name: "Simple Majority",
    YKDAggressiveDelete.name: "YKD (aggressive delete)",
}


def algorithm_names() -> List[str]:
    """All registered algorithm names, sorted for stable iteration."""
    return sorted(_REGISTRY)


def algorithm_class(name: str) -> Type[PrimaryComponentAlgorithm]:
    """Look up a registered algorithm class by its stable name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ExperimentError(
            f"unknown algorithm {name!r}; known: {', '.join(algorithm_names())}"
        ) from None


def create_algorithm(
    name: str, pid: ProcessId, initial_view: View
) -> PrimaryComponentAlgorithm:
    """Instantiate one process's algorithm endpoint by name."""
    return algorithm_class(name)(pid, initial_view)


def display_name(name: str) -> str:
    """Human-readable label matching the thesis figures' legends."""
    return DISPLAY_NAMES.get(name, name)
