"""The YKD dynamic voting algorithm (thesis §3.1, Figs. 3-2 — 3-4).

YKD (Yeger Lotem, Keidar, Dolev, PODC'97) selects primary components
under the dynamic linear voting rule while tolerating interruptions:
attempts that a connectivity change cut short are remembered as
*ambiguous sessions* and carried as constraints into later attempts, so
the algorithm never blocks waiting for an interrupted attempt to be
resolved — it pipelines.

Protocol, per installed view V (two message rounds):

1. every member broadcasts its state — ``(sessionNumber,
   ambiguousSessions, lastPrimary, lastFormed)``;
2. once a member holds everyone's state it LEARNs what it can about its
   own pending sessions, RESOLVEs its local state (ACCEPT/DELETE), then
   COMPUTEs the shared maxima and DECIDEs — deterministically, from the
   exchanged snapshot alone, so every member reaches the same verdict —
   whether V may become a primary.  If yes, it broadcasts an attempt
   message; receiving attempts from *everyone* in V forms the primary.

The LEARN/RESOLVE optimization prunes a process's stored ambiguous
sessions (worst case drops from exponential to linear in the number of
processes); :class:`UnoptimizedYKD` disables the pruning, which per the
thesis affects storage and message size but not availability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, ClassVar, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.interface import PrimaryComponentAlgorithm
from repro.core.knowledge import (
    KnowledgeBook,
    StateItem,
    make_state_item,
)
from repro.core.quorum import is_subquorum
from repro.core.session import Session, initial_session
from repro.core.view import View
from repro.errors import ProtocolError
from repro.types import ProcessId


@dataclass(frozen=True)
class AttemptItem:
    """Round-2 message: "let us form this session as the primary"."""

    session: Session


class YKD(PrimaryComponentAlgorithm):
    """The optimized YKD algorithm of thesis §3.1."""

    name: ClassVar[str] = "ykd"
    rounds_to_form: ClassVar[int] = 2
    chain_checkable: ClassVar[bool] = True

    #: Whether the LEARN/RESOLVE session-pruning optimization runs.
    optimized: ClassVar[bool] = True

    #: Whether the DELETE rule's "no member of S formed S" clause also
    #: deletes (thesis Fig. 3-3).  Off by default: deleting a session
    #: that provably never formed removes a (vacuous) constraint that
    #: other processes still carry, making the optimized variant
    #: slightly *more* available than the unoptimized one — but the
    #: thesis measured their availability as identical ("as expected"),
    #: so its availability-relevant YKD cannot include this pruning.
    #: The literal reading is available as :class:`YKDAggressiveDelete`
    #: and quantified by the ``abl_never_formed`` ablation experiment.
    delete_never_formed: ClassVar[bool] = False

    def __init__(self, pid: ProcessId, initial_view: View) -> None:
        super().__init__(pid, initial_view)
        w_session = initial_session(initial_view.members)
        #: Number the process will stamp on its next attempted session.
        self.session_number: int = 0
        #: The last primary component this process successfully formed
        #: (or accepted evidence of).
        self.last_primary: Session = w_session
        #: lastFormed(q): the last primary this process formed that
        #: included q.  Initially all entries equal the initial view W.
        self.last_formed: Dict[ProcessId, Session] = {
            q: w_session for q in self.universe
        }
        #: Pending ambiguous sessions, oldest first.
        self.ambiguous: List[Session] = []
        #: Persistent LEARN bookkeeping (optimized variant only).
        self.knowledge: Optional[KnowledgeBook] = (
            KnowledgeBook(pid) if self.optimized else None
        )
        # Per-view exchange bookkeeping.
        self._states: Dict[ProcessId, StateItem] = {}
        self._attempt_senders: Set[ProcessId] = set()
        self._attempt_session: Optional[Session] = None
        self._decided: bool = False
        self._early_attempts: List[Tuple[ProcessId, AttemptItem]] = []

    # ------------------------------------------------------------------
    # View handling and message dispatch.
    # ------------------------------------------------------------------

    def _on_view(self, view: View) -> None:
        self._in_primary = False
        self._states = {}
        self._attempt_senders = set()
        self._attempt_session = None
        self._decided = False
        self._early_attempts = []
        self._queue(self._state_item())

    def _state_item(self) -> StateItem:
        return make_state_item(
            session_number=self.session_number,
            ambiguous=self.ambiguous,
            last_primary=self.last_primary,
            last_formed=self.last_formed,
        )

    def _on_items(self, sender: ProcessId, items: Sequence[Any]) -> None:
        for item in items:
            if isinstance(item, StateItem):
                self._handle_state(sender, item)
            elif isinstance(item, AttemptItem):
                self._handle_attempt(sender, item)
            else:
                raise ProtocolError(
                    f"{self.name} cannot handle item {type(item).__name__}"
                )

    # ------------------------------------------------------------------
    # Round 1: the state exchange.
    # ------------------------------------------------------------------

    def _handle_state(self, sender: ProcessId, item: StateItem) -> None:
        if self._decided:
            raise ProtocolError(
                f"state from {sender} arrived after the decision was taken"
            )
        self._states[sender] = item
        # Senders are view members (the interface layer discards
        # cross-view messages), so counting keys IS the set comparison.
        if len(self._states) == len(self.current_view.members):
            self._all_states_received()
            # Over an asynchronous substrate, peers that completed
            # their exchange earlier may already have sent attempts;
            # judge them now that we have decided too.
            early, self._early_attempts = self._early_attempts, []
            for early_sender, early_item in early:
                self._handle_attempt(early_sender, early_item)

    def _all_states_received(self) -> None:
        """LEARN, RESOLVE, COMPUTE and DECIDE (thesis Fig. 3-2)."""
        self._decided = True
        states = self._states
        if self.optimized:
            self._learn(states)
        self._resolve(states)
        max_session = -1
        max_primary = None
        for state in states.values():
            if state.session_number > max_session:
                max_session = state.session_number
            last_primary = state.last_primary
            if max_primary is None or last_primary > max_primary:
                max_primary = last_primary
        assert max_primary is not None  # states is never empty here
        constraints = self._decision_constraints(states, max_primary)
        members = self.current_view.members
        allowed = is_subquorum(members, max_primary.members) and all(
            is_subquorum(members, constraint.members) for constraint in constraints
        )
        if allowed:
            self._begin_attempt(max_session + 1)

    def _begin_attempt(self, number: int) -> None:
        session = Session(number=number, members=self.current_view.members)
        self.session_number = number
        self.ambiguous.append(session)
        if self.knowledge is not None:
            self.knowledge.open_session(session)
        self._attempt_session = session
        self._queue(AttemptItem(session=session))

    def _decision_constraints(
        self, states: Dict[ProcessId, StateItem], max_primary: Session
    ) -> List[Session]:
        """COMPUTE maxAmbiguousSessions (thesis Fig. 3-4).

        The combined ambiguous sessions of all members whose number
        exceeds maxPrimary's; sessions at or below it are superseded by
        the maxPrimary constraint itself.
        """
        combined = {
            session
            for state in states.values()
            for session in state.ambiguous
            if session.number > max_primary.number
        }
        return sorted(combined)

    # ------------------------------------------------------------------
    # LEARN and RESOLVE (thesis Fig. 3-3).
    # ------------------------------------------------------------------

    def _learn(self, states: Dict[ProcessId, StateItem]) -> None:
        assert self.knowledge is not None
        for session in self.ambiguous:
            self.knowledge.learn_from_states(session, states)

    def _resolve(self, states: Dict[ProcessId, StateItem]) -> None:
        """ACCEPT the best formed session, then DELETE settled ones."""
        best = self.last_primary
        for state in states.values():
            formed = state.best_formed_by_member().get(self.pid)
            if formed is not None and formed > best:
                best = formed
        if self.knowledge is not None:
            for session in self.ambiguous:
                if self.knowledge.anyone_formed(session) and session > best:
                    best = session
        if best != self.last_primary:
            self.last_primary = best
            for member in best.members:
                self.last_formed[member] = best
        if self.optimized:
            self._delete_settled()

    def _delete_settled(self) -> None:
        """The DELETE rule: drop resolved or superseded ambiguous sessions."""
        assert self.knowledge is not None
        kept: List[Session] = []
        for session in self.ambiguous:
            superseded = (
                session == self.last_primary
                or session.number < self.last_primary.number
            )
            never_formed = self.delete_never_formed and self.knowledge.nobody_formed(
                session
            )
            if superseded or never_formed:
                self.knowledge.close_session(session)
            else:
                kept.append(session)
        self.ambiguous = kept

    # ------------------------------------------------------------------
    # Round 2: the attempt, and formation.
    # ------------------------------------------------------------------

    def _handle_attempt(self, sender: ProcessId, item: AttemptItem) -> None:
        if not self._decided:
            # A peer finished its state exchange before we finished
            # ours (possible when the substrate delivers with real
            # latency); hold its attempt until our own decision.  If
            # our exchange never completes — an input was lost to a
            # partition — the view is doomed and a new one follows.
            self._early_attempts.append((sender, item))
            return
        if self._attempt_session is None or item.session != self._attempt_session:
            raise ProtocolError(
                f"attempt for {item.session.describe()} from {sender} does not "
                "match the locally computed decision — the deterministic "
                "decision rule diverged"
            )
        self._attempt_senders.add(sender)
        # Senders are view members (checked at the interface layer), so
        # counting them IS the set comparison.
        if len(self._attempt_senders) == len(self.current_view.members):
            self._form_primary(self._attempt_session)

    def _form_primary(self, session: Session) -> None:
        """Everyone attempted: the session is the new primary component."""
        self.last_primary = session
        for member in session.members:
            self.last_formed[member] = session
        self._clear_ambiguous_after_formation(session)
        self._in_primary = True

    def _clear_ambiguous_after_formation(self, session: Session) -> None:
        """YKD deletes all ambiguous sessions the moment a primary forms.

        DFLS overrides this with its extra delete round (§3.2.2).
        """
        self.ambiguous = []
        if self.knowledge is not None:
            self.knowledge.clear()

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    def ambiguous_session_count(self) -> int:
        """Pending ambiguous sessions currently retained (§4.2 metric)."""
        return len(self.ambiguous)

    def formed_primaries(self) -> Tuple[Tuple[int, frozenset], ...]:
        """The latest formed primary we know of, keyed by session number."""
        return ((self.last_primary.number, self.last_primary.members),)

    def debug_stats(self) -> Dict[str, Any]:
        """Free-form internal statistics for traces and experiments."""
        stats = super().debug_stats()
        stats.update(
            session_number=self.session_number,
            last_primary=self.last_primary.describe(),
            states_received=len(self._states),
            attempting=self._attempt_session.describe()
            if self._attempt_session
            else None,
        )
        return stats


class YKDAggressiveDelete(YKD):
    """YKD with the literal Fig. 3-3 DELETE rule, including the
    "no member of S formed S" clause backed by persistent LEARN facts.

    Deleting a session that provably never formed drops a vacuous
    constraint, so this variant is (slightly) *more* available than
    plain YKD — at odds with the thesis' claim that the optimization
    never affects availability.  It is kept as a registered ablation
    subject (``abl_never_formed``) quantifying exactly that effect.
    """

    name: ClassVar[str] = "ykd_aggressive"
    delete_never_formed: ClassVar[bool] = True


class UnoptimizedYKD(YKD):
    """YKD without the LEARN/RESOLVE pruning (thesis §3.2.1).

    Runs the identical two-round protocol and the identical decision
    rule; the only difference is that pending ambiguous sessions are
    deleted exclusively when the process itself forms a new primary.
    The thesis observed identical availability and a higher (but still
    tiny) number of retained sessions.
    """

    name: ClassVar[str] = "ykd_unopt"
    optimized: ClassVar[bool] = False
