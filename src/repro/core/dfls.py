"""The DFLS variant: unoptimized YKD with an extra round (thesis §3.2.2).

The algorithm of De Prisco, Fekete, Lynch and Shvartsman (PODC'98)
differs from YKD in two ways:

* it does not implement the LEARN/RESOLVE pruning optimization, and
* it does not delete ambiguous sessions immediately when a new primary
  is formed — it waits for one more message exchange round inside the
  newly formed primary before deleting them.

Until that third round completes, the retained ambiguous sessions keep
acting as constraints on which views may become primaries.  That is the
source of DFLS's availability gap: the thesis observed YKD succeeding
where DFLS does not in roughly 3% of runs.  Accordingly, DFLS's
decision rule honours *every* retained ambiguous session in the
exchange (deletion is its only resolution mechanism), where YKD's
decision rule discards sessions its number bookkeeping proves
superseded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, ClassVar, Dict, List, Sequence, Set

from repro.core.knowledge import StateItem
from repro.core.session import Session
from repro.core.ykd import AttemptItem, YKD
from repro.errors import ProtocolError
from repro.types import ProcessId


@dataclass(frozen=True)
class ConfirmItem:
    """Round-3 message inside a freshly formed primary.

    When every member of the new primary has confirmed, the pending
    ambiguous sessions may finally be deleted.
    """

    session: Session


class DFLS(YKD):
    """Unoptimized YKD plus the delayed ambiguous-session deletion."""

    name: ClassVar[str] = "dfls"
    rounds_to_form: ClassVar[int] = 3
    optimized: ClassVar[bool] = False

    def __init__(self, pid: ProcessId, initial_view) -> None:
        super().__init__(pid, initial_view)
        self._confirm_senders: Set[ProcessId] = set()
        self._confirming: Session = None  # type: ignore[assignment]
        self._early_confirms: list = []

    def _on_view(self, view) -> None:
        self._confirm_senders = set()
        self._confirming = None  # type: ignore[assignment]
        self._early_confirms = []
        super()._on_view(view)

    # ------------------------------------------------------------------
    # Decision rule: every retained ambiguous session constrains.
    # ------------------------------------------------------------------

    def _decision_constraints(
        self, states: Dict[ProcessId, StateItem], max_primary: Session
    ) -> List[Session]:
        combined = {
            session for state in states.values() for session in state.ambiguous
        }
        return sorted(combined)

    # ------------------------------------------------------------------
    # Formation: keep ambiguous sessions, start the confirm round.
    # ------------------------------------------------------------------

    def _clear_ambiguous_after_formation(self, session: Session) -> None:
        """Do not delete yet — broadcast a confirm and wait for everyone."""
        self._confirming = session
        self._queue(ConfirmItem(session=session))
        early, self._early_confirms = self._early_confirms, []
        for sender, item in early:
            self._handle_confirm(sender, item)

    def _on_items(self, sender: ProcessId, items: Sequence[Any]) -> None:
        confirms = [item for item in items if isinstance(item, ConfirmItem)]
        rest = [item for item in items if not isinstance(item, ConfirmItem)]
        if rest:
            super()._on_items(sender, rest)
        for item in confirms:
            self._handle_confirm(sender, item)

    def _handle_confirm(self, sender: ProcessId, item: ConfirmItem) -> None:
        if self._confirming is None:
            # A peer formed before we did (asynchronous delivery); hold
            # its confirm until our own formation completes.
            self._early_confirms.append((sender, item))
            return
        if item.session != self._confirming:
            raise ProtocolError(
                f"confirm for {item.session.describe()} from {sender} does not "
                "match the locally formed primary"
            )
        self._confirm_senders.add(sender)
        if self._confirm_senders == self.current_view.members:
            # The extra round completed: ambiguous sessions may go.
            self.ambiguous = []
