"""Sessions: numbered attempts to form a primary component (thesis §3.1).

"A session is nothing more than a view with a number attached to it,
corresponding to a session to form a primary component.  These numbers
are used by YKD to determine the order in which views occurred."

Two disjoint components can in principle mint the same session number
for different member sets, so equality compares the full
``(number, members)`` pair.  Ordering is primarily by number; the
member tuple breaks ties deterministically so sorted containers behave.
The thesis orders by number alone — on the chain of *formed* primaries
numbers are strictly increasing, which the safety checker verifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

from repro.types import Members, ProcessId, as_members, lexically_smallest, sorted_members


@dataclass(frozen=True, order=False)
class Session:
    """A numbered view: one attempt (or success) at forming a primary."""

    number: int
    members: Members

    def __post_init__(self) -> None:
        object.__setattr__(self, "members", as_members(self.members))
        if self.number < 0:
            raise ValueError("session numbers start at zero")

    @classmethod
    def of(cls, number: int, processes: Iterable[ProcessId]) -> "Session":
        return cls(number=number, members=frozenset(processes))

    # Ordering: by number, then by member tuple for determinism.  The
    # key and the hash are each computed once and memoized — sessions
    # are immutable and hot (every LEARN evaluation hashes them, every
    # max-selection compares them), so recomputing ``sorted_members``
    # per comparison dominated campaign profiles.  Memoized attributes
    # live in ``__dict__`` outside the declared fields, so the
    # dataclass-generated ``__eq__`` and ``repr`` are untouched; the
    # explicit ``__hash__`` computes exactly the value the dataclass
    # would have (``hash((number, members))``), keeping set iteration
    # orders identical to the unmemoized implementation.
    def _key(self) -> Tuple[int, Tuple[ProcessId, ...]]:
        try:
            return self._cached_key
        except AttributeError:
            key = (self.number, sorted_members(self.members))
            object.__setattr__(self, "_cached_key", key)
            return key

    def __hash__(self) -> int:
        try:
            return self._cached_hash
        except AttributeError:
            value = hash((self.number, self.members))
            object.__setattr__(self, "_cached_hash", value)
            return value

    # The comparisons short-circuit on the numbers (the primary sort
    # dimension, and almost always decisive); only equal numbers fall
    # back to the full member-tuple tie-break.

    def __lt__(self, other: "Session") -> bool:
        if self.number != other.number:
            return self.number < other.number
        return self._key() < other._key()

    def __le__(self, other: "Session") -> bool:
        if self.number != other.number:
            return self.number < other.number
        return self._key() <= other._key()

    def __gt__(self, other: "Session") -> bool:
        if self.number != other.number:
            return self.number > other.number
        return self._key() > other._key()

    def __ge__(self, other: "Session") -> bool:
        if self.number != other.number:
            return self.number > other.number
        return self._key() >= other._key()

    def __contains__(self, pid: ProcessId) -> bool:
        return pid in self.members

    def __len__(self) -> int:
        return len(self.members)

    @property
    def designated(self) -> ProcessId:
        """The lexically smallest member, used for exact-half quorum ties."""
        return lexically_smallest(self.members)

    def describe(self) -> str:
        """Compact rendering, e.g. ``S3{0,1,4}``."""
        inner = ",".join(str(p) for p in sorted_members(self.members))
        return f"S{self.number}{{{inner}}}"

    def encoded_size_bits(self, universe_size: int) -> int:
        """Wire size of one session, following the thesis' accounting.

        §3.4: "An ambiguous session is roughly 2n bits in length, where
        n is the number of processes in the system" — an n-bit member
        bitmap plus roughly n bits of session number/framing.
        """
        if universe_size < 1:
            raise ValueError("universe_size must be positive")
        return 2 * universe_size


def initial_session(members: Iterable[ProcessId]) -> Session:
    """Session number 0 over the initial view W.

    Every process starts with ``lastPrimary`` and all ``lastFormed``
    entries equal to this session.
    """
    return Session.of(0, members)


def max_session(sessions: Iterable[Session]) -> Optional[Session]:
    """The highest-numbered session of an iterable, or None when empty."""
    best: Optional[Session] = None
    for session in sessions:
        if best is None or session > best:
            best = session
    return best
