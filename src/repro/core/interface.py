"""The algorithm-to-application interface (thesis Fig. 2-1).

A primary-component algorithm is an independent entity with no inherent
communication ability.  It needs exactly four operations:

* :meth:`PrimaryComponentAlgorithm.incoming_message` — pass every
  received message through the algorithm; it strips its piggybacked
  information and returns the application's message.
* :meth:`PrimaryComponentAlgorithm.outgoing_message_poll` — offer every
  outgoing message (or an empty one, after each receipt) so the
  algorithm can attach its own payload; returns the modified message,
  or None when the algorithm has nothing to add.
* :meth:`PrimaryComponentAlgorithm.view_changed` — report each
  connectivity change as a new view.
* :meth:`PrimaryComponentAlgorithm.in_primary` — ask, at leisure,
  whether this process is currently part of the primary component.

The implemented algorithms are event-driven: state changes only when a
message or view arrives, so the application never needs to poll beyond
the one ``outgoing_message_poll`` after each event.

Concrete algorithms subclass this ABC and implement three protocol
hooks (``_on_view``, ``_on_items``, initial state); the base class owns
the piggyback bookkeeping, the outgoing item queue, stale-message
discarding across view changes, and the initial-view membership checks
that the interface contract promises.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, ClassVar, Dict, List, Optional, Sequence

from repro.core.message import Message, Piggyback
from repro.core.view import View
from repro.errors import ProtocolError
from repro.types import Members, ProcessId


def _fork_value(value: Any) -> Any:
    """A behaviourally independent copy of one state attribute.

    Algorithm state in this package is built exclusively from plain
    containers (list/dict/set) of immutable values (frozen dataclasses
    like Session/View/StateItem, frozensets, tuples, scalars), plus the
    one stateful helper object that exposes its own ``fork()``
    (:class:`repro.core.knowledge.KnowledgeBook`).  Containers are
    copied (recursively for list/dict, whose values may themselves be
    containers — e.g. MR1p's ``Dict[View, Set[ProcessId]]`` vote
    tally); immutable values are shared, which also preserves their
    memoized caches.
    """
    if isinstance(value, list):
        return [_fork_value(item) for item in value]
    if isinstance(value, dict):
        return {key: _fork_value(item) for key, item in value.items()}
    if isinstance(value, set):
        return set(value)  # elements are immutable throughout the package
    fork = getattr(value, "fork", None)
    if fork is not None and callable(fork) and not isinstance(value, type):
        return fork()
    return value


class PrimaryComponentAlgorithm(ABC):
    """Base class for all primary-component selection algorithms.

    Subclasses must:

    * set the class attribute :attr:`name` (registry key);
    * implement :meth:`_on_view` — react to an installed view, queueing
      protocol items with :meth:`_queue`;
    * implement :meth:`_on_items` — react to protocol items received
      from a peer in the current view;
    * manage the :attr:`_in_primary` flag.
    """

    #: Registry key; subclasses override.
    name: ClassVar[str] = "abstract"

    #: Number of message rounds the algorithm needs to form a primary
    #: in the common case (used by the §3.4 comparison experiment).
    rounds_to_form: ClassVar[int] = 0

    #: Whether the formed-primary chain invariant (each primary is a
    #: subquorum of its predecessor, ordered by the keys returned from
    #: :meth:`formed_primaries`) is a proven property of the algorithm.
    #: The simulator enforces it only when this is True; the weaker
    #: "at most one live primary" invariant is enforced for everyone.
    chain_checkable: ClassVar[bool] = False

    def __init__(self, pid: ProcessId, initial_view: View) -> None:
        if pid not in initial_view:
            raise ProtocolError(
                f"process {pid} is not a member of the initial view "
                f"{initial_view.describe()}"
            )
        self.pid: ProcessId = pid
        self.initial_view: View = initial_view
        self.universe: Members = initial_view.members
        self.current_view: View = initial_view
        self._in_primary: bool = True  # all processes start together
        self._outgoing: List[Any] = []

    # ------------------------------------------------------------------
    # The four interface operations of Fig. 2-1.
    # ------------------------------------------------------------------

    def incoming_message(self, message: Message, sender: ProcessId) -> Message:
        """Process a received message; return it with our data stripped.

        Messages whose piggyback was stamped in a different view than
        the one we currently hold are discarded unprocessed: they
        straddle a view change, and every algorithm restarts with a
        state exchange on each new view, so their content is stale by
        construction.
        """
        piggyback = message.piggyback
        if piggyback is not None:
            if piggyback.sender != sender:
                raise ProtocolError(
                    f"piggyback claims sender {piggyback.sender}, "
                    f"delivery says {sender}"
                )
            if sender not in self.universe:
                raise ProtocolError(
                    f"message from unknown process {sender}; every view must "
                    "contain only processes from the initial view"
                )
            view = self.current_view
            if piggyback.view_seq == view.seq and sender in view.members:
                self._on_items(sender, piggyback.items)
        return message.stripped()

    def outgoing_message_poll(self, message: Message) -> Optional[Message]:
        """Offer an outgoing message; attach queued protocol items.

        Returns None when nothing needs to be added (the application
        should then send its original message unmodified, per Fig. 2-2).
        """
        if not self._outgoing:
            return None
        items = tuple(self._outgoing)
        self._outgoing.clear()
        piggyback = Piggyback(
            sender=self.pid, view_seq=self.current_view.seq, items=items
        )
        return message.with_piggyback(piggyback)

    def view_changed(self, new_view: View) -> None:
        """Install a new view reported by the group communication layer."""
        if self.pid not in new_view:
            raise ProtocolError(
                f"process {self.pid} was given view {new_view.describe()} "
                "that does not include it"
            )
        extra = new_view.members - self.universe
        if extra:
            raise ProtocolError(
                f"view {new_view.describe()} contains processes {sorted(extra)} "
                "that were not in the initial view"
            )
        self._outgoing.clear()
        self.current_view = new_view
        self._on_view(new_view)

    def in_primary(self) -> bool:
        """Whether this process currently belongs to the primary component."""
        return self._in_primary

    # ------------------------------------------------------------------
    # Hooks for subclasses.
    # ------------------------------------------------------------------

    @abstractmethod
    def _on_view(self, view: View) -> None:
        """React to a newly installed view."""

    @abstractmethod
    def _on_items(self, sender: ProcessId, items: Sequence[Any]) -> None:
        """React to protocol items received from ``sender``."""

    def _queue(self, item: Any) -> None:
        """Queue a protocol item for the next outgoing broadcast."""
        self._outgoing.append(item)

    # ------------------------------------------------------------------
    # State forking (repro.sim.explore's prefix-sharing model checker).
    # ------------------------------------------------------------------

    def fork(self) -> "PrimaryComponentAlgorithm":
        """An independent deep-enough copy of this process's state.

        The clone behaves byte-identically to the original under any
        subsequent event sequence, and mutating either side never leaks
        into the other.  ``__init__`` is deliberately bypassed: the
        clone receives a per-attribute copy of the live ``__dict__``
        (see :func:`_fork_value`), so mid-protocol state — half-filled
        exchanges, queued items, pending attempts — survives exactly.
        This is what lets the exhaustive explorer execute a shared
        scenario prefix once and branch from it, instead of replaying
        every prefix from the initial state.

        Subclasses whose state steps outside the plain-containers-of-
        immutables convention must override this (none currently do).
        """
        clone = object.__new__(type(self))
        clone.__dict__.update(
            {name: _fork_value(value) for name, value in self.__dict__.items()}
        )
        return clone

    # ------------------------------------------------------------------
    # Introspection used by the statistics collectors (§4.2).
    # ------------------------------------------------------------------

    def ambiguous_session_count(self) -> int:
        """Number of pending ambiguous sessions currently retained.

        Algorithms without the concept (simple majority) report zero.
        """
        return 0

    def formed_primaries(self) -> Sequence[tuple]:
        """Evidence of formed primaries held in this process's state.

        Returns ``(order_key, members)`` pairs, where ``order_key``
        totally orders formations (session numbers for the YKD family,
        view sequence numbers for MR1p).  The simulator's invariant
        checker accumulates these across processes and rounds to verify
        the primary-component chain: every formed primary must be a
        subquorum of its predecessor, with no two distinct primaries
        sharing an order key.  Stateless algorithms return nothing.
        """
        return ()

    def debug_stats(self) -> Dict[str, Any]:
        """Free-form internal statistics for traces and experiments."""
        return {
            "pid": self.pid,
            "in_primary": self._in_primary,
            "view": self.current_view.describe(),
            "ambiguous_sessions": self.ambiguous_session_count(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} pid={self.pid} "
            f"view={self.current_view.describe()} primary={self._in_primary}>"
        )
