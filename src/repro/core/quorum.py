"""Quorum primitives: majority, dynamic-linear SUBQUORUM, tie-breaks.

These implement the predicates of thesis Fig. 3-4 and §3.3:

* ``is_majority(x, y)`` — strictly more than half of ``y`` is in ``x``.
* ``is_subquorum(x, y)`` — the dynamic *linear* voting rule: a majority
  of ``y`` lies in ``x``, **or** exactly half does and the lexically
  smallest member of ``y`` is in ``x``.
* ``simple_majority_primary`` — the stateless baseline of §3.3, which
  applies the same exact-half tie-break against the full universe.

All functions take plain sets of process ids so every algorithm (and
test) shares one implementation.
"""

from __future__ import annotations

from typing import AbstractSet

from repro.types import ProcessId, lexically_smallest


def intersection_size(x: AbstractSet[ProcessId], y: AbstractSet[ProcessId]) -> int:
    """|x ∩ y|, taking the cheaper side of the intersection."""
    small, large = (x, y) if len(x) <= len(y) else (y, x)
    return sum(1 for pid in small if pid in large)


def is_majority(x: AbstractSet[ProcessId], y: AbstractSet[ProcessId]) -> bool:
    """True when strictly more than half of ``y``'s members are in ``x``."""
    if not y:
        raise ValueError("majority of an empty set is undefined")
    return 2 * intersection_size(x, y) > len(y)


def is_exact_half(x: AbstractSet[ProcessId], y: AbstractSet[ProcessId]) -> bool:
    """True when exactly half of ``y``'s members are in ``x``."""
    if not y:
        raise ValueError("half of an empty set is undefined")
    return 2 * intersection_size(x, y) == len(y)


def is_subquorum(x: AbstractSet[ProcessId], y: AbstractSet[ProcessId]) -> bool:
    """Thesis Fig. 3-4 SUBQUORUM(X, Y).

    ``x`` is a subquorum of ``y`` when more than half the processes of
    ``y`` are in ``x``, or exactly half are and ``y``'s lexically
    smallest process is one of them.  The tie-break makes the two
    halves of an even split distinguishable, so at most one half can
    proceed (dynamic *linear* voting, after Jajodia & Mutchler).
    """
    if not y:
        raise ValueError("subquorum of an empty set is undefined")
    doubled = 2 * intersection_size(x, y)
    if doubled > len(y):
        return True
    if doubled == len(y):
        return lexically_smallest(frozenset(y)) in x
    return False


def simple_majority_primary(
    component: AbstractSet[ProcessId], universe: AbstractSet[ProcessId]
) -> bool:
    """The §3.3 baseline: is ``component`` the primary under static voting?

    Declares a primary whenever a majority of the *original* processes
    is present; an exact half wins only if it holds the universe's
    lexically smallest process.  Because the rule is deterministic and
    the tie-break unambiguous, at most one component can satisfy it.
    """
    if not component:
        return False
    return is_subquorum(component, universe)


def quorum_deficit(x: AbstractSet[ProcessId], y: AbstractSet[ProcessId]) -> int:
    """How many more members of ``y`` must join ``x`` to reach a subquorum.

    Zero when ``is_subquorum(x, y)`` already holds.  Useful for
    diagnostics and for statistics about how far a blocked component is
    from being able to proceed.
    """
    if is_subquorum(x, y):
        return 0
    have = intersection_size(x, y)
    # Strict majority always suffices, regardless of the tie-break.
    need_strict = len(y) // 2 + 1
    return need_strict - have
