"""MR1p: majority-resilient 1-pending (thesis §3.2.4).

Like 1-pending, MR1p retains at most one ambiguous session; unlike it,
MR1p can resolve that session after hearing from only a *majority* of
its members, using a small ballot protocol in the style of the
part-time parliament [Lamport] and Phoenix [Malloth & Schiper].  The
price is message rounds: five when a pending session must be resolved,
two otherwise — and the thesis shows the long pipeline makes MR1p the
most interruption-prone algorithm of the study.

The rounds, per installed view V:

1. a process with a pending session S broadcasts ``<S, num, status>``;
2. every member of S answers what it knows: its own (num, status) when
   S is also its pending session, *formed* when S is among its formed
   views, *aborted* when it is a member of S with no record of it;
3. having heard from a majority of S, each participant casts a call —
   ``attempt`` if the highest-ballot status it saw was ``attempt``,
   otherwise ``try-fail``; a majority of try-fail calls abandons S, and
   attempt calls double as formation votes for S;
4. once unencumbered, a process whose current view is a subquorum of
   its last formed primary broadcasts ``<V, 1>``;
5. on ``<V, 1>`` from *all* members it broadcasts ``<attempt, V>``, and
   V becomes the primary at any process that receives attempt votes
   from a *majority* of V.

Deviation from the thesis pseudocode, documented in DESIGN.md: the
pseudocode sets ``is-primary = true`` whenever a process learns some
old session formed; we count a process as in the primary only when the
formed session is its *current* view, and we only let a learned-formed
session replace ``cur-primary`` when it was installed later than the
one we hold (views carry an installation sequence number), so a stale
resolution cannot regress the quorum chain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, ClassVar, Dict, Optional, Sequence, Set, Tuple

from repro.core.interface import PrimaryComponentAlgorithm
from repro.core.quorum import is_subquorum
from repro.core.view import View
from repro.errors import ProtocolError
from repro.types import ProcessId

# Status flags of the resolution ballot (thesis §3.2.4).
STATUS_NONE = "none"
STATUS_SENT = "sent"
STATUS_ATTEMPT = "attempt"
STATUS_TRY_FAIL = "try_fail"


@dataclass(frozen=True)
class TryItem:
    """Step-4 message ``<V, 1>``: request to declare V the primary."""

    view: View


@dataclass(frozen=True)
class AttemptVoteItem:
    """Step-5 / resolution message ``<attempt, V>``: a formation vote."""

    view: View


@dataclass(frozen=True)
class ShareItem:
    """Step-1 message ``<ambiguousSession, num, status>``."""

    view: View
    num: int
    status: str


@dataclass(frozen=True)
class InfoItem:
    """Step-2 answer about a session: ``status``, ``formed`` or ``aborted``."""

    view: View
    kind: str  # "status" | "formed" | "aborted"
    num: int
    status: str


@dataclass(frozen=True)
class FailCallItem:
    """Step-3 call ``<try-fail, V>`` (attempt calls reuse AttemptVoteItem)."""

    view: View
    num: int


class MR1p(PrimaryComponentAlgorithm):
    """Majority-resilient 1-pending."""

    name: ClassVar[str] = "mr1p"
    rounds_to_form: ClassVar[int] = 2
    rounds_to_form_pending: ClassVar[int] = 5

    def __init__(self, pid: ProcessId, initial_view: View) -> None:
        super().__init__(pid, initial_view)
        #: The primary component this process most recently formed/adopted.
        self.cur_primary: View = initial_view
        #: Every formed primary still remembered (with the W optimization).
        self.formed_views: Set[View] = {initial_view}
        #: The single pending ambiguous session, if any.
        self.pending: Optional[View] = None
        self.num: int = 0
        self.status: str = STATUS_NONE
        self._reset_collections()

    def _reset_collections(self) -> None:
        self._try_senders: Set[ProcessId] = set()
        self._attempt_votes: Dict[View, Set[ProcessId]] = {}
        self._infos: Dict[ProcessId, Tuple[int, str]] = {}
        self._fail_calls: Set[ProcessId] = set()
        self._call_done: bool = False
        self._formed_handled: Set[View] = set()
        self._responded: Set[View] = set()

    # ------------------------------------------------------------------
    # View handling.
    # ------------------------------------------------------------------

    def _on_view(self, view: View) -> None:
        self._in_primary = False
        self._reset_collections()
        if self.pending is not None:
            self._queue(ShareItem(view=self.pending, num=self.num, status=self.status))
        else:
            self._try_new()

    def _try_new(self) -> None:
        """Subroutine try-new: attempt the current view if quorum allows."""
        view = self.current_view
        if is_subquorum(view.members, self.cur_primary.members):
            self.pending = view
            self.num = 1
            self.status = STATUS_SENT
            self._queue(TryItem(view=view))
        else:
            self.pending = None
            self.num = 0
            self.status = STATUS_NONE

    # ------------------------------------------------------------------
    # Dispatch.
    # ------------------------------------------------------------------

    def _on_items(self, sender: ProcessId, items: Sequence[Any]) -> None:
        for item in items:
            if isinstance(item, TryItem):
                self._handle_try(sender, item)
            elif isinstance(item, AttemptVoteItem):
                self._handle_attempt_vote(sender, item)
            elif isinstance(item, ShareItem):
                self._handle_share(sender, item)
            elif isinstance(item, InfoItem):
                self._handle_info(sender, item)
            elif isinstance(item, FailCallItem):
                self._handle_fail_call(sender, item)
            else:
                raise ProtocolError(
                    f"{self.name} cannot handle item {type(item).__name__}"
                )

    # ------------------------------------------------------------------
    # Steps 4 and 5: forming the current view.
    # ------------------------------------------------------------------

    def _handle_try(self, sender: ProcessId, item: TryItem) -> None:
        if item.view != self.current_view:
            raise ProtocolError(
                f"<V,1> for {item.view.describe()} inside "
                f"{self.current_view.describe()}"
            )
        self._try_senders.add(sender)
        self._maybe_vote_attempt()

    def _maybe_vote_attempt(self) -> None:
        view = self.current_view
        if (
            self.pending == view
            and self.status == STATUS_SENT
            and self._try_senders == view.members
        ):
            self.status = STATUS_ATTEMPT
            self.num = 2
            self._queue(AttemptVoteItem(view=view))

    def _handle_attempt_vote(self, sender: ProcessId, item: AttemptVoteItem) -> None:
        view = item.view
        votes = self._attempt_votes.setdefault(view, set())
        votes.add(sender)
        if 2 * len(votes & view.members) > len(view.members):
            self._session_formed(view)

    def _session_formed(self, view: View) -> None:
        """A majority voted attempt: ``view`` is (or was) formed."""
        if view in self._formed_handled:
            return
        self._formed_handled.add(view)
        self._adopt_formed(view)
        if view == self.current_view:
            self.pending = None
            self.num = 0
            self.status = STATUS_NONE
            self._in_primary = True
        elif self.pending == view:
            # Retroactive completion of our interrupted old session.
            self.pending = None
            self.num = 0
            self.status = STATUS_NONE
            self._try_new()

    def _adopt_formed(self, view: View) -> None:
        """Record a formed primary, advancing cur_primary monotonically."""
        self.formed_views.add(view)
        if view.members == self.universe:
            # The thesis' optimization: a primary equal to the original
            # view supersedes every remembered formed view.
            self.formed_views = {view}
        if view.seq > self.cur_primary.seq:
            self.cur_primary = view

    # ------------------------------------------------------------------
    # Steps 1-3: resolving a pending ambiguous session.
    # ------------------------------------------------------------------

    def _handle_share(self, sender: ProcessId, item: ShareItem) -> None:
        """Step 2: answer what we know about the queried session.

        The answer goes out in the *next* round — shares are not taken
        as information directly, which keeps the resolution pipeline at
        the thesis' full five rounds (share, report, call, try,
        attempt) and thereby preserves MR1p's defining fragility.
        """
        session = item.view
        if session in self._responded:
            return  # one broadcast answer per queried session per view
        self._responded.add(session)
        if self.pending is not None and session == self.pending:
            self._queue(
                InfoItem(view=session, kind="status", num=self.num, status=self.status)
            )
        elif session in self.formed_views and self.pid in session:
            self._queue(InfoItem(view=session, kind="formed", num=0, status=STATUS_NONE))
        elif self.pid in session:
            # We are a member with no record of the session forming: it
            # cannot have formed (our attempt message was necessary).
            self._queue(InfoItem(view=session, kind="aborted", num=0, status=STATUS_NONE))

    def _handle_info(self, sender: ProcessId, item: InfoItem) -> None:
        if self.pending is None or item.view != self.pending:
            return  # a stale answer about a session we already settled
        if item.kind == "formed":
            self._adopt_formed(item.view)
            self.pending = None
            self.num = 0
            self.status = STATUS_NONE
            self._try_new()
        elif item.kind == "aborted":
            self.pending = None
            self.num = 0
            self.status = STATUS_NONE
            self._try_new()
        elif item.kind == "status":
            self._infos[sender] = (item.num, item.status)
            self._maybe_call()
        else:
            raise ProtocolError(f"unknown info kind {item.kind!r}")

    def _maybe_call(self) -> None:
        """Cast the resolution call once a majority of S has reported."""
        if self._call_done or self.pending is None:
            return
        session = self.pending
        known = set(self._infos) & session.members
        if 2 * len(known) <= len(session.members):
            return
        max_num = max(self._infos[member][0] for member in known)
        statuses_at_max = {
            self._infos[member][1]
            for member in known
            if self._infos[member][0] == max_num
        }
        self._call_done = True
        self.num = max_num + 1
        if STATUS_ATTEMPT in statuses_at_max:
            # Someone reached the attempt stage: complete the formation.
            self.status = STATUS_ATTEMPT
            self._queue(AttemptVoteItem(view=session))
        else:
            # Highest ballot was sent/try-fail: call the session off.
            self.status = STATUS_TRY_FAIL
            self._queue(FailCallItem(view=session, num=self.num))

    def _handle_fail_call(self, sender: ProcessId, item: FailCallItem) -> None:
        if self.pending is None or item.view != self.pending:
            return
        self._fail_calls.add(sender)
        if 2 * len(self._fail_calls & item.view.members) > len(item.view.members):
            self.pending = None
            self.num = 0
            self.status = STATUS_NONE
            self._try_new()

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    def formed_primaries(self) -> Tuple[Tuple[int, frozenset], ...]:
        """Recently formed views, keyed by installation sequence.

        Reports only the most recent few: the invariant checker
        accumulates history itself, and iterating an ever-growing
        ``formed_views`` every round would make million-change
        endurance runs quadratic.
        """
        views = set(self.formed_views)
        views.add(self.cur_primary)
        recent = sorted((view.seq, view.members) for view in views)[-8:]
        return tuple(recent)

    def ambiguous_session_count(self) -> int:
        # Only a session carried over from an interrupted view is
        # "pending ambiguous" in the thesis' sense; the in-progress
        # attempt at the current view is normal operation.
        if self.pending is not None and self.pending != self.current_view:
            return 1
        return 0

    def debug_stats(self) -> Dict[str, Any]:
        stats = super().debug_stats()
        stats.update(
            cur_primary=self.cur_primary.describe(),
            formed_views=len(self.formed_views),
            pending=self.pending.describe() if self.pending else None,
            num=self.num,
            status=self.status,
        )
        return stats
