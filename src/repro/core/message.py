"""Application messages and the piggyback envelope (thesis §2.1).

The interface of Fig. 2-1 "piggybacks" algorithm information onto
messages sent by the application: every outgoing application message is
offered to the algorithm, which may attach its own payload; every
incoming message is passed through the algorithm, which strips that
payload before the application sees it.  The application never sees the
extra information exchanged by the algorithm.

``Message`` is the unit the application deals in.  The algorithm's
attachment is a :class:`Piggyback`: the sender's id, the sender's
current view sequence number (used to discard messages that straddle a
view change), and a list of protocol items.  Protocol items are small
frozen dataclasses defined by each algorithm module; the envelope
treats them as opaque.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, is_dataclass
from typing import Any, List, Optional, Sequence, Tuple

from repro.types import ProcessId, ViewSeq


@dataclass(frozen=True, slots=True)
class Piggyback:
    """The algorithm-owned attachment riding on an application message."""

    sender: ProcessId
    view_seq: ViewSeq
    items: Tuple[Any, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "items", tuple(self.items))

    def __len__(self) -> int:
        return len(self.items)

    def with_items(self, items: Sequence[Any]) -> "Piggyback":
        """A copy of this attachment carrying different protocol items.

        The message boundary's only mutation point: fault injection
        (``repro.faults.byzantine``) rewrites protocol items here
        without ever touching the sending algorithm's state — the
        algorithm under test stays correct code fed adversarial
        messages.
        """
        return Piggyback(
            sender=self.sender, view_seq=self.view_seq, items=tuple(items)
        )


@dataclass(slots=True)
class Message:
    """A broadcast message as the application sees it.

    Attributes:
        payload: the application's own content; opaque to the library.
        piggyback: algorithm attachment, or None.  Applications must
            treat this field as private to the algorithm.

    Slotted because the simulator allocates one per poll and per
    delivery — millions per campaign.
    """

    payload: Any = None
    piggyback: Optional[Piggyback] = None

    @classmethod
    def empty(cls) -> "Message":
        """The empty message the application offers after each receipt.

        Fig. 2-2: on every receive, the application immediately polls
        the algorithm with an empty message so the algorithm can
        communicate even when the application itself is idle.
        """
        return cls(payload=None, piggyback=None)

    def is_empty(self) -> bool:
        """True when neither application nor algorithm content is present."""
        return self.payload is None and self.piggyback is None

    def with_piggyback(self, piggyback: Piggyback) -> "Message":
        """A copy of this message carrying the given attachment."""
        return Message(payload=self.payload, piggyback=piggyback)

    def stripped(self) -> "Message":
        """This message with the algorithm attachment removed.

        Returns ``self`` when there is nothing to strip (the instance
        is not copied — callers treat the result as read-only).
        """
        if self.piggyback is None:
            return self
        return Message(payload=self.payload, piggyback=None)


def estimate_item_size_bits(item: Any, universe_size: int) -> int:
    """Rough wire size of one protocol item, in bits.

    Follows the thesis' accounting style (§3.4): a session costs about
    ``2n`` bits (an ``n``-bit member bitmap plus number/framing), a
    process id costs ``ceil(log2 n)`` rounded up to 8, an integer or
    flag costs 8, and each nested field is summed recursively.  The
    estimate exists so experiments can reproduce the "message sizes can
    typically be constrained to two kilobytes or less" claim; it is not
    a serializer.
    """
    # Imported here to avoid a cycle: session.py does not know messages.
    from repro.core.session import Session

    if item is None:
        return 0
    if isinstance(item, Session):
        return item.encoded_size_bits(universe_size)
    if isinstance(item, frozenset):
        return universe_size  # member bitmap
    if isinstance(item, bool):
        return 1
    if isinstance(item, int):
        return 8
    if isinstance(item, str):
        return 8  # status flags are one-byte enums on the wire
    if isinstance(item, (list, tuple)):
        return sum(estimate_item_size_bits(sub, universe_size) for sub in item)
    if isinstance(item, dict):
        return sum(
            estimate_item_size_bits(key, universe_size)
            + estimate_item_size_bits(value, universe_size)
            for key, value in item.items()
        )
    if is_dataclass(item):
        return 8 + sum(  # 8 bits of type tag
            estimate_item_size_bits(getattr(item, f.name), universe_size)
            for f in fields(item)
        )
    raise TypeError(f"cannot size protocol item of type {type(item).__name__}")


def estimate_piggyback_size_bits(piggyback: Piggyback, universe_size: int) -> int:
    """Wire size estimate of a full piggyback attachment, in bits."""
    header = 16  # sender id + view seq framing
    return header + sum(
        estimate_item_size_bits(item, universe_size) for item in piggyback.items
    )
