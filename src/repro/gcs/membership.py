"""Membership agreement: turning reachability into agreed views.

Group communication services (Transis, ISIS, Phoenix, xAMp — the
systems the thesis cites) report connectivity changes as *views* that
all surviving members agree on.  This module implements a small
coordinator-based membership protocol over the packet network:

1. each process owns a **failure detector** fed by the topology oracle
   with a one-tick delay — it learns its current reachable set, not
   anyone's protocol state;
2. when a process's reachable set disagrees with its installed view and
   it is the *coordinator* of that set (lowest id), it broadcasts a
   ``Propose(view_id, members)``, where ``view_id = (epoch, coord)``
   and epoch exceeds every epoch the coordinator has seen;
3. members whose reachable set matches the proposal answer ``Ack``;
4. on acks from every proposed member, the coordinator broadcasts
   ``Install``; receivers (and the coordinator) install the view.

Safety — processes that install the same ``view_id`` install the same
member set — holds trivially because the member list rides inside
``Install``.  Liveness — a stably connected component eventually
installs a common view — follows because its coordinator keeps
re-proposing with fresh epochs until a round of acks survives; the
tests exercise both, including proposals destroyed mid-flight by
further topology changes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.types import Members, ProcessId

#: Totally ordered view identifier: (epoch, coordinator id).
ViewId = Tuple[int, ProcessId]


@dataclass(frozen=True)
class AgreedView:
    """A membership view agreed through the protocol."""

    view_id: ViewId
    members: Members

    @property
    def epoch(self) -> int:
        return self.view_id[0]


@dataclass(frozen=True)
class Propose:
    view_id: ViewId
    members: Members


@dataclass(frozen=True)
class Ack:
    view_id: ViewId


@dataclass(frozen=True)
class Install:
    view_id: ViewId
    members: Members


@dataclass(frozen=True)
class Nudge:
    """A member's request for a fresh agreement.

    Needed for liveness when the coordinator's installed view happens
    to match the (restored) topology while other members' views do not
    — e.g. their copy of an earlier ``Install`` was dropped during
    churn.  The coordinator sees no mismatch itself, so the out-of-sync
    members must ask.
    """

    current_view_id: ViewId


class MembershipAgent:
    """One process's membership state machine."""

    #: Ticks a proposal may wait for acks before being retried with a
    #: fresh epoch (failure detectors lag one tick, so peers may reject
    #: a proposal they would accept a moment later).
    PROPOSAL_TIMEOUT_TICKS = 4


    def __init__(self, pid: ProcessId, universe: Members) -> None:
        self.pid = pid
        self.universe = universe
        initial = AgreedView(view_id=(0, min(universe)), members=universe)
        self.current_view: AgreedView = initial
        self.highest_epoch: int = 0
        self._reachable: Members = universe
        self._proposal: Optional[Propose] = None
        self._acks: Set[ProcessId] = set()
        self._proposal_age: int = 0
        self._out_of_sync_ticks: int = 0
        self._nudged: bool = False
        self.installed_views: List[AgreedView] = [initial]

    # ------------------------------------------------------------------
    # Inputs.
    # ------------------------------------------------------------------

    def observe_reachable(self, reachable: Members) -> List[Tuple[ProcessId, object]]:
        """Feed the failure detector; returns (dst, payload) sends."""
        reachable = frozenset(reachable) | {self.pid}
        if reachable != self._reachable:
            self._reachable = reachable
            # Any in-progress agreement is stale the moment the world
            # changes; abandon it and let a fresh epoch start.
            self._proposal = None
            self._acks = set()
        elif self._proposal is not None:
            self._proposal_age += 1
            if self._proposal_age > self.PROPOSAL_TIMEOUT_TICKS:
                # Peers may have rejected the proposal while their
                # detectors lagged; retry under a fresh epoch.
                self._proposal = None
                self._acks = set()
        sends = self._maybe_propose()
        sends.extend(self._maybe_nudge())
        return sends

    def _maybe_nudge(self) -> List[Tuple[ProcessId, object]]:
        """Out-of-sync non-coordinators ask for agreement every tick.

        Nudging *every* tick (rather than periodically) matters for the
        simulation's stability detection: while any process's view
        disagrees with its reachable set, traffic keeps flowing, so one
        silent tick proves the whole system has converged.
        """
        if self._is_coordinator() or not self._needs_new_view():
            self._out_of_sync_ticks = 0
            return []
        self._out_of_sync_ticks += 1
        coordinator = min(self._reachable)
        return [(coordinator, Nudge(current_view_id=self.current_view.view_id))]

    def handle(self, sender: ProcessId, payload: object) -> List[Tuple[ProcessId, object]]:
        """Process a membership control message; returns sends."""
        if isinstance(payload, Propose):
            return self._handle_propose(sender, payload)
        if isinstance(payload, Ack):
            return self._handle_ack(sender, payload)
        if isinstance(payload, Install):
            return self._handle_install(payload)
        if isinstance(payload, Nudge):
            return self._handle_nudge(sender, payload)
        raise TypeError(f"not a membership payload: {type(payload).__name__}")

    def _handle_nudge(
        self, sender: ProcessId, nudge: Nudge
    ) -> List[Tuple[ProcessId, object]]:
        """A member disagrees with us about the current view: re-agree.

        Only meaningful at the coordinator; a fresh epoch resolves the
        divergence even when our own view already matches the world.
        """
        if not self._is_coordinator():
            return []
        if nudge.current_view_id == self.current_view.view_id:
            return []  # the nudger caught up in the meantime
        if self._proposal is not None:
            return []  # an agreement is already in flight
        self.highest_epoch += 1
        proposal = Propose(
            view_id=(self.highest_epoch, self.pid), members=self._reachable
        )
        self._proposal = proposal
        self._acks = {self.pid}
        self._proposal_age = 0
        if len(self._reachable) == 1:
            return self._complete_proposal()
        return [(dst, proposal) for dst in sorted(self._reachable - {self.pid})]

    # ------------------------------------------------------------------
    # Protocol steps.
    # ------------------------------------------------------------------

    def _is_coordinator(self) -> bool:
        return self.pid == min(self._reachable)

    def _needs_new_view(self) -> bool:
        return self._reachable != self.current_view.members

    def _maybe_propose(self) -> List[Tuple[ProcessId, object]]:
        if not (self._is_coordinator() and self._needs_new_view()):
            return []
        if self._proposal is not None:
            return []  # a proposal for this reachable set is in flight
        self.highest_epoch += 1
        proposal = Propose(
            view_id=(self.highest_epoch, self.pid), members=self._reachable
        )
        self._proposal = proposal
        self._acks = {self.pid}
        self._proposal_age = 0
        sends = [
            (dst, proposal) for dst in sorted(self._reachable - {self.pid})
        ]
        if len(self._reachable) == 1:
            # Alone: nothing to wait for.
            return self._complete_proposal()
        return sends

    def _handle_propose(
        self, sender: ProcessId, proposal: Propose
    ) -> List[Tuple[ProcessId, object]]:
        self.highest_epoch = max(self.highest_epoch, proposal.view_id[0])
        if proposal.members != self._reachable:
            return []  # we see a different world; the proposer retries
        return [(sender, Ack(view_id=proposal.view_id))]

    def _handle_ack(
        self, sender: ProcessId, ack: Ack
    ) -> List[Tuple[ProcessId, object]]:
        if self._proposal is None or ack.view_id != self._proposal.view_id:
            return []  # ack for an abandoned proposal
        self._acks.add(sender)
        if self._acks == self._proposal.members:
            return self._complete_proposal()
        return []

    def _complete_proposal(self) -> List[Tuple[ProcessId, object]]:
        assert self._proposal is not None
        install = Install(
            view_id=self._proposal.view_id, members=self._proposal.members
        )
        sends = [
            (dst, install)
            for dst in sorted(self._proposal.members - {self.pid})
        ]
        self._proposal = None
        self._acks = set()
        self._install(install)
        return sends

    def _handle_install(self, install: Install) -> List[Tuple[ProcessId, object]]:
        self._install(install)
        return []

    def _install(self, install: Install) -> None:
        self.highest_epoch = max(self.highest_epoch, install.view_id[0])
        if install.view_id <= self.current_view.view_id:
            return  # stale install (e.g. delayed duplicate)
        if self.pid not in install.members:
            return  # defensive: never install a view we are not in
        if install.members != self._reachable:
            # The world moved on while the install was in flight; a
            # fresh agreement will follow, but installing an already
            # wrong view would only thrash the layers above.
            return
        view = AgreedView(view_id=install.view_id, members=install.members)
        self.current_view = view
        self.installed_views.append(view)

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------

    @property
    def view_members(self) -> Members:
        return self.current_view.members

    def view_seq(self) -> int:
        """A single integer that orders views identically at every
        member (epochs are globally comparable; the coordinator id
        breaks epoch ties deterministically)."""
        epoch, coord = self.current_view.view_id
        return epoch * (max(self.universe) + 1) + coord
