"""A Transis-like group communication substrate (thesis §2.1).

The simulation driver in `repro.sim` plays the group-communication role
directly, exactly as the thesis' testing system did.  This package
builds the real thing the thesis originally deployed YKD on: a
pluggable packet transport (in-memory, UDP or TCP — see
:mod:`repro.gcs.transport`), failure detection, coordinator-based
membership agreement, view-synchronous multicast, and an adapter that
runs any registered primary-component algorithm over the negotiated
views.  :mod:`repro.gcs.proc` additionally hosts the stack in real OS
processes exchanging datagrams over real sockets.
"""

from repro.gcs.adapter import AlgorithmOnGCS, PrimaryComponentService
from repro.gcs.membership import AgreedView, MembershipAgent, ViewId
from repro.gcs.packets import PacketNetwork
from repro.gcs.stack import Delivered, GCSCluster, GCSEvent, GCStack, ViewInstalled
from repro.gcs.transport import (
    Datagram,
    MemoryTransport,
    TcpTransport,
    Transport,
    UdpTransport,
    resolve_transport,
)
from repro.gcs.vsync import ViewMessage, VSyncLayer

__all__ = [
    "AgreedView",
    "AlgorithmOnGCS",
    "Datagram",
    "Delivered",
    "GCSCluster",
    "GCSEvent",
    "GCStack",
    "MembershipAgent",
    "MemoryTransport",
    "PacketNetwork",
    "PrimaryComponentService",
    "TcpTransport",
    "Transport",
    "UdpTransport",
    "ViewId",
    "ViewInstalled",
    "ViewMessage",
    "VSyncLayer",
    "resolve_transport",
]
