"""The datagram wire format: length-prefixed canonical JSON.

Every byte the network transports move is produced and consumed here,
in one self-describing encoding:

* **Framing** — a frame is a 4-byte big-endian length followed by
  exactly that many bytes of canonical JSON (sorted keys, default
  separators — the same :mod:`repro.obs.canonical` convention every
  other byte-pinned artifact in the project uses).  UDP carries one
  frame per datagram; TCP carries a stream of frames.

* **Values** — JSON scalars (``None``, ``bool``, ``int``, ``float``,
  ``str``) encode as themselves.  Containers and protocol dataclasses
  encode as *tagged arrays* so decoding is unambiguous:
  ``["T", [...]]`` for tuples, ``["L", [...]]`` for lists, ``["F",
  [sorted ints]]`` for frozensets of process ids, ``["D", [[k, v],
  ...]]`` for dicts, and ``["C", "ClassName", {field: value, ...}]``
  for the registered protocol dataclasses.

* **Safety** — decoding constructs only classes in the explicit
  :data:`WIRE_CLASSES` registry, with exact field-name validation.
  Truncated frames, oversized lengths, garbage bytes, unknown tags and
  unregistered classes all raise
  :class:`~repro.errors.WireFormatError` — refused at the boundary in
  the driver's tamper-rejection style, never half-applied.

The encoding is deliberately deterministic: the same payload object
always yields the same bytes (sorted keys, sorted frozensets), so wire
bytes can be pinned in goldens and compared across transports.
"""

from __future__ import annotations

import json
import struct
from dataclasses import fields, is_dataclass
from typing import Any, Dict, Optional, Tuple, Type

from repro.errors import WireFormatError
from repro.types import ProcessId

#: Hard cap on one frame's body, bytes.  GCS control traffic is tiny;
#: a larger prefix is a corrupt or hostile length, not a real frame.
MAX_FRAME_BYTES = 1 << 24

_LENGTH = struct.Struct(">I")


def _wire_classes() -> Dict[str, type]:
    """The decode registry: every dataclass allowed on the wire.

    Built lazily (module import order: the app layer imports the GCS,
    not vice versa) and cached.  Anything outside this registry is
    refused by :func:`decode_value`.
    """
    from repro.app.replicated_store import PutOp, SyncOffer
    from repro.core.dfls import ConfirmItem
    from repro.core.knowledge import StateItem
    from repro.core.message import Message, Piggyback
    from repro.core.mr1p import (
        AttemptVoteItem,
        FailCallItem,
        InfoItem,
        ShareItem,
        TryItem,
    )
    from repro.core.session import Session
    from repro.core.view import View
    from repro.core.ykd import AttemptItem
    from repro.gcs.membership import Ack, Install, Nudge, Propose
    from repro.gcs.vsync import ViewMessage

    return {
        cls.__name__: cls
        for cls in (
            # Membership control plane.
            Propose, Ack, Install, Nudge,
            # View-synchronous envelope.
            ViewMessage,
            # Application/algorithm envelope.
            Message, Piggyback,
            # Value objects.
            Session, View,
            # Per-algorithm protocol items.
            StateItem, AttemptItem, ConfirmItem,
            TryItem, AttemptVoteItem, ShareItem, InfoItem, FailCallItem,
            # Replicated-store application payloads.
            PutOp, SyncOffer,
        )
    }


_REGISTRY: Optional[Dict[str, type]] = None


def wire_registry() -> Dict[str, type]:
    """The (cached) name → class decode registry."""
    global _REGISTRY
    if _REGISTRY is None:
        _REGISTRY = _wire_classes()
    return _REGISTRY


# ----------------------------------------------------------------------
# Value encoding.
# ----------------------------------------------------------------------


def encode_value(value: Any) -> Any:
    """One payload value as a JSON-compatible tagged structure."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, tuple):
        return ["T", [encode_value(item) for item in value]]
    if isinstance(value, list):
        return ["L", [encode_value(item) for item in value]]
    if isinstance(value, frozenset):
        members = sorted(value)
        if not all(isinstance(member, int) for member in members):
            raise WireFormatError(
                "only frozensets of process ids travel on the wire"
            )
        return ["F", members]
    if isinstance(value, dict):
        return [
            "D",
            [
                [encode_value(key), encode_value(val)]
                for key, val in sorted(value.items())
            ],
        ]
    if is_dataclass(value) and not isinstance(value, type):
        name = type(value).__name__
        if name not in wire_registry():
            raise WireFormatError(
                f"{name} is not a registered wire payload class"
            )
        return [
            "C",
            name,
            {
                f.name: encode_value(getattr(value, f.name))
                for f in fields(value)
            },
        ]
    raise WireFormatError(
        f"cannot encode {type(value).__name__} for the wire"
    )


def decode_value(data: Any) -> Any:
    """Inverse of :func:`encode_value`; refuses anything unregistered."""
    if data is None or isinstance(data, (bool, int, float, str)):
        return data
    if not isinstance(data, list) or not data:
        raise WireFormatError(f"malformed wire value: {data!r}")
    tag = data[0]
    if tag == "T" and len(data) == 2 and isinstance(data[1], list):
        return tuple(decode_value(item) for item in data[1])
    if tag == "L" and len(data) == 2 and isinstance(data[1], list):
        return [decode_value(item) for item in data[1]]
    if tag == "F" and len(data) == 2 and isinstance(data[1], list):
        if not all(isinstance(member, int) for member in data[1]):
            raise WireFormatError("frozenset members must be process ids")
        return frozenset(data[1])
    if tag == "D" and len(data) == 2 and isinstance(data[1], list):
        out = {}
        for entry in data[1]:
            if not isinstance(entry, list) or len(entry) != 2:
                raise WireFormatError(f"malformed dict entry: {entry!r}")
            out[decode_value(entry[0])] = decode_value(entry[1])
        return out
    if tag == "C" and len(data) == 3 and isinstance(data[2], dict):
        cls = wire_registry().get(data[1])
        if cls is None:
            raise WireFormatError(
                f"unregistered wire payload class {data[1]!r}"
            )
        declared = {f.name for f in fields(cls)}
        if set(data[2]) != declared:
            raise WireFormatError(
                f"{data[1]} fields {sorted(data[2])} do not match the "
                f"declared {sorted(declared)}"
            )
        try:
            return cls(
                **{name: decode_value(raw) for name, raw in data[2].items()}
            )
        except WireFormatError:
            raise
        except Exception as exc:
            raise WireFormatError(
                f"{data[1]} rejected decoded fields: {exc}"
            ) from exc
    raise WireFormatError(f"unknown wire tag in {data!r}")


# ----------------------------------------------------------------------
# Datagram encoding and framing.
# ----------------------------------------------------------------------


def encode_datagram(
    src: ProcessId, dst: ProcessId, payload: Any
) -> Dict[str, Any]:
    """The JSON body of one stack-level datagram."""
    return {"dst": dst, "payload": encode_value(payload), "src": src}


def decode_datagram(body: Dict[str, Any]) -> Tuple[ProcessId, ProcessId, Any]:
    """Inverse of :func:`encode_datagram` → ``(src, dst, payload)``."""
    if not isinstance(body, dict) or set(body) != {"src", "dst", "payload"}:
        raise WireFormatError(f"malformed datagram body: {body!r}")
    src, dst = body["src"], body["dst"]
    if not isinstance(src, int) or not isinstance(dst, int):
        raise WireFormatError("datagram endpoints must be process ids")
    return src, dst, decode_value(body["payload"])


def frame(body: Any) -> bytes:
    """One JSON-compatible body as a length-prefixed canonical frame."""
    encoded = json.dumps(body, sort_keys=True).encode("utf-8")
    if len(encoded) > MAX_FRAME_BYTES:
        raise WireFormatError(
            f"frame body of {len(encoded)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte cap"
        )
    return _LENGTH.pack(len(encoded)) + encoded


def deframe(data: bytes) -> Any:
    """Decode exactly one frame; refuses truncation and trailing bytes."""
    body, consumed = deframe_prefix(data)
    if consumed != len(data):
        raise WireFormatError(
            f"{len(data) - consumed} trailing bytes after the frame"
        )
    return body


def deframe_prefix(data: bytes) -> Tuple[Any, int]:
    """Decode the first frame of ``data`` → ``(body, bytes consumed)``.

    Raises :class:`~repro.errors.WireFormatError` for anything short of
    one complete well-formed frame — stream carriers buffer and retry
    only on :func:`frame_incomplete` saying more bytes may help.
    """
    if len(data) < _LENGTH.size:
        raise WireFormatError("truncated frame: missing length prefix")
    (length,) = _LENGTH.unpack_from(data)
    if length > MAX_FRAME_BYTES:
        raise WireFormatError(
            f"frame length {length} exceeds the {MAX_FRAME_BYTES}-byte cap"
        )
    end = _LENGTH.size + length
    if len(data) < end:
        raise WireFormatError(
            f"truncated frame: {len(data) - _LENGTH.size} of {length} "
            "body bytes present"
        )
    raw = data[_LENGTH.size:end]
    try:
        return json.loads(raw.decode("utf-8")), end
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireFormatError(f"frame body is not canonical JSON: {exc}") from exc


def frame_incomplete(data: bytes) -> bool:
    """Whether ``data`` is a (so far) well-formed *prefix* of a frame.

    True means a stream reader should wait for more bytes; False means
    the buffer already holds at least one complete frame (or bytes that
    can never become one — :func:`deframe_prefix` will then raise).
    """
    if len(data) < _LENGTH.size:
        return True
    (length,) = _LENGTH.unpack_from(data)
    if length > MAX_FRAME_BYTES:
        return False
    return len(data) < _LENGTH.size + length
