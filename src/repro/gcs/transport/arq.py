"""Reliable FIFO links over a lossy carrier: a small ARQ.

The transport contract promises reliable per-(src, dst) FIFO channels
while the endpoints stay connected — exactly what the in-memory
backend provides by construction.  The network backends uphold it over
genuine packet loss with this module: per directed link, a go-back-N
style sender (send window, cumulative acks, timeout retransmission)
and an in-order receiver (out-of-order buffering, duplicate
suppression).

The state machines are deliberately *pure*: no sockets, no clock —
``now`` is passed into every time-dependent method by the caller (the
asyncio driver passes ``loop.time()``), and the module imports neither
``time`` nor ``random`` (the seeded-randomness audit enforces this
structurally).  That keeps the protocol unit-testable without a single
socket and keeps every retransmission decision replayable from the
call trace.

Frame shapes (JSON bodies framed by :mod:`repro.gcs.transport.wire`):

* ``{"kind": "data", "src": s, "dst": d, "seq": n, "body": <datagram>}``
* ``{"kind": "ack",  "src": s, "dst": d, "ack": n}`` — cumulative: the
  receiver has delivered everything below ``n``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.errors import WireFormatError

#: Maximum unacknowledged frames in flight per directed link.
DEFAULT_WINDOW = 32


class ArqSender:
    """The sending half of one directed link (src → dst)."""

    def __init__(
        self,
        src: int,
        dst: int,
        rto: float = 0.05,
        window: int = DEFAULT_WINDOW,
    ) -> None:
        self.src = src
        self.dst = dst
        self.rto = rto
        self.window = window
        self._next_seq = 0
        #: seq → (body, last transmission time or None if never sent).
        self._unacked: Dict[int, Tuple[Any, Optional[float]]] = {}
        self._base = 0  # lowest unacknowledged seq
        self.transmissions = 0
        self.retransmissions = 0
        self.acks_received = 0
        self.hold_backs = 0

    def queue(self, body: Any) -> int:
        """Accept one datagram body for reliable delivery; returns seq."""
        seq = self._next_seq
        self._next_seq += 1
        self._unacked[seq] = (body, None)
        return seq

    def frames_due(self, now: float) -> List[Dict[str, Any]]:
        """Every frame that should hit the wire now.

        Never-sent frames inside the window go out immediately; frames
        whose last transmission is older than ``rto`` are retransmitted.
        Frames beyond the window wait for the base to advance.
        """
        due: List[Dict[str, Any]] = []
        for seq in sorted(self._unacked):
            if seq >= self._base + self.window:
                break
            body, last_sent = self._unacked[seq]
            if last_sent is None or now - last_sent >= self.rto:
                self.transmissions += 1
                if last_sent is not None:
                    self.retransmissions += 1
                self._unacked[seq] = (body, now)
                due.append(
                    {
                        "kind": "data",
                        "src": self.src,
                        "dst": self.dst,
                        "seq": seq,
                        "body": body,
                    }
                )
        return due

    def on_ack(self, ack: int) -> None:
        """A cumulative ack arrived: everything below ``ack`` is done."""
        self.acks_received += 1
        for seq in [s for s in self._unacked if s < ack]:
            del self._unacked[seq]
        self._base = max(self._base, ack)

    def pending(self) -> int:
        """Frames accepted but not yet acknowledged."""
        return len(self._unacked)

    def hold_back(self) -> None:
        """Mark every in-flight frame never-sent (used when the link's
        destination becomes unreachable: transmission pauses without
        losing the queue, and resumes from the base when reachability
        returns)."""
        for seq, (body, last_sent) in list(self._unacked.items()):
            if last_sent is not None:
                self.hold_backs += 1
            self._unacked[seq] = (body, None)

    def stats(self) -> Dict[str, int]:
        """The sender's counters as a JSON-ready dict."""
        return {
            "transmissions": self.transmissions,
            "retransmissions": self.retransmissions,
            "acks_received": self.acks_received,
            "hold_backs": self.hold_backs,
            "unacked": len(self._unacked),
        }


class ArqReceiver:
    """The receiving half of one directed link (src → dst)."""

    def __init__(self, src: int, dst: int, window: int = DEFAULT_WINDOW) -> None:
        self.src = src
        self.dst = dst
        self.window = window
        self._expected = 0
        #: Out-of-order frames buffered until the gap fills.
        self._buffer: Dict[int, Any] = {}
        self.duplicates = 0
        self.delivered = 0
        self.acks_sent = 0

    def on_data(self, frame: Dict[str, Any]) -> Tuple[List[Any], Dict[str, Any]]:
        """Process one data frame → (deliverable bodies, ack frame).

        Bodies come out in send order, exactly once.  The ack is always
        produced (acks are idempotent and the sender needs them to
        drain duplicates).
        """
        seq = frame.get("seq")
        if not isinstance(seq, int) or seq < 0:
            raise WireFormatError(f"data frame with bad seq: {frame!r}")
        deliverable: List[Any] = []
        if seq < self._expected:
            self.duplicates += 1
        elif seq < self._expected + 2 * self.window:
            self._buffer.setdefault(seq, frame.get("body"))
            while self._expected in self._buffer:
                deliverable.append(self._buffer.pop(self._expected))
                self._expected += 1
        # Beyond twice the window: drop silently; the sender's window
        # can never legitimately reach there, so it is garbage.
        self.delivered += len(deliverable)
        self.acks_sent += 1
        return deliverable, {
            "kind": "ack",
            "src": self.dst,
            "dst": self.src,
            "ack": self._expected,
        }

    def stats(self) -> Dict[str, int]:
        """The receiver's counters as a JSON-ready dict."""
        return {
            "delivered": self.delivered,
            "duplicates": self.duplicates,
            "acks_sent": self.acks_sent,
            "buffered": len(self._buffer),
        }


class ReliableLinkMap:
    """All ARQ state one node holds, keyed by directed link."""

    def __init__(self, rto: float = 0.05, window: int = DEFAULT_WINDOW) -> None:
        self.rto = rto
        self.window = window
        self._senders: Dict[Tuple[int, int], ArqSender] = {}
        self._receivers: Dict[Tuple[int, int], ArqReceiver] = {}

    def sender(self, src: int, dst: int) -> ArqSender:
        """The (lazily created) sending half of the src → dst link."""
        key = (src, dst)
        if key not in self._senders:
            self._senders[key] = ArqSender(
                src, dst, rto=self.rto, window=self.window
            )
        return self._senders[key]

    def receiver(self, src: int, dst: int) -> ArqReceiver:
        """The (lazily created) receiving half of the src → dst link."""
        key = (src, dst)
        if key not in self._receivers:
            self._receivers[key] = ArqReceiver(src, dst, window=self.window)
        return self._receivers[key]

    def senders(self) -> List[ArqSender]:
        """Every sender created so far (for pump/flush sweeps)."""
        return list(self._senders.values())

    def unacked(self) -> int:
        """Total frames queued-or-in-flight across every sender."""
        return sum(sender.pending() for sender in self._senders.values())

    def retransmissions(self) -> int:
        """Total timeout retransmissions across every sender."""
        return sum(s.retransmissions for s in self._senders.values())

    def hold_back_towards(self, src: int, dsts: "frozenset[int]") -> None:
        """Pause every ``src`` → ``dst in dsts`` link (partition onset).

        Each held sender keeps its queue and resumes from its base when
        reachability returns and the pump flushes it again.
        """
        for (sender_src, sender_dst), sender in self._senders.items():
            if sender_src == src and sender_dst in dsts:
                sender.hold_back()

    def stats(self) -> Dict[str, int]:
        """Aggregate ARQ counters across every link (the read path).

        This is what a node's status report and ``/healthz`` surface:
        total (re)transmissions, cumulative acks in both directions,
        hold-backs from partition onsets, and the live queue depths.
        """
        totals = {
            "links": len(self._senders),
            "transmissions": 0,
            "retransmissions": 0,
            "acks_received": 0,
            "hold_backs": 0,
            "unacked": 0,
            "delivered": 0,
            "duplicates": 0,
            "acks_sent": 0,
            "buffered": 0,
        }
        for sender in self._senders.values():
            for key, value in sender.stats().items():
                totals[key] += value
        for receiver in self._receivers.values():
            for key, value in receiver.stats().items():
                totals[key] += value
        return totals
