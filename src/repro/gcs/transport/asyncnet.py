"""Asyncio network transports: real sockets under the GCS stack.

Both backends run a private asyncio event loop on a daemon thread and
present the same synchronous :class:`~repro.gcs.transport.base.Transport`
face the in-memory backend does — ``send`` marshals into the loop,
``deliver_tick`` drains a thread-safe queue of decoded datagrams.  On
the wire every frame is length-prefixed canonical JSON
(:mod:`repro.gcs.transport.wire`); above the carrier both backends run
the ARQ of :mod:`repro.gcs.transport.arq`, so the stack sees reliable
FIFO links even across genuine (or injected) packet loss.

Wire faults (``link=LinkFaults(...)``) are injected at the transmit
boundary, below the ARQ — exactly where a flaky network would sit.
Every draw is a pure hash of ``(link.seed, transmission serial, src,
dst)`` through :mod:`repro.faults.link`, so a given seed always loses
and delays the same transmissions; only the wall-clock interleaving is
real.  Loss and reordering cannot exist on a TCP byte stream, so the
TCP backend refuses them loudly with
:class:`~repro.errors.UnsupportedTransportConfig`; delay works on both.

Reachability (a partition schedule's view of the world) gates links at
both ends: a sender holds frames queued for unreachable destinations
(no wire traffic, nothing lost), and a receiver drops frames from
sources outside its reachable set.  Unlike the in-memory backend —
which drops cross-boundary in-flight traffic forever — held frames are
delivered after the partition heals; the view-synchrony layer discards
them as stale, and the differential convergence battery pins that
stable views and primaries agree across the substrates anyway.
"""

from __future__ import annotations

import asyncio
import queue
import threading
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.errors import SimulationError, UnsupportedTransportConfig, WireFormatError
from repro.faults.link import delivery_delay, delivery_lost
from repro.faults.model import LinkFaults
from repro.gcs.transport.arq import ReliableLinkMap
from repro.gcs.transport.base import Datagram, Transport
from repro.gcs.transport.wire import (
    decode_datagram,
    deframe,
    deframe_prefix,
    encode_datagram,
    frame,
    frame_incomplete,
)
from repro.net.topology import Topology
from repro.sim.rng import derive_seed
from repro.types import Members, ProcessId

#: Loopback only: these transports exist to put a real OS network
#: under the stack, not to expose it.
HOST = "127.0.0.1"


class _AsyncTransportBase(Transport):
    """Shared machinery: loop thread, ARQ pump, fault injection."""

    realtime = True
    quiet_ticks_for_stability = 4

    def __init__(
        self,
        *,
        link: Optional[LinkFaults] = None,
        ports: Optional[Dict[ProcessId, int]] = None,
        rto: float = 0.04,
        delay_unit: float = 0.01,
        tick_interval: float = 0.01,
    ) -> None:
        self.link = link
        self.rto = rto
        #: Seconds :meth:`idle_wait` paces the driving tick loop by.
        #: Load-bearing: the membership layer emits traffic every tick,
        #: so an unpaced CPU-speed tick loop produces packets faster
        #: than any wall-clock ARQ can drain them.
        self.tick_interval = tick_interval
        #: Seconds one unit of injected ``LinkFaults.delay_max`` holds a
        #: transmission (the tick-denominated delay draw, made temporal).
        self.delay_unit = delay_unit
        self.ports: Dict[ProcessId, int] = dict(ports or {})
        self.universe: Members = frozenset()
        self.local_pids: Members = frozenset()
        self.sent_count = 0
        self.delivered_count = 0
        self.dropped_count = 0
        self.injected_lost = 0
        self.injected_delayed = 0
        self._links = ReliableLinkMap(rto=rto)
        self._reachable: Dict[ProcessId, Members] = {}
        self._recv: "queue.SimpleQueue[Datagram]" = queue.SimpleQueue()
        self._recv_size = 0
        self._recv_event = threading.Event()
        self._pace_event = threading.Event()  # never set: a pure timer
        self._delayed_frames = 0
        self._attempt_serial = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._pump_task: Optional[asyncio.Task] = None
        self._closed = False

    # ------------------------------------------------------------------
    # Loop-thread lifecycle.
    # ------------------------------------------------------------------

    def bind(self, universe: Members, local_pids: Members) -> None:
        if self._loop is not None:
            raise SimulationError("transport is already bound")
        self.universe = frozenset(universe)
        self.local_pids = frozenset(local_pids)
        if not self.local_pids <= self.universe:
            raise SimulationError("local pids must belong to the universe")
        started = threading.Event()

        def runner() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            started.set()
            loop.run_forever()
            # Drain cancelled callbacks so sockets close cleanly.
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

        self._thread = threading.Thread(
            target=runner, name=f"gcs-{self.kind}-transport", daemon=True
        )
        self._thread.start()
        started.wait()
        future = asyncio.run_coroutine_threadsafe(self._open(), self._loop)
        future.result(timeout=10)

    async def _open(self) -> None:
        await self._open_endpoints()
        self._pump_task = asyncio.get_running_loop().create_task(self._pump())

    async def _open_endpoints(self) -> None:
        raise NotImplementedError

    def set_peer_ports(self, ports: Dict[ProcessId, int]) -> None:
        """Install the full pid → port map (multi-process rendezvous)."""
        self.ports.update(ports)

    def close(self) -> None:
        if self._loop is None or self._closed:
            return
        self._closed = True

        async def shutdown() -> None:
            if self._pump_task is not None:
                self._pump_task.cancel()
            await self._close_endpoints()
            asyncio.get_running_loop().stop()

        try:
            asyncio.run_coroutine_threadsafe(shutdown(), self._loop)
            self._thread.join(timeout=5)
        except RuntimeError:  # pragma: no cover - loop already gone
            pass

    async def _close_endpoints(self) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Transport interface (called from the driving thread).
    # ------------------------------------------------------------------

    def send(self, src: ProcessId, dst: ProcessId, payload: Any) -> None:
        if src not in self.local_pids:
            raise SimulationError(
                f"pid {src} is not hosted behind this transport"
            )
        if self._loop is None:
            raise SimulationError("transport is not bound")
        self.sent_count += 1
        body = encode_datagram(src, dst, payload)
        self._loop.call_soon_threadsafe(self._queue_and_kick, src, dst, body)

    def deliver_tick(self) -> List[Datagram]:
        deliverable: List[Datagram] = []
        while True:
            try:
                deliverable.append(self._recv.get_nowait())
            except queue.Empty:
                break
        self._recv_size -= len(deliverable)
        self._recv_event.clear()
        self.delivered_count += len(deliverable)
        return deliverable

    def pending(self) -> int:
        # Unacked frames on currently *reachable* links count as in
        # flight; frames parked behind a partition do not (they cannot
        # move until the schedule heals the link, so counting them
        # would make a partitioned system look eternally unstable).
        unacked = sum(
            sender.pending()
            for sender in self._links.senders()
            if self._can_reach(sender.src, sender.dst)
        )
        return unacked + self._delayed_frames + self._recv_size

    def idle_wait(self) -> None:
        # A fixed pace, not a wait-for-traffic: returning early on
        # arrival would let the tick loop outrun the wire again.
        self._pace_event.wait(timeout=self.tick_interval)

    def set_topology(self, topology: Topology) -> None:
        for pid in self.local_pids:
            if topology.is_crashed(pid):
                self.set_reachable(pid, frozenset({pid}))
            else:
                self.set_reachable(pid, topology.component_of(pid))

    def set_reachable(self, pid: ProcessId, reachable: Members) -> None:
        previous = self._reachable.get(pid)
        allowed = frozenset(reachable) | {pid}
        self._reachable[pid] = allowed
        # Partition onset: park the in-flight frames of every link that
        # just lost its destination.  The ARQ keeps the queue and marks
        # the frames never-sent, so no retransmission timer burns while
        # the partition lasts and transmission resumes from the base
        # when reachability returns.  Link state lives on the loop
        # thread; marshal the hold over.
        lost = (previous or self.universe or frozenset()) - allowed
        if lost and self._loop is not None:
            self._loop.call_soon_threadsafe(
                self._links.hold_back_towards, pid, lost
            )

    def _can_reach(self, src: ProcessId, dst: ProcessId) -> bool:
        allowed = self._reachable.get(src)
        return allowed is None or dst in allowed

    def arq_stats(self) -> Dict[str, int]:
        """Aggregate ARQ counters across this transport's links.

        Counters are plain ints mutated on the loop thread; reading
        them from the driving thread is a consistent-enough dirty read
        for telemetry (each value is internally exact).
        """
        return self._links.stats()

    # ------------------------------------------------------------------
    # ARQ pump and fault injection (loop thread only).
    # ------------------------------------------------------------------

    def _queue_and_kick(self, src: ProcessId, dst: ProcessId, body: Any) -> None:
        self._links.sender(src, dst).queue(body)
        self._flush_link(src, dst)

    async def _pump(self) -> None:
        while True:
            await asyncio.sleep(self.rto / 2)
            for sender in self._links.senders():
                self._flush_link(sender.src, sender.dst)

    def _flush_link(self, src: ProcessId, dst: ProcessId) -> None:
        if not self._can_reach(src, dst):
            return
        now = asyncio.get_event_loop().time()
        for frame_body in self._links.sender(src, dst).frames_due(now):
            self._transmit(src, dst, frame_body)

    def _transmit(self, src: ProcessId, dst: ProcessId, frame_body: Any) -> None:
        """One transmission attempt, through the injected wire faults."""
        serial = self._attempt_serial
        self._attempt_serial += 1
        delay = 0.0
        if self.link is not None:
            if delivery_lost(self.link, serial, src, dst):
                self.injected_lost += 1
                return  # the ARQ will retransmit
            held = delivery_delay(self.link, serial, src, dst)
            delay = held * self.delay_unit
            if self.link.reorder:
                # Extra pure-hash jitter so same-instant transmissions
                # land in an arbitrary — but seed-replayable — order.
                jitter = derive_seed(
                    self.link.seed, "gcs.wire.reorder", serial, src, dst
                ) % 1000
                delay += (jitter / 1000.0) * self.delay_unit
        data = frame(frame_body)
        if delay > 0:
            self.injected_delayed += 1
            self._delayed_frames += 1

            def fire() -> None:
                self._delayed_frames -= 1
                self._carrier_send(src, dst, data)

            asyncio.get_event_loop().call_later(delay, fire)
        else:
            self._carrier_send(src, dst, data)

    def _carrier_send(self, src: ProcessId, dst: ProcessId, data: bytes) -> None:
        raise NotImplementedError

    def _on_frame(self, local_pid: ProcessId, body: Any) -> None:
        """One decoded frame arrived for a local pid (loop thread)."""
        if not isinstance(body, dict):
            raise WireFormatError(f"frame body must be an object: {body!r}")
        kind = body.get("kind")
        if kind == "data":
            src, dst = body.get("src"), body.get("dst")
            if dst != local_pid or not isinstance(src, int):
                raise WireFormatError(f"misrouted data frame: {body!r}")
            if not self._can_reach(dst, src):
                self.dropped_count += 1
                return  # partition: traffic from an unreachable peer
            receiver = self._links.receiver(src, dst)
            deliverable, ack = receiver.on_data(body)
            for datagram_body in deliverable:
                d_src, d_dst, payload = decode_datagram(datagram_body)
                self._recv.put(Datagram(src=d_src, dst=d_dst, payload=payload))
                self._recv_size += 1
            self._recv_event.set()
            self._transmit(dst, src, ack)
        elif kind == "ack":
            src, dst = body.get("src"), body.get("dst")
            if dst not in self.local_pids or not isinstance(src, int):
                raise WireFormatError(f"misrouted ack frame: {body!r}")
            if not self._can_reach(dst, src):
                self.dropped_count += 1
                return
            self._links.sender(dst, src).on_ack(int(body.get("ack", 0)))
            # The window just advanced: push the next batch now rather
            # than waiting for the pump period (line-rate throughput).
            self._flush_link(dst, src)
        else:
            raise WireFormatError(f"unknown frame kind {kind!r}")


class UdpTransport(_AsyncTransportBase):
    """One UDP socket per local pid; one frame per datagram.

    Supports the full injected fault surface (loss, delay, reorder) —
    the ARQ restores the reliable-FIFO contract above it.
    """

    kind = "udp"

    def __init__(self, **kwargs: Any) -> None:
        super().__init__(**kwargs)
        self._endpoints: Dict[ProcessId, asyncio.DatagramTransport] = {}

    async def _open_endpoints(self) -> None:
        loop = asyncio.get_running_loop()
        for pid in sorted(self.local_pids):
            requested = self.ports.get(pid, 0)

            transport_self = self

            class Protocol(asyncio.DatagramProtocol):
                def __init__(self, local_pid: ProcessId) -> None:
                    self.local_pid = local_pid

                def datagram_received(self, data: bytes, addr) -> None:
                    try:
                        body = deframe(data)
                        transport_self._on_frame(self.local_pid, body)
                    except WireFormatError:
                        transport_self.dropped_count += 1

            transport, _ = await loop.create_datagram_endpoint(
                lambda pid=pid: Protocol(pid), local_addr=(HOST, requested)
            )
            self._endpoints[pid] = transport
            self.ports[pid] = transport.get_extra_info("sockname")[1]

    async def _close_endpoints(self) -> None:
        for transport in self._endpoints.values():
            transport.close()

    def _carrier_send(self, src: ProcessId, dst: ProcessId, data: bytes) -> None:
        port = self.ports.get(dst)
        if port is None:
            return  # peer not known yet; the ARQ retransmits later
        endpoint = self._endpoints.get(src)
        if endpoint is not None and not endpoint.is_closing():
            endpoint.sendto(data, (HOST, port))


class TcpTransport(_AsyncTransportBase):
    """One TCP server per local pid; frames multiplexed over streams.

    A byte stream cannot lose or reorder frames, so ``link`` specs with
    ``loss_permille``/``link_loss``/``reorder`` are refused with
    :class:`~repro.errors.UnsupportedTransportConfig`; injected *delay*
    is supported (applied before the write).  The ARQ still runs — the
    reachability filter can drop frames mid-stream during partitions,
    and retransmission restores them afterwards.
    """

    kind = "tcp"

    def __init__(self, **kwargs: Any) -> None:
        super().__init__(**kwargs)
        if self.link is not None and (
            self.link.loss_permille > 0
            or self.link.link_loss
            or self.link.reorder
        ):
            raise UnsupportedTransportConfig(
                "the TCP backend cannot lose or reorder frames on a "
                "byte stream; inject loss/reorder through the UDP "
                "backend (or keep only delay for TCP)"
            )
        self._servers: Dict[ProcessId, asyncio.AbstractServer] = {}
        self._writers: Dict[Tuple[ProcessId, ProcessId], asyncio.StreamWriter] = {}
        self._dialing: Set[Tuple[ProcessId, ProcessId]] = set()
        self._serve_tasks: Set[asyncio.Task] = set()

    async def _open_endpoints(self) -> None:
        for pid in sorted(self.local_pids):
            requested = self.ports.get(pid, 0)
            server = await asyncio.start_server(
                lambda reader, writer, pid=pid: self._track_serve(pid, reader),
                HOST,
                requested,
            )
            self._servers[pid] = server
            self.ports[pid] = server.sockets[0].getsockname()[1]

    async def _track_serve(
        self, local_pid: ProcessId, reader: asyncio.StreamReader
    ) -> None:
        task = asyncio.current_task()
        self._serve_tasks.add(task)
        try:
            await self._serve(local_pid, reader)
        except asyncio.CancelledError:
            pass  # shutdown: end quietly so stream callbacks stay silent
        finally:
            self._serve_tasks.discard(task)

    async def _serve(
        self, local_pid: ProcessId, reader: asyncio.StreamReader
    ) -> None:
        buffer = b""
        while True:
            chunk = await reader.read(65536)
            if not chunk:
                return
            buffer += chunk
            while buffer and not frame_incomplete(buffer):
                try:
                    body, consumed = deframe_prefix(buffer)
                except WireFormatError:
                    self.dropped_count += 1
                    return  # the stream is corrupt; drop the connection
                buffer = buffer[consumed:]
                try:
                    self._on_frame(local_pid, body)
                except WireFormatError:
                    self.dropped_count += 1

    async def _close_endpoints(self) -> None:
        for task in list(self._serve_tasks):
            task.cancel()
        for server in self._servers.values():
            server.close()
        for writer in self._writers.values():
            writer.close()

    def _carrier_send(self, src: ProcessId, dst: ProcessId, data: bytes) -> None:
        writer = self._writers.get((src, dst))
        if writer is not None and not writer.is_closing():
            writer.write(data)
            return
        key = (src, dst)
        if key in self._dialing:
            return  # a connection attempt is in progress; ARQ retries
        port = self.ports.get(dst)
        if port is None:
            return
        self._dialing.add(key)

        async def dial() -> None:
            try:
                _, writer = await asyncio.open_connection(HOST, port)
                self._writers[key] = writer
                writer.write(data)
            except OSError:
                pass  # peer not up yet; the ARQ retransmits
            finally:
                self._dialing.discard(key)

        asyncio.get_event_loop().create_task(dial())
