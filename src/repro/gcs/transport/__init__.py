"""Pluggable packet backends for the group communication stack.

The supported surface (see ``docs/transports.md``):

* :class:`Transport` — the driver interface every backend implements.
* :class:`Datagram` — the unicast packet as the stack sees it.
* :class:`MemoryTransport` — the deterministic in-memory default,
  byte-identical to the historical ``PacketNetwork``.
* :class:`UdpTransport` / :class:`TcpTransport` — asyncio localhost
  backends running a go-back-N ARQ over real sockets.
* :func:`resolve_transport` — the ``transport=`` argument resolver
  (``None`` | ``"memory"`` | ``"udp"`` | ``"tcp"`` | instance).
"""

from repro.gcs.transport.arq import (
    ArqReceiver,
    ArqSender,
    DEFAULT_WINDOW,
    ReliableLinkMap,
)
from repro.gcs.transport.asyncnet import TcpTransport, UdpTransport
from repro.gcs.transport.base import Datagram, Transport, resolve_transport
from repro.gcs.transport.memory import MemoryTransport
from repro.gcs.transport.wire import (
    MAX_FRAME_BYTES,
    decode_datagram,
    decode_value,
    deframe,
    deframe_prefix,
    encode_datagram,
    encode_value,
    frame,
    frame_incomplete,
    wire_registry,
)

__all__ = [
    # Driver interface.
    "Transport",
    "Datagram",
    "resolve_transport",
    # Backends.
    "MemoryTransport",
    "UdpTransport",
    "TcpTransport",
    # Reliable-link machinery.
    "ArqSender",
    "ArqReceiver",
    "ReliableLinkMap",
    "DEFAULT_WINDOW",
    # Wire format.
    "MAX_FRAME_BYTES",
    "encode_value",
    "decode_value",
    "encode_datagram",
    "decode_datagram",
    "frame",
    "deframe",
    "deframe_prefix",
    "frame_incomplete",
    "wire_registry",
]
