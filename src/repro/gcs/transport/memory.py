"""The in-memory transport: the packet network behind a driver seam.

This is the routing :class:`~repro.gcs.stack.GCSCluster` always had —
FIFO unicast channels, one tick of latency, connectivity gated by the
component topology at delivery time — extracted verbatim behind the
:class:`~repro.gcs.transport.base.Transport` interface.  With no link
faults attached, its behaviour is byte-identical to the historical
``PacketNetwork`` (the pre-transport GCS test suite passes unchanged
on it, and ``repro.gcs.packets.PacketNetwork`` is now a deprecated
alias of this class).

``link=`` accepts a :class:`repro.faults.LinkFaults` and injects wire
faults per packet, replayably: every draw is a pure hash of
``(link.seed, packet serial, sender, recipient)`` through
:mod:`repro.faults.link` — no RNG stream, no ambient randomness.  Loss
drops the packet at its delivery tick; delay defers maturity across
ticks (the explicit-deferral contract :meth:`pending` accounts for);
``reorder`` releases matured packets in a deterministically shuffled
order instead of send order.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List, Optional, Tuple

from repro.faults.link import delivery_delay, delivery_lost, reorder_key
from repro.faults.model import LinkFaults
from repro.gcs.transport.base import Datagram, Transport
from repro.net.topology import Topology
from repro.types import Members, ProcessId


class MemoryTransport(Transport):
    """FIFO unicast channels gated by the component topology.

    Semantics (unchanged from the historical packet network):

    * unicast only — multicast is built above, in the view-synchrony
      layer;
    * per-(src, dst) FIFO ordering (unless ``link.reorder`` shuffles
      matured releases);
    * one simulation tick of base latency (sent this tick, deliverable
      next) plus any injected delay;
    * a datagram is delivered only if its endpoints are connected *at
      delivery time*; partitions drop in-flight traffic across the new
      boundary, which is how mid-protocol interruption arises naturally
      here.
    """

    kind = "memory"
    realtime = False
    quiet_ticks_for_stability = 1

    def __init__(
        self,
        topology: Optional[Topology] = None,
        link: Optional[LinkFaults] = None,
    ) -> None:
        self.topology = topology
        self.link = link
        #: (serial, mature_tick, datagram); mature_tick is unused (0)
        #: on the fault-free fast path, which delivers the whole queue
        #: every tick exactly as the legacy network did.
        self._in_flight: Deque[Tuple[int, int, Datagram]] = deque()
        self._tick = 0
        self._serial = 0
        self.sent_count = 0
        self.delivered_count = 0
        self.dropped_count = 0

    # ------------------------------------------------------------------
    # Transport interface.
    # ------------------------------------------------------------------

    def bind(self, universe: Members, local_pids: Members) -> None:
        """Default to full connectivity when no topology was given."""
        if self.topology is None:
            self.topology = Topology.fully_connected(len(universe))

    def connected(self, a: ProcessId, b: ProcessId) -> bool:
        """Whether a datagram from ``a`` can currently reach ``b``."""
        if a == b:
            return True
        if self.topology.is_crashed(a) or self.topology.is_crashed(b):
            return False
        return b in self.topology.component_of(a)

    def send(self, src: ProcessId, dst: ProcessId, payload: Any = None) -> None:
        """Queue a datagram; it matures on the next tick plus any delay."""
        self.sent_count += 1
        serial = self._serial
        self._serial += 1
        mature = 0
        if self.link is not None:
            mature = self._tick + 1 + delivery_delay(
                self.link, serial, src, dst
            )
        self._in_flight.append(
            (serial, mature, Datagram(src=src, dst=dst, payload=payload))
        )

    def set_topology(self, topology: Topology) -> None:
        """Install a new topology; in-flight cross-boundary traffic will
        be dropped when its delivery tick arrives."""
        self.topology = topology

    def deliver_tick(self) -> List[Datagram]:
        """Deliver everything matured before this tick, in send order
        (or the injected reorder permutation)."""
        self._tick += 1
        if self.link is None:
            return self._deliver_all()
        return self._deliver_faulted()

    def pending(self) -> int:
        """Everything queued or delay-deferred, not yet delivered."""
        return len(self._in_flight)

    # ------------------------------------------------------------------
    # Delivery paths.
    # ------------------------------------------------------------------

    def _deliver_all(self) -> List[Datagram]:
        """The fault-free fast path: the legacy network's exact loop."""
        deliverable: List[Datagram] = []
        pending = self._in_flight
        self._in_flight = deque()
        for _, _, datagram in pending:
            if self.connected(datagram.src, datagram.dst):
                deliverable.append(datagram)
                self.delivered_count += 1
            else:
                self.dropped_count += 1
        return deliverable

    def _deliver_faulted(self) -> List[Datagram]:
        link = self.link
        held: Deque[Tuple[int, int, Datagram]] = deque()
        matured: List[Tuple[int, int, Datagram]] = []
        for entry in self._in_flight:
            (matured if entry[1] <= self._tick else held).append(entry)
        self._in_flight = held
        if link.reorder:
            # Pure-hash shuffle keyed per packet serial; the serial
            # tie-break keeps the permutation total and replayable.
            matured.sort(
                key=lambda entry: (
                    reorder_key(
                        link, entry[0], entry[2].dst, entry[2].src
                    ),
                    entry[0],
                )
            )
        deliverable: List[Datagram] = []
        for serial, _, datagram in matured:
            if not self.connected(datagram.src, datagram.dst):
                self.dropped_count += 1
            elif delivery_lost(link, serial, datagram.src, datagram.dst):
                self.dropped_count += 1
            else:
                deliverable.append(datagram)
                self.delivered_count += 1
        return deliverable
