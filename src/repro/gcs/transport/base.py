"""The transport driver interface of the group communication stack.

Every packet the GCS exchanges crosses exactly one seam: a
:class:`Transport`.  The stack above (membership, view synchrony, the
algorithm adapter) sends ``(src, dst, payload)`` unicasts into it and
periodically drains whatever has become deliverable; it neither knows
nor cares whether the datagrams moved through an in-memory queue
(:class:`~repro.gcs.transport.memory.MemoryTransport`), a real UDP
socket, or a TCP stream — the separation JBotSim and QUANTAS get their
leverage from, applied to this repository's substrate.

The contract every backend honours:

* **unicast only** — multicast is built above, in the view-synchrony
  layer;
* **reliable FIFO per (src, dst) link while the endpoints stay
  connected** — the network backends run a small ARQ
  (:mod:`repro.gcs.transport.arq`) to uphold this over genuine packet
  loss; the memory backend has it by construction;
* **connectivity gating** — traffic between disconnected endpoints is
  eventually dropped, never delivered while the partition lasts;
* **explicit deferral** — a backend may hold packets across any number
  of :meth:`Transport.deliver_tick` calls (delay faults, sockets,
  retransmission); it accounts for every held packet in
  :meth:`Transport.pending`, which is how ``run_until_stable`` keeps
  its stability detection sound (a tick that moves nothing is only
  *stable* when nothing is still in flight).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, ClassVar, Iterable, List, Optional

from repro.net.topology import Topology
from repro.types import Members, ProcessId


@dataclass(frozen=True)
class Datagram:
    """One unicast packet as the stack sees it (payload already decoded)."""

    src: ProcessId
    dst: ProcessId
    payload: Any


class Transport(ABC):
    """Abstract packet backend for :class:`~repro.gcs.stack.GCSCluster`.

    Lifecycle: construct → :meth:`bind` once (the cluster or node host
    does this) → any number of :meth:`send` / :meth:`deliver_tick` /
    :meth:`set_topology` cycles → :meth:`close`.

    Attributes:
        kind: stable name of the backend (``"memory"``, ``"udp"``,
            ``"tcp"``) — what ``--transport`` selects.
        realtime: True when delivery is driven by the wall clock rather
            than by :meth:`deliver_tick` calls; stability detection then
            requires :attr:`quiet_ticks_for_stability` consecutive
            quiet ticks and uses :meth:`idle_wait` between them.
    """

    kind: ClassVar[str] = "abstract"
    realtime: ClassVar[bool] = False
    #: Consecutive quiet ticks ``run_until_stable`` needs before it may
    #: declare the system stable (1 for deterministic backends).
    quiet_ticks_for_stability: ClassVar[int] = 1

    sent_count: int
    delivered_count: int
    dropped_count: int

    @abstractmethod
    def bind(self, universe: Members, local_pids: Members) -> None:
        """Attach the transport to a universe of process ids.

        ``local_pids`` are the processes hosted behind *this* transport
        instance: the whole universe for a single-process
        :class:`~repro.gcs.stack.GCSCluster`, a single pid for a
        :mod:`repro.gcs.proc` node.
        """

    @abstractmethod
    def send(self, src: ProcessId, dst: ProcessId, payload: Any) -> None:
        """Queue one unicast from a local pid to any pid."""

    @abstractmethod
    def deliver_tick(self) -> List[Datagram]:
        """Everything deliverable to the local pids *now*, FIFO per link."""

    @abstractmethod
    def pending(self) -> int:
        """Packets accepted but neither delivered nor dropped yet.

        Counts everything the backend is still holding: queued,
        delayed, unacknowledged, or received-but-undrained.  A tick
        that moved no traffic is only *stable* when this is zero.
        """

    @abstractmethod
    def set_topology(self, topology: Topology) -> None:
        """Install the connectivity gate from a component topology."""

    def set_reachable(self, pid: ProcessId, reachable: Members) -> None:
        """Install one local pid's reachability filter directly.

        The multi-process controller speaks this form (it knows per-node
        reachable sets, not a whole-universe topology); backends that
        only ever run under a cluster-owned topology may ignore it.
        """
        raise NotImplementedError(
            f"{self.kind} transport does not take per-pid reachability"
        )

    def send_many(
        self, src: ProcessId, dsts: Iterable[ProcessId], payload: Any
    ) -> None:
        """Queue one payload to several destinations, in order."""
        for dst in dsts:
            self.send(src, dst, payload)

    def idle_wait(self) -> None:
        """Block briefly while in-flight traffic arrives (realtime only)."""

    def arq_stats(self) -> dict:
        """Aggregate ARQ counters, empty for backends without an ARQ.

        The network backends report their
        :meth:`~repro.gcs.transport.arq.ReliableLinkMap.stats`; the
        in-memory backend is reliable by construction and reports
        nothing.  Node status polls and ``/healthz`` surface this.
        """
        return {}

    def close(self) -> None:
        """Release sockets/threads; further sends are undefined."""

    @property
    def in_flight(self) -> int:
        """Alias of :meth:`pending` (the packet-network legacy name)."""
        return self.pending()


def resolve_transport(
    transport: "Optional[Transport | str]",
) -> Transport:
    """Turn the ``transport=`` argument into a bound-ready instance.

    Accepts ``None`` (the in-memory default), a backend name
    (``"memory"``, ``"udp"``, ``"tcp"``), or an already constructed
    :class:`Transport`.  Unknown names raise
    :class:`~repro.errors.UnsupportedTransportConfig` — loudly, in the
    :class:`~repro.errors.UnsupportedBatchConfig` tradition.
    """
    from repro.errors import UnsupportedTransportConfig

    if transport is None:
        from repro.gcs.transport.memory import MemoryTransport

        return MemoryTransport()
    if isinstance(transport, Transport):
        return transport
    if isinstance(transport, str):
        if transport == "memory":
            from repro.gcs.transport.memory import MemoryTransport

            return MemoryTransport()
        if transport == "udp":
            from repro.gcs.transport.asyncnet import UdpTransport

            return UdpTransport()
        if transport == "tcp":
            from repro.gcs.transport.asyncnet import TcpTransport

            return TcpTransport()
        raise UnsupportedTransportConfig(
            f"unknown transport {transport!r}; known backends: "
            "memory, udp, tcp"
        )
    raise UnsupportedTransportConfig(
        f"transport must be None, a backend name or a Transport "
        f"instance, not {type(transport).__name__}"
    )
