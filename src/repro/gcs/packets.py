"""Datagram-level network simulation for the group communication stack.

The driver loop of `repro.sim` routes *broadcasts* directly, as the
thesis' testing system did.  The GCS package instead builds the stack
the thesis originally deployed YKD on (a Transis-like service), and
that needs a lower-level substrate: point-to-point FIFO channels whose
connectivity follows the component topology.

Semantics:

* unicast only — multicast is built above, in the view-synchrony layer;
* per-(src, dst) FIFO ordering;
* one simulation tick of latency (sent this tick, deliverable next);
* a datagram is delivered only if its endpoints are connected *at
  delivery time*; partitions drop in-flight traffic across the new
  boundary, which is how mid-protocol interruption arises naturally
  here (no explicit "cut" modelling is needed at this level).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, Iterator, List, Tuple

from repro.net.topology import Topology
from repro.types import ProcessId


@dataclass(frozen=True)
class Datagram:
    """One unicast packet."""

    src: ProcessId
    dst: ProcessId
    payload: Any


class PacketNetwork:
    """FIFO unicast channels gated by the component topology."""

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        self._in_flight: Deque[Datagram] = deque()
        self.sent_count = 0
        self.delivered_count = 0
        self.dropped_count = 0

    def connected(self, a: ProcessId, b: ProcessId) -> bool:
        """Whether a datagram from ``a`` can currently reach ``b``."""
        if a == b:
            return True
        if self.topology.is_crashed(a) or self.topology.is_crashed(b):
            return False
        return b in self.topology.component_of(a)

    def send(self, src: ProcessId, dst: ProcessId, payload: Any) -> None:
        """Queue a datagram; it becomes deliverable on the next tick."""
        self.sent_count += 1
        self._in_flight.append(Datagram(src=src, dst=dst, payload=payload))

    def send_many(
        self, src: ProcessId, dsts: Iterator[ProcessId], payload: Any
    ) -> None:
        """Queue one payload to several destinations, in order."""
        for dst in dsts:
            self.send(src, dst, payload)

    def set_topology(self, topology: Topology) -> None:
        """Install a new topology; in-flight cross-boundary traffic will
        be dropped when its delivery tick arrives."""
        self.topology = topology

    def deliver_tick(self) -> List[Datagram]:
        """Deliver everything queued before this tick, in send order."""
        deliverable: List[Datagram] = []
        pending = self._in_flight
        self._in_flight = deque()
        for datagram in pending:
            if self.connected(datagram.src, datagram.dst):
                deliverable.append(datagram)
                self.delivered_count += 1
            else:
                self.dropped_count += 1
        return deliverable

    @property
    def in_flight(self) -> int:
        return len(self._in_flight)
