"""Deprecated: the packet network is now the in-memory transport.

This module is the pre-transport name of the GCS substrate.  The
routing semantics live, unchanged, in
:class:`repro.gcs.transport.memory.MemoryTransport`; the
:class:`PacketNetwork` class below is a thin constructor shim that
emits a :class:`DeprecationWarning` and forwards — the same migration
pattern the driver used for ``checker=``/``extra_observers=``.

New code should construct transports explicitly::

    from repro.gcs.transport import MemoryTransport
    cluster = GCSCluster(5, transport=MemoryTransport())

or simply pass ``transport="memory"`` (the default) / ``"udp"`` /
``"tcp"`` to :class:`~repro.gcs.stack.GCSCluster`.
"""

from __future__ import annotations

import warnings

from repro.gcs.transport.base import Datagram  # noqa: F401  (legacy re-export)
from repro.gcs.transport.memory import MemoryTransport
from repro.net.topology import Topology

__all__ = ["Datagram", "PacketNetwork"]


class PacketNetwork(MemoryTransport):
    """Deprecated alias of the in-memory transport.

    Behaviour is byte-identical to the historical packet network (the
    fault-free fast path of :class:`MemoryTransport` *is* the old
    delivery loop); only the name is deprecated.
    """

    def __init__(self, topology: Topology) -> None:
        warnings.warn(
            "PacketNetwork is deprecated; use "
            "repro.gcs.transport.MemoryTransport (or pass transport= "
            "to GCSCluster) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(topology=topology)
