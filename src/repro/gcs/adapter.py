"""Running a primary-component algorithm over the GCS stack.

The thesis §2.1 claims the algorithm interface is free of dependencies
on any specific communication service: "any group communication service
which has reliable multicast and can report connectivity changes will
work".  This adapter is the proof by construction — the very same
algorithm objects the simulation driver runs plug into the negotiated
views and view-synchronous multicasts of `repro.gcs`, Fig. 2-2 style.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.interface import PrimaryComponentAlgorithm
from repro.core.message import Message
from repro.core.registry import create_algorithm
from repro.core.view import View, initial_view
from repro.gcs.stack import Delivered, GCSCluster, GCStack, ViewInstalled
from repro.sim.driver import ProcessEndpoint
from repro.sim.invariants import InvariantChecker
from repro.types import ProcessId


class AlgorithmOnGCS:
    """One process: an application endpoint on a GCS stack.

    Accepts any :class:`~repro.sim.driver.ProcessEndpoint` — the bare
    default (an idle Fig. 2-2 application around the algorithm) or a
    real application such as the replicated store — so the very same
    endpoint classes run unmodified on either substrate.
    """

    def __init__(self, endpoint: ProcessEndpoint, stack: GCStack) -> None:
        self.endpoint = endpoint
        self.algorithm = endpoint.algorithm
        self.stack = stack

    def pump(self) -> None:
        """Drain GCS events into the endpoint and send its output.

        This is exactly the application loop of Fig. 2-2: each incoming
        event passes through the algorithm, and after every event (plus
        once per tick, for application-initiated sends) the endpoint is
        polled for an outgoing message to multicast.
        """
        for event in self.stack.poll_events():
            if isinstance(event, ViewInstalled):
                self.endpoint.install_view(
                    View(members=event.members, seq=event.seq)
                )
            elif isinstance(event, Delivered):
                if isinstance(event.payload, Message):
                    self.endpoint.deliver(event.payload, event.sender)
            self._offer_outgoing()
        self._offer_outgoing()

    def _offer_outgoing(self) -> None:
        outgoing = self.endpoint.poll()
        if outgoing is not None:
            self.stack.multicast(outgoing)

    def in_primary(self) -> bool:
        """Whether this process is currently inside the primary."""
        return self.algorithm.in_primary()


class PrimaryComponentService:
    """A whole system: GCS cluster + one algorithm instance per process.

    The closest thing in this repository to the thesis' original
    deployment (YKD over Transis): views are negotiated, multicasts are
    view-synchronous, and the primary-component algorithm rides on top
    untouched.
    """

    def __init__(
        self,
        algorithm: str,
        n_processes: int,
        check_invariants: bool = True,
        endpoint_factory=ProcessEndpoint,
        observers=(),
        *,
        transport=None,
    ) -> None:
        self.cluster = GCSCluster(
            n_processes, observers=observers, transport=transport
        )
        first_view = initial_view(n_processes)
        self.processes: Dict[ProcessId, AlgorithmOnGCS] = {
            pid: AlgorithmOnGCS(
                endpoint_factory(create_algorithm(algorithm, pid, first_view)),
                self.cluster.stacks[pid],
            )
            for pid in range(n_processes)
        }
        self.endpoints: Dict[ProcessId, ProcessEndpoint] = {
            pid: proc.endpoint for pid, proc in self.processes.items()
        }
        # Staggered view installation is inherent to a negotiated GCS:
        # use the co-viewer-agreement form of the primary invariant per
        # tick; strict at-most-one-primary is asserted at stable points.
        self.checker = InvariantChecker(
            enabled=check_invariants, atomic_views=False
        )

    @property
    def algorithms(self) -> Dict[ProcessId, PrimaryComponentAlgorithm]:
        return {pid: proc.algorithm for pid, proc in self.processes.items()}

    def tick(self) -> bool:
        """One lock-step tick of GCS plus applications; True if traffic moved."""
        moved = self.cluster.tick()
        for pid in sorted(self.processes):
            if not self.cluster.topology.is_crashed(pid):
                self.processes[pid].pump()
        # The pumps may have queued multicasts (algorithm rounds,
        # application writes): flush them onto the network within this
        # tick so stability detection sees them as movement.
        for pid in sorted(self.processes):
            stack = self.cluster.stacks[pid]
            for dst, payload in stack.drain_outgoing():
                self.cluster.transport.send(pid, dst, payload)
                moved = True
        self.checker.check_round(
            self.algorithms, self.cluster.topology.active_processes()
        )
        return moved

    def run_until_stable(self, max_ticks: int = 300) -> int:
        """Tick until neither the GCS nor the algorithms move traffic,
        then run the strict stable-point safety checks.

        Stability mirrors :meth:`GCSCluster.run_until_stable`: a quiet
        tick only counts when the transport holds nothing in flight,
        and realtime backends need several consecutive quiet ticks.
        """
        from repro.errors import SimulationError

        transport = self.cluster.transport
        quiet_needed = transport.quiet_ticks_for_stability
        quiet = 0
        for elapsed in range(max_ticks):
            if self.tick() or transport.pending() > 0:
                quiet = 0
            else:
                quiet += 1
                if quiet >= quiet_needed:
                    self.checker.check_stable_primary(
                        self.algorithms,
                        self.cluster.topology.components,
                        self.cluster.topology.active_processes(),
                    )
                    return elapsed + 1
            if transport.realtime:
                transport.idle_wait()
        raise SimulationError(
            f"system did not stabilize within {max_ticks} ticks"
        )

    def set_topology(self, topology) -> None:
        """Reshape the network; membership renegotiates from here."""
        self.cluster.set_topology(topology)

    def close(self) -> None:
        """Release the cluster's transport (network backends only)."""
        self.cluster.close()

    def primary_members(self) -> Optional[Tuple[ProcessId, ...]]:
        """The member tuple of the live primary, or None."""
        claimants = [
            pid
            for pid in sorted(self.processes)
            if not self.cluster.topology.is_crashed(pid)
            and self.processes[pid].in_primary()
        ]
        return tuple(claimants) if claimants else None
