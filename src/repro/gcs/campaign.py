"""Availability campaigns on the group communication substrate.

The simulation study measures availability on the driver loop, whose
interruption model (the mid-round cut) is a modelling choice.  The GCS
substrate interrupts *naturally*: a connectivity change simply drops
the in-flight datagrams that cross the new boundary, and membership
agreement itself takes rounds that changes can land inside.  Running
the same availability campaign here is therefore a strong
cross-validation: if the paper's orderings survive a substrate with a
completely different failure microstructure, they are properties of the
algorithms, not of the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import SimulationError
from repro.gcs.adapter import PrimaryComponentService
from repro.net.changes import UniformChangeGenerator, apply_change
from repro.sim.rng import derive_rng


@dataclass
class GCSCaseConfig:
    """One availability case on the GCS substrate.

    ``mean_ticks_between_changes`` plays the role of the driver's mean
    rounds between changes, but in GCS ticks — a view renegotiation
    costs several ticks here, so the comparable stress points sit at
    larger numbers than the driver's rates.
    """

    algorithm: str
    n_processes: int = 6
    n_changes: int = 8
    mean_ticks_between_changes: float = 4.0
    runs: int = 50
    master_seed: int = 0
    max_stable_ticks: int = 600
    #: Attach a :class:`repro.obs.causal.GCSViewSpans` tracker per run
    #: and collect every view's agreement window on the result — the
    #: GCS analogue of the driver campaigns' causal spans.
    collect_view_spans: bool = False
    #: Packet backend for every run's cluster.  Only ``"memory"`` is
    #: supported: a campaign is a replayable statistical study, and the
    #: wall-clock network backends are neither deterministic nor fast
    #: enough for hundreds of runs.  Anything else is refused loudly
    #: with :class:`~repro.errors.UnsupportedTransportConfig` — run
    #: network convergence through :mod:`repro.gcs.proc` instead.
    transport: str = "memory"


@dataclass
class GCSCaseResult:
    config: GCSCaseConfig
    outcomes: List[bool] = field(default_factory=list)
    #: View-agreement spans across all runs (when
    #: :attr:`GCSCaseConfig.collect_view_spans` was set).
    view_spans: List = field(default_factory=list)

    @property
    def availability_percent(self) -> float:
        if not self.outcomes:
            raise ValueError("no runs recorded")
        return 100.0 * sum(self.outcomes) / len(self.outcomes)

    def view_outcome_counts(self) -> Dict[str, int]:
        """How many collected view spans ended in each outcome."""
        counts: Dict[str, int] = {}
        for span in self.view_spans:
            counts[span.outcome] = counts.get(span.outcome, 0) + 1
        return counts


def run_gcs_case(config: GCSCaseConfig) -> GCSCaseResult:
    """Fresh-start availability over the GCS, one service per run.

    The fault RNG label excludes the algorithm name, so — like the
    driver campaigns — every algorithm faces identical fault sequences.
    """
    if config.transport != "memory":
        from repro.errors import UnsupportedTransportConfig

        raise UnsupportedTransportConfig(
            f"GCS campaigns run on the in-memory transport only, not "
            f"{config.transport!r}: availability statistics need "
            "deterministic replayable runs; drive network backends "
            "through repro.gcs.proc or GCSCluster(transport=...)"
        )
    result = GCSCaseResult(config=config)
    generator = UniformChangeGenerator()
    probability = 1.0 / (1.0 + config.mean_ticks_between_changes)
    for run_index in range(config.runs):
        fault_rng = derive_rng(
            config.master_seed,
            "gcs",
            config.n_processes,
            config.n_changes,
            config.mean_ticks_between_changes,
            run_index,
        )
        tracker = None
        observers = ()
        if config.collect_view_spans:
            from repro.obs.causal import GCSViewSpans

            tracker = GCSViewSpans()
            observers = (tracker,)
        service = PrimaryComponentService(
            config.algorithm, config.n_processes, observers=observers
        )
        injected = 0
        guard = 0
        while injected < config.n_changes:
            guard += 1
            if guard > 100_000:  # pragma: no cover - impossible backstop
                raise SimulationError("fault injection failed to progress")
            if fault_rng.random() < probability:
                change = generator.propose(service.cluster.topology, fault_rng)
                if change is not None:
                    service.set_topology(
                        apply_change(service.cluster.topology, change)
                    )
                    injected += 1
            service.tick()
        service.run_until_stable(max_ticks=config.max_stable_ticks)
        result.outcomes.append(service.primary_members() is not None)
        if tracker is not None:
            result.view_spans.extend(
                tracker.finalize(at_tick=service.cluster.ticks)
            )
    return result


def compare_on_gcs(
    algorithms: List[str],
    n_processes: int = 6,
    n_changes: int = 8,
    mean_ticks_between_changes: float = 4.0,
    runs: int = 50,
    master_seed: int = 0,
) -> Dict[str, GCSCaseResult]:
    """Run the same GCS case for several algorithms."""
    return {
        algorithm: run_gcs_case(
            GCSCaseConfig(
                algorithm=algorithm,
                n_processes=n_processes,
                n_changes=n_changes,
                mean_ticks_between_changes=mean_ticks_between_changes,
                runs=runs,
                master_seed=master_seed,
            )
        )
        for algorithm in algorithms
    }
