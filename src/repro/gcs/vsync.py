"""View-synchronous multicast on top of agreed views.

The thesis' interface contract asks exactly this of a group
communication service: "reliable multicast and [the ability to] report
connectivity changes" (§2.1).  The layer provides:

* **multicast within the view** — a message is tagged with the sender's
  current view id and a per-sender sequence number, and unicast to
  every member (self included, for symmetry);
* **same-view delivery** — a receiver delivers a message only in the
  view it was sent in; anything that straddles a view change is
  discarded (the algorithms above re-exchange state in every new view,
  so cross-view traffic is stale by construction — the same semantics
  the simulation driver applies);
* **FIFO per sender** — guaranteed by the packet network's FIFO
  channels plus a defensive per-sender gap check here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from repro.gcs.membership import ViewId
from repro.types import Members, ProcessId


@dataclass(frozen=True)
class ViewMessage:
    """A multicast payload tagged for view-synchronous delivery."""

    view_id: ViewId
    sender: ProcessId
    seq: int
    payload: Any


class VSyncLayer:
    """One process's view-synchronous sending/delivery state."""

    #: Bound on buffered future-view messages (a member may receive
    #: view-V traffic moments before its own Install for V arrives).
    MAX_FUTURE_BUFFER = 4096

    def __init__(self, pid: ProcessId) -> None:
        self.pid = pid
        self._view_id: ViewId = (0, 0)
        self._members: Members = frozenset({pid})
        self._next_seq: int = 0
        self._expected: Dict[ProcessId, int] = {}
        self._future: List[ViewMessage] = []
        self.discarded_cross_view = 0

    def enter_view(
        self, view_id: ViewId, members: Members
    ) -> List[Tuple[ProcessId, Any]]:
        """A new view was installed: reset sequencing, drop the past,
        and deliver any buffered traffic that was waiting for this view
        (members install views at slightly different instants; traffic
        from an earlier installer must not be lost).  Returns the
        (sender, payload) pairs now deliverable."""
        self._view_id = view_id
        self._members = frozenset(members)
        self._next_seq = 0
        self._expected = {member: 0 for member in self._members}
        ready = sorted(
            (m for m in self._future if m.view_id == view_id),
            key=lambda m: (m.sender, m.seq),
        )
        self._future = [m for m in self._future if m.view_id > view_id]
        delivered: List[Tuple[ProcessId, Any]] = []
        for message in ready:
            delivered.extend(self.receive(message))
        return delivered

    def multicast(self, payload: Any) -> List[Tuple[ProcessId, ViewMessage]]:
        """Produce the unicasts realizing one multicast in this view."""
        message = ViewMessage(
            view_id=self._view_id,
            sender=self.pid,
            seq=self._next_seq,
            payload=payload,
        )
        self._next_seq += 1
        return [(member, message) for member in sorted(self._members)]

    def receive(self, message: ViewMessage) -> List[Tuple[ProcessId, Any]]:
        """Filter one incoming ViewMessage; returns deliverable
        (sender, payload) pairs (empty when discarded)."""
        if message.view_id != self._view_id:
            if message.view_id > self._view_id:
                # Traffic for a view we have not installed yet: hold it.
                if len(self._future) < self.MAX_FUTURE_BUFFER:
                    self._future.append(message)
                return []
            self.discarded_cross_view += 1
            return []
        expected = self._expected.get(message.sender)
        if expected is None:
            return []  # not a member of this view: spurious
        if message.seq < expected:
            return []  # duplicate
        self._expected[message.sender] = message.seq + 1
        return [(message.sender, message.payload)]
