"""Command line for the multi-process GCS cluster.

``python -m repro.gcs.proc`` runs one recorded partition schedule on a
real multi-process cluster and — unless ``--skip-reference`` — checks
the differential convergence property: the cluster must reach the same
stable views and primary claimants as the deterministic in-memory
simulation of the same schedule.  Exit code 0 means converged and
matching; 1 means a divergence (printed per stage).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.faults.model import LinkFaults
from repro.gcs.proc.controller import ProcCluster, run_differential
from repro.gcs.proc.schedule import (
    STOCK_SCHEDULES,
    RecordedSchedule,
    generated_schedule,
    simulate_reference,
)


def _resolve_schedule(name: str) -> RecordedSchedule:
    if name in STOCK_SCHEDULES:
        return STOCK_SCHEDULES[name]
    if name.startswith("generated:"):
        return generated_schedule(int(name.split(":", 1)[1]))
    raise SystemExit(
        f"unknown schedule {name!r}; stock schedules: "
        f"{', '.join(sorted(STOCK_SCHEDULES))} (or generated:<seed>)"
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.gcs.proc",
        description=(
            "Run a recorded partition schedule on a real multi-process "
            "GCS cluster and compare against the simulated reference."
        ),
    )
    parser.add_argument(
        "--schedule",
        default="flip_flop",
        help="stock schedule name or generated:<seed> "
        f"(stock: {', '.join(sorted(STOCK_SCHEDULES))})",
    )
    parser.add_argument("--algorithm", default="ykd")
    parser.add_argument(
        "--transport", default="udp", choices=("udp", "tcp")
    )
    parser.add_argument(
        "--loss-permille",
        type=int,
        default=0,
        help="injected per-transmission wire loss (udp only)",
    )
    parser.add_argument(
        "--link-seed", type=int, default=0, help="wire-fault draw seed"
    )
    parser.add_argument("--stage-timeout", type=float, default=30.0)
    parser.add_argument(
        "--tick-interval",
        type=float,
        default=0.005,
        help="node tick pacing in seconds",
    )
    parser.add_argument(
        "--skip-reference",
        action="store_true",
        help="run the real cluster only, without the differential check",
    )
    args = parser.parse_args(argv)

    schedule = _resolve_schedule(args.schedule)
    link = None
    if args.loss_permille:
        link = LinkFaults(
            loss_permille=args.loss_permille, seed=args.link_seed
        )

    if args.skip_reference:
        with ProcCluster(
            schedule.n_processes,
            algorithm=args.algorithm,
            transport=args.transport,
            link=link,
            tick_interval=args.tick_interval,
        ) as cluster:
            outcomes = cluster.run_schedule(
                schedule, stage_timeout=args.stage_timeout
            )
        for index, outcome in enumerate(outcomes):
            print(f"stage {index}: views={dict(outcome.views)} "
                  f"primaries={outcome.primaries}")
        return 0

    result = run_differential(
        schedule,
        algorithm=args.algorithm,
        transport=args.transport,
        link=link,
        stage_timeout=args.stage_timeout,
        tick_interval=args.tick_interval,
    )
    for index, (ref, obs) in enumerate(
        zip(result.reference, result.observed)
    ):
        marker = "ok" if (ref == obs) else "DIVERGED"
        print(
            f"stage {index} [{marker}]: primaries={obs.primaries} "
            f"views={dict(obs.views)}"
        )
    if result.matches:
        print(
            f"MATCH: {result.schedule} x {result.algorithm} over "
            f"{result.transport} converged to the simulated reference"
        )
        return 0
    print("DIVERGENCE:")
    for line in result.divergences():
        print("  " + line)
    return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
