"""Recorded partition schedules and the simulated reference runner.

A :class:`RecordedSchedule` is a replayable script of connectivity
stages: each stage partitions the process universe into components, the
system runs until stable, and the stable outcome (who is in which view,
who claims the primary) is harvested before the next stage applies.
The same schedule drives both substrates — the deterministic in-memory
cluster (:func:`simulate_reference`) and the real multi-process cluster
(:meth:`~repro.gcs.proc.controller.ProcCluster.run_schedule`) — which
is what makes the differential convergence battery possible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import SimulationError
from repro.net.topology import Topology
from repro.sim.rng import derive_seed

Stage = Tuple[Tuple[int, ...], ...]


@dataclass(frozen=True)
class RecordedSchedule:
    """A named script of connectivity stages over a fixed universe.

    Every stage must partition ``range(n_processes)`` exactly; the
    constructor refuses anything else, so a schedule that loads is a
    schedule that runs.
    """

    name: str
    n_processes: int
    stages: Tuple[Stage, ...]

    def __post_init__(self) -> None:
        if self.n_processes < 2:
            raise SimulationError("a schedule needs at least two processes")
        if not self.stages:
            raise SimulationError("a schedule needs at least one stage")
        universe = set(range(self.n_processes))
        normalized: List[Stage] = []
        for index, stage in enumerate(self.stages):
            seen: set = set()
            for component in stage:
                if not component:
                    raise SimulationError(
                        f"stage {index} of {self.name!r} has an empty component"
                    )
                if seen & set(component):
                    raise SimulationError(
                        f"stage {index} of {self.name!r} reuses processes"
                    )
                seen |= set(component)
            if seen != universe:
                raise SimulationError(
                    f"stage {index} of {self.name!r} does not partition "
                    f"the universe: covers {sorted(seen)}"
                )
            normalized.append(
                tuple(
                    tuple(sorted(component))
                    for component in sorted(stage, key=lambda c: sorted(c))
                )
            )
        object.__setattr__(self, "stages", tuple(normalized))

    def topologies(self) -> List[Topology]:
        """One :class:`Topology` per stage, in order."""
        return [
            Topology(
                components=tuple(frozenset(c) for c in stage)
            )
            for stage in self.stages
        ]


@dataclass(frozen=True)
class StageOutcome:
    """The stable state harvested at the end of one schedule stage.

    Only *convergence-relevant* facts appear here — the installed view
    membership per process and the set of primary claimants.  View-id
    epochs and sequence numbers are deliberately excluded: the real
    cluster may burn extra agreement epochs on retransmissions without
    that being a divergence.
    """

    views: Tuple[Tuple[int, Tuple[int, ...]], ...]
    primaries: Tuple[int, ...]

    @classmethod
    def build(
        cls, views: Dict[int, Tuple[int, ...]], primaries: List[int]
    ) -> "StageOutcome":
        return cls(
            views=tuple(sorted(views.items())),
            primaries=tuple(sorted(primaries)),
        )


def _full(n: int) -> Stage:
    return (tuple(range(n)),)


#: The recorded schedules the differential battery pins (≥ 3, varied:
#: a clean split/restore, a cascading fragmentation, and alternating
#: cross-cutting splits that force quorum hand-offs).
STOCK_SCHEDULES: Dict[str, RecordedSchedule] = {
    schedule.name: schedule
    for schedule in (
        RecordedSchedule(
            name="split_restore",
            n_processes=5,
            stages=(
                _full(5),
                ((0, 1), (2, 3, 4)),
                _full(5),
            ),
        ),
        RecordedSchedule(
            name="cascade",
            n_processes=5,
            stages=(
                _full(5),
                ((0, 1, 2, 3), (4,)),
                ((0, 1), (2, 3), (4,)),
                _full(5),
            ),
        ),
        RecordedSchedule(
            name="flip_flop",
            n_processes=4,
            stages=(
                _full(4),
                ((0, 1), (2, 3)),
                ((0, 2), (1, 3)),
                _full(4),
            ),
        ),
    )
}


def generated_schedule(
    seed: int, n_processes: int = 5, n_stages: int = 4
) -> RecordedSchedule:
    """A pure-hash random schedule: same seed, same stages, forever.

    Stage 0 is always fully connected (the system must first form its
    initial primary) and the final stage always restores full
    connectivity (so every run ends comparable).  Interior stages
    partition the universe by a deterministic hash of the seed.
    """
    if n_stages < 2:
        raise SimulationError("a generated schedule needs >= 2 stages")
    stages: List[Stage] = [_full(n_processes)]
    for stage_index in range(1, n_stages - 1):
        n_components = 2 + derive_seed(
            seed, "gcs.proc.schedule", stage_index, "count"
        ) % min(3, n_processes - 1)
        buckets: List[List[int]] = [[] for _ in range(n_components)]
        for pid in range(n_processes):
            bucket = derive_seed(
                seed, "gcs.proc.schedule", stage_index, "assign", pid
            ) % n_components
            buckets[bucket].append(pid)
        stage = tuple(
            tuple(bucket) for bucket in buckets if bucket
        )
        stages.append(stage if len(stage) > 1 else _full(n_processes))
    stages.append(_full(n_processes))
    return RecordedSchedule(
        name=f"generated-{seed}",
        n_processes=n_processes,
        stages=tuple(stages),
    )


def simulate_reference(
    schedule: RecordedSchedule,
    algorithm: str,
    max_ticks: int = 500,
) -> List[StageOutcome]:
    """Run the schedule on the deterministic in-memory substrate.

    This is the oracle side of the differential battery: the very same
    algorithm objects, the same negotiated-view GCS, but lock-step
    ticks over :class:`~repro.gcs.transport.memory.MemoryTransport`.
    """
    from repro.gcs.adapter import PrimaryComponentService

    service = PrimaryComponentService(algorithm, schedule.n_processes)
    outcomes: List[StageOutcome] = []
    for topology in schedule.topologies():
        service.set_topology(topology)
        service.run_until_stable(max_ticks=max_ticks)
        views = {
            pid: tuple(sorted(service.cluster.stacks[pid].view_members))
            for pid in range(schedule.n_processes)
        }
        primaries = [
            pid
            for pid in sorted(service.processes)
            if service.processes[pid].in_primary()
        ]
        outcomes.append(StageOutcome.build(views, primaries))
    return outcomes
