"""A real multi-process GCS cluster over network transports.

Where :class:`repro.gcs.stack.GCSCluster` hosts every stack inside one
interpreter and ticks them in lock-step, this package spawns **one OS
process per group member**: each child hosts a single
:class:`~repro.gcs.stack.GCStack` plus its algorithm endpoint,
exchanges length-prefixed canonical-JSON datagrams over real UDP or
TCP sockets (:mod:`repro.gcs.transport.asyncnet`), and elects primaries
across genuine packet loss.  A controller in the parent process applies
recorded partition schedules as per-node reachability filters and
harvests view/primary logs over control pipes.

The supported surface:

* :class:`~repro.gcs.proc.controller.ProcCluster` — spawn, drive,
  harvest, stop.
* :class:`~repro.gcs.proc.schedule.RecordedSchedule` and the stock
  :data:`~repro.gcs.proc.schedule.STOCK_SCHEDULES` — replayable
  partition scripts.
* :func:`~repro.gcs.proc.schedule.simulate_reference` — the same
  schedule on the deterministic in-memory substrate.
* :func:`~repro.gcs.proc.controller.run_differential` — the
  convergence battery: the real cluster must reach the same stable
  views and primaries as the simulated reference, stage by stage.
"""

from repro.gcs.proc.controller import (
    DifferentialResult,
    ProcCluster,
    run_differential,
)
from repro.gcs.proc.schedule import (
    STOCK_SCHEDULES,
    RecordedSchedule,
    StageOutcome,
    generated_schedule,
    simulate_reference,
)

__all__ = [
    "ProcCluster",
    "DifferentialResult",
    "run_differential",
    "RecordedSchedule",
    "StageOutcome",
    "STOCK_SCHEDULES",
    "generated_schedule",
    "simulate_reference",
]
