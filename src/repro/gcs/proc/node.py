"""The child-process main loop: one GCS stack on a real socket.

Each node hosts exactly one :class:`~repro.gcs.stack.GCStack` and its
algorithm endpoint, bound to a network transport
(:mod:`repro.gcs.transport.asyncnet`) that carries length-prefixed
canonical-JSON datagrams over localhost UDP or TCP.  The parent
controller speaks a small tuple protocol over a multiprocessing pipe:

* ``("ports", {pid: port})`` — the full rendezvous map (phase two of
  port allocation; the node sent ``("port", pid, port)`` in phase one);
* ``("reachable", (pids...))`` — the oracle failure detector: which
  peers this node can currently reach (a recorded partition schedule's
  view of the world);
* ``("status",)`` → ``("status", pid, {...})`` — current view members,
  view id, primary claim, traffic counters and aggregate ARQ counters;
* ``("put", key, value[, trace])`` / ``("get", key[, trace])`` /
  ``("snapshot",)`` — replicated-store operations (store endpoints
  only); the optional trace id is recorded with the store op;
* ``("telemetry",)`` → ``("telemetry", pid, {...})`` — the node's
  flight-recorder snapshot (the scrape plane's pipe pull);
* ``("stop",)`` — shut down cleanly.

Every node carries a :class:`~repro.obs.telemetry.recorder
.FlightRecorder`: view installs (via the stack's event sink), ARQ
counter movements, store ops with their trace ids.  When the node dies
on an unhandled exception and the controller passed a
``telemetry_dir``, the ring is dumped there as a post-mortem before
the error crosses the pipe — dead children leave a readable black box.

The node loop is the single-process twin of
:meth:`repro.gcs.stack.GCSCluster.tick`: drain the transport, advance
membership against the reachable set, pump the application, flush the
stack's outgoing unicasts, pace by the transport's tick interval.
"""

from __future__ import annotations

import traceback
from typing import Any, Optional

from repro.core.registry import create_algorithm
from repro.core.view import initial_view
from repro.errors import ReproError
from repro.faults.model import LinkFaults
from repro.gcs.adapter import AlgorithmOnGCS
from repro.gcs.stack import GCStack, ViewInstalled
from repro.gcs.transport.asyncnet import TcpTransport, UdpTransport
from repro.obs.telemetry.recorder import FlightRecorder, write_crash_dump
from repro.types import ProcessId


def _build_transport(
    kind: str, link: Optional[LinkFaults], tick_interval: float
):
    if kind == "udp":
        return UdpTransport(link=link, tick_interval=tick_interval)
    if kind == "tcp":
        return TcpTransport(link=link, tick_interval=tick_interval)
    raise ReproError(f"node cannot host a {kind!r} transport")


def _build_endpoint(endpoint_kind: str, algorithm: str, pid: ProcessId, n: int):
    algo = create_algorithm(algorithm, pid, initial_view(n))
    if endpoint_kind == "store":
        from repro.app.replicated_store import ReplicatedStore

        return ReplicatedStore(algo)
    from repro.sim.driver import ProcessEndpoint

    return ProcessEndpoint(algo)


def node_main(
    pid: ProcessId,
    n_processes: int,
    algorithm: str,
    transport_kind: str,
    link: Optional[LinkFaults],
    conn: Any,
    endpoint_kind: str = "bare",
    tick_interval: float = 0.005,
    telemetry_dir: Optional[str] = None,
    flight_capacity: int = 2048,
) -> None:
    """Entry point of one spawned group member (runs until ``stop``)."""
    transport = None
    recorder = FlightRecorder(pid, capacity=flight_capacity)
    try:
        universe = frozenset(range(n_processes))
        transport = _build_transport(transport_kind, link, tick_interval)
        transport.bind(universe, frozenset({pid}))
        conn.send(("port", pid, transport.ports[pid]))

        def sink(_sink_pid: ProcessId, event: Any) -> None:
            if isinstance(event, ViewInstalled):
                recorder.record(
                    "view_change",
                    view_id=list(event.view_id),
                    members=sorted(event.members),
                )

        stack = GCStack(pid, universe, event_sink=sink)
        endpoint = _build_endpoint(endpoint_kind, algorithm, pid, n_processes)
        process = AlgorithmOnGCS(endpoint, stack)
        reachable = universe
        transport.set_reachable(pid, reachable)
        arq_seen = {}

        running = True
        rendezvoused = False
        while running:
            while conn.poll(0):
                command = conn.recv()
                kind = command[0]
                if kind == "ports":
                    transport.set_peer_ports(dict(command[1]))
                    rendezvoused = True
                elif kind == "reachable":
                    reachable = frozenset(command[1]) | {pid}
                    transport.set_reachable(pid, reachable)
                    recorder.record("reachable", peers=sorted(reachable))
                elif kind == "status":
                    view = stack.membership.current_view
                    status = {
                        "view": tuple(sorted(view.members)),
                        "view_id": tuple(view.view_id),
                        "in_primary": process.in_primary(),
                        "traffic": (
                            transport.sent_count,
                            transport.delivered_count,
                            transport.dropped_count,
                        ),
                        "pending": transport.pending(),
                        "arq": transport.arq_stats(),
                    }
                    if hasattr(endpoint, "stats"):
                        status["store"] = endpoint.stats()
                    conn.send(("status", pid, status))
                elif kind == "telemetry":
                    conn.send(("telemetry", pid, recorder.snapshot()))
                elif kind == "put":
                    trace = command[3] if len(command) > 3 else None
                    try:
                        op = endpoint.put(command[1], command[2])
                        recorder.record(
                            "store_put",
                            key=command[1],
                            accepted=True,
                            stamp=list(op.stamp),
                            trace=trace,
                        )
                        conn.send(("put_ok", pid, op.stamp))
                    except ReproError as exc:
                        recorder.record(
                            "store_put",
                            key=command[1],
                            accepted=False,
                            trace=trace,
                        )
                        conn.send(("put_refused", pid, str(exc)))
                elif kind == "get":
                    trace = command[2] if len(command) > 2 else None
                    recorder.record(
                        "store_get", key=command[1], trace=trace
                    )
                    conn.send(("get_ok", pid, endpoint.get(command[1])))
                elif kind == "snapshot":
                    conn.send(
                        (
                            "snapshot",
                            pid,
                            {
                                "data": dict(endpoint.data),
                                "stamp": tuple(endpoint.stamp),
                            },
                        )
                    )
                elif kind == "stop":
                    running = False
                else:
                    conn.send(("error", pid, f"unknown command {kind!r}"))
            if not rendezvoused:
                # No peer ports yet: sending would be routed nowhere.
                transport.idle_wait()
                continue
            for datagram in transport.deliver_tick():
                stack.on_datagram(datagram.src, datagram.payload)
            stack.tick(reachable)
            process.pump()
            for dst, payload in stack.drain_outgoing():
                transport.send(pid, dst, payload)
            arq_now = transport.arq_stats()
            if arq_now != arq_seen:
                moved = {
                    key: value - arq_seen.get(key, 0)
                    for key, value in arq_now.items()
                    if value != arq_seen.get(key, 0)
                }
                recorder.record("arq", **moved)
                arq_seen = arq_now
            transport.idle_wait()
        conn.send(("stopped", pid))
    except (EOFError, BrokenPipeError, KeyboardInterrupt):
        pass  # the controller went away; just exit
    except Exception:  # pragma: no cover - surfaced to the controller
        error = traceback.format_exc()
        if telemetry_dir is not None:
            write_crash_dump(recorder, telemetry_dir, error)
        try:
            conn.send(("error", pid, error))
        except (OSError, ValueError):
            pass
    finally:
        if transport is not None:
            transport.close()
        try:
            conn.close()
        except OSError:
            pass
