"""The parent-side controller of a multi-process GCS cluster.

:class:`ProcCluster` spawns one OS process per group member (spawn
context — every child is a fresh interpreter), performs the two-phase
port rendezvous (children bind port 0 and report; the controller
broadcasts the full map), then drives recorded partition schedules by
pushing per-node reachability filters and polling status until the
cluster goes *quiet*: views, primary claims and traffic counters all
unchanged across several consecutive polls with nothing pending.

:func:`run_differential` is the convergence battery of the transports
work: the same :class:`~repro.gcs.proc.schedule.RecordedSchedule` runs
on the deterministic in-memory substrate and on the real cluster, and
the per-stage stable views and primary claimant sets must agree.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import (
    SimulationError,
    UnsupportedTransportConfig,
)
from repro.faults.model import LinkFaults
from repro.gcs.proc.node import node_main
from repro.gcs.proc.schedule import (
    RecordedSchedule,
    StageOutcome,
    simulate_reference,
)
from repro.types import ProcessId

NETWORK_TRANSPORTS = ("udp", "tcp")


class ProcCluster:
    """N real OS processes, each hosting one GCS stack on real sockets.

    Use as a context manager — the children are daemonic but holding
    sockets; :meth:`close` stops them deterministically::

        with ProcCluster(5, algorithm="ykd", transport="udp") as cluster:
            outcomes = cluster.run_schedule(STOCK_SCHEDULES["cascade"])
    """

    def __init__(
        self,
        n_processes: int,
        algorithm: str = "ykd",
        transport: str = "udp",
        link: Optional[LinkFaults] = None,
        endpoint_kind: str = "bare",
        tick_interval: float = 0.005,
        start_timeout: float = 30.0,
        telemetry_dir: Optional[str] = None,
        flight_capacity: int = 2048,
    ) -> None:
        if transport not in NETWORK_TRANSPORTS:
            raise UnsupportedTransportConfig(
                f"a multi-process cluster needs a network transport "
                f"(udp or tcp), not {transport!r} — the in-memory "
                "backend cannot cross process boundaries"
            )
        if transport == "tcp" and link is not None and (
            link.loss_permille > 0 or link.link_loss or link.reorder
        ):
            raise UnsupportedTransportConfig(
                "the TCP backend cannot lose or reorder frames; run "
                "wire-fault schedules over udp"
            )
        self.n_processes = n_processes
        self.algorithm = algorithm
        self.transport = transport
        self.tick_interval = tick_interval
        self.telemetry_dir = (
            str(telemetry_dir) if telemetry_dir is not None else None
        )
        self._closed = False
        ctx = multiprocessing.get_context("spawn")
        self._conns: Dict[ProcessId, Any] = {}
        self._procs: Dict[ProcessId, Any] = {}
        for pid in range(n_processes):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=node_main,
                args=(
                    pid,
                    n_processes,
                    algorithm,
                    transport,
                    link,
                    child_conn,
                    endpoint_kind,
                    tick_interval,
                    self.telemetry_dir,
                    flight_capacity,
                ),
                daemon=True,
                name=f"gcs-node-{pid}",
            )
            proc.start()
            child_conn.close()
            self._conns[pid] = parent_conn
            self._procs[pid] = proc
        # Phase two of port allocation: collect, then broadcast.
        ports: Dict[ProcessId, int] = {}
        deadline = time.monotonic() + start_timeout
        for pid, conn in self._conns.items():
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not conn.poll(remaining):
                self.close()
                raise SimulationError(
                    f"node {pid} did not report its port within "
                    f"{start_timeout}s"
                )
            try:
                message = conn.recv()
            except EOFError:
                self.close()
                raise SimulationError(
                    f"node {pid} died before reporting its port"
                ) from None
            self._require_ok(pid, message, "port")
            ports[message[1]] = message[2]
        for conn in self._conns.values():
            conn.send(("ports", ports))
        self.ports = ports

    # ------------------------------------------------------------------
    # Schedule driving.
    # ------------------------------------------------------------------

    def apply_stage(self, stage: Tuple[Tuple[int, ...], ...]) -> None:
        """Install one schedule stage as per-node reachability filters."""
        for component in stage:
            members = tuple(sorted(component))
            for pid in component:
                self._conns[pid].send(("reachable", members))

    def statuses(self) -> Dict[ProcessId, Dict[str, Any]]:
        """One status round-trip to every node."""
        for pid, conn in self._conns.items():
            try:
                conn.send(("status",))
            except (OSError, BrokenPipeError):
                raise SimulationError(f"node {pid} died") from None
        out: Dict[ProcessId, Dict[str, Any]] = {}
        for pid, conn in self._conns.items():
            if not conn.poll(10.0):
                raise SimulationError(f"node {pid} stopped answering status")
            try:
                message = conn.recv()
            except EOFError:
                raise SimulationError(f"node {pid} died") from None
            self._require_ok(pid, message, "status")
            out[pid] = message[2]
        return out

    def await_stable(
        self,
        timeout: float = 30.0,
        settle_polls: int = 3,
        poll_interval: float = 0.05,
    ) -> StageOutcome:
        """Poll until views, primaries and traffic counters all freeze.

        Stability needs ``settle_polls`` *consecutive* identical
        snapshots with nothing pending in any transport — the realtime
        analogue of the tick-loop's quiet-tick rule.
        """
        deadline = time.monotonic() + timeout
        previous: Optional[Tuple] = None
        settled = 0
        while time.monotonic() < deadline:
            snapshot = self.statuses()
            key = tuple(
                (pid, status["view"], status["in_primary"], status["traffic"])
                for pid, status in sorted(snapshot.items())
            )
            quiet = all(
                status["pending"] == 0 for status in snapshot.values()
            )
            if quiet and key == previous:
                settled += 1
                if settled >= settle_polls:
                    return StageOutcome.build(
                        views={
                            pid: tuple(status["view"])
                            for pid, status in snapshot.items()
                        },
                        primaries=[
                            pid
                            for pid, status in sorted(snapshot.items())
                            if status["in_primary"]
                        ],
                    )
            else:
                settled = 0
                previous = key
            time.sleep(poll_interval)
        raise SimulationError(
            f"multi-process cluster did not stabilize within {timeout}s"
        )

    def run_schedule(
        self, schedule: RecordedSchedule, stage_timeout: float = 30.0
    ) -> List[StageOutcome]:
        """Apply every stage in order, harvesting each stable outcome."""
        if schedule.n_processes != self.n_processes:
            raise SimulationError(
                f"schedule {schedule.name!r} wants "
                f"{schedule.n_processes} processes, cluster has "
                f"{self.n_processes}"
            )
        outcomes: List[StageOutcome] = []
        for stage in schedule.stages:
            self.apply_stage(stage)
            outcomes.append(self.await_stable(timeout=stage_timeout))
        return outcomes

    # ------------------------------------------------------------------
    # Replicated-store operations (endpoint_kind="store" clusters).
    # ------------------------------------------------------------------

    def put(
        self,
        pid: ProcessId,
        key: str,
        value: Any,
        trace: Optional[str] = None,
    ) -> Tuple[bool, Any]:
        """Write through one replica → (accepted, stamp-or-reason)."""
        self._conns[pid].send(("put", key, value, trace))
        message = self._recv(pid)
        if message[0] == "put_ok":
            return True, message[2]
        if message[0] == "put_refused":
            return False, message[2]
        raise SimulationError(f"node {pid} answered {message[0]!r} to put")

    def get(
        self, pid: ProcessId, key: str, trace: Optional[str] = None
    ) -> Any:
        """Read a key from one replica (possibly stale outside primary)."""
        self._conns[pid].send(("get", key, trace))
        message = self._recv(pid)
        self._require_ok(pid, message, "get_ok")
        return message[2]

    def snapshot(self, pid: ProcessId) -> Dict[str, Any]:
        """One replica's full store contents and stamp."""
        self._conns[pid].send(("snapshot",))
        message = self._recv(pid)
        self._require_ok(pid, message, "snapshot")
        return message[2]

    # ------------------------------------------------------------------
    # Telemetry (the scrape plane's pipe pull).
    # ------------------------------------------------------------------

    def node_telemetry(self, pid: ProcessId) -> Dict[str, Any]:
        """One node's flight-recorder snapshot (events, drop counts)."""
        self._conns[pid].send(("telemetry",))
        message = self._recv(pid)
        self._require_ok(pid, message, "telemetry")
        return message[2]

    def collect_telemetry(self) -> Dict[ProcessId, Dict[str, Any]]:
        """Every live node's flight snapshot, keyed by pid."""
        return {
            pid: self.node_telemetry(pid) for pid in sorted(self._conns)
        }

    def crash_dumps(self) -> List[Path]:
        """Post-mortem flight dumps written so far (telemetry_dir only)."""
        if self.telemetry_dir is None:
            return []
        from repro.obs.telemetry.recorder import crash_dump_path

        return [
            path
            for pid in range(self.n_processes)
            for path in [crash_dump_path(self.telemetry_dir, pid)]
            if path.exists()
        ]

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Stop every node; terminate stragglers after a grace period."""
        if self._closed:
            return
        self._closed = True
        for conn in self._conns.values():
            try:
                conn.send(("stop",))
            except (OSError, ValueError, BrokenPipeError):
                pass
        for proc in self._procs.values():
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)
        for conn in self._conns.values():
            try:
                conn.close()
            except OSError:
                pass

    def __enter__(self) -> "ProcCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Internals.
    # ------------------------------------------------------------------

    def _recv(self, pid: ProcessId, timeout: float = 10.0):
        if not self._conns[pid].poll(timeout):
            raise SimulationError(f"node {pid} did not answer")
        try:
            return self._conns[pid].recv()
        except EOFError:
            raise SimulationError(f"node {pid} died") from None

    def _require_ok(self, pid: ProcessId, message, expected: str) -> None:
        if message[0] == "error":
            raise SimulationError(f"node {pid} failed:\n{message[2]}")
        if message[0] != expected:
            raise SimulationError(
                f"node {pid} answered {message[0]!r}, expected {expected!r}"
            )


@dataclass(frozen=True)
class DifferentialResult:
    """The verdict of one schedule × algorithm differential run."""

    schedule: str
    algorithm: str
    transport: str
    reference: Tuple[StageOutcome, ...]
    observed: Tuple[StageOutcome, ...]

    @property
    def matches(self) -> bool:
        return self.reference == self.observed

    def divergences(self) -> List[str]:
        """Human-readable per-stage mismatches (empty when matching)."""
        out: List[str] = []
        for index, (ref, obs) in enumerate(
            zip(self.reference, self.observed)
        ):
            if ref.views != obs.views:
                out.append(
                    f"stage {index}: views differ — reference "
                    f"{ref.views}, observed {obs.views}"
                )
            if ref.primaries != obs.primaries:
                out.append(
                    f"stage {index}: primaries differ — reference "
                    f"{ref.primaries}, observed {obs.primaries}"
                )
        return out


def run_differential(
    schedule: RecordedSchedule,
    algorithm: str = "ykd",
    transport: str = "udp",
    link: Optional[LinkFaults] = None,
    stage_timeout: float = 30.0,
    tick_interval: float = 0.005,
) -> DifferentialResult:
    """The convergence battery for one (schedule, algorithm) pair.

    Runs the deterministic in-memory reference first, then the real
    multi-process cluster on the requested network transport, and
    packages both outcome sequences for comparison.
    """
    reference = simulate_reference(schedule, algorithm)
    with ProcCluster(
        schedule.n_processes,
        algorithm=algorithm,
        transport=transport,
        link=link,
        tick_interval=tick_interval,
    ) as cluster:
        observed = cluster.run_schedule(schedule, stage_timeout=stage_timeout)
    return DifferentialResult(
        schedule=schedule.name,
        algorithm=algorithm,
        transport=transport,
        reference=tuple(reference),
        observed=tuple(observed),
    )
