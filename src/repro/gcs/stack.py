"""The per-process group communication stack and its cluster runtime.

``GCStack`` composes the membership agent with the view-synchrony
layer, exposing the two-primitive API the thesis' interface needs:
``multicast(payload)`` and an event stream of view installations and
delivered messages.

``GCSCluster`` is the simulation harness: it owns a pluggable packet
:class:`~repro.gcs.transport.Transport` (in-memory by default, real
UDP/TCP sockets on request) and one stack per process, advances
everything in lock-step ticks, and lets tests reshape the topology
between ticks.  Unlike the `repro.sim` driver — which plays the group
communication role itself, as the thesis' testing system did — every
view here is *negotiated* by the membership protocol over
point-to-point packets.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple, Union

from repro.errors import SimulationError
from repro.obs import EventBus, Subscriber
from repro.gcs.membership import (
    Ack,
    AgreedView,
    Install,
    MembershipAgent,
    Nudge,
    Propose,
    ViewId,
)
from repro.gcs.transport.base import Transport, resolve_transport
from repro.gcs.vsync import ViewMessage, VSyncLayer
from repro.net.topology import Topology
from repro.types import Members, ProcessId


@dataclass(frozen=True)
class ViewInstalled:
    """Event: the stack installed a new agreed view."""

    view_id: ViewId
    members: Members
    seq: int


@dataclass(frozen=True)
class Delivered:
    """Event: a view-synchronous multicast arrived."""

    sender: ProcessId
    payload: Any


GCSEvent = Union[ViewInstalled, Delivered]


class GCStack:
    """One process's group communication endpoint.

    ``event_sink``, when given, is called as ``sink(pid, event)`` the
    moment each :data:`GCSEvent` is raised — in addition to (not
    instead of) the event being queued for :meth:`poll_events`.  The
    cluster runtime uses it to publish stack events onto its
    ``repro.obs`` bus.
    """

    def __init__(
        self,
        pid: ProcessId,
        universe: Members,
        event_sink: Optional[Callable[[ProcessId, "GCSEvent"], None]] = None,
    ) -> None:
        self.pid = pid
        self.membership = MembershipAgent(pid, universe)
        self.vsync = VSyncLayer(pid)
        initial = self.membership.current_view
        self.vsync.enter_view(initial.view_id, initial.members)
        self._events: List[GCSEvent] = []
        self._outgoing: List[Tuple[ProcessId, Any]] = []
        self._event_sink = event_sink

    # ------------------------------------------------------------------
    # Application API.
    # ------------------------------------------------------------------

    def multicast(self, payload: Any) -> None:
        """Send a payload to every member of the current view."""
        self._outgoing.extend(self.vsync.multicast(payload))

    def poll_events(self) -> List[GCSEvent]:
        """Drain the pending view/delivery events, oldest first."""
        events, self._events = self._events, []
        return events

    @property
    def view_members(self) -> Members:
        return self.membership.view_members

    # ------------------------------------------------------------------
    # Runtime hooks.
    # ------------------------------------------------------------------

    def tick(self, reachable: Members) -> None:
        """Advance the failure detector / membership machinery."""
        before = self.membership.current_view
        self._outgoing.extend(self.membership.observe_reachable(reachable))
        self._note_view_change(before)

    def on_datagram(self, src: ProcessId, payload: Any) -> None:
        """Route one incoming datagram to membership or view synchrony."""
        if isinstance(payload, (Propose, Ack, Install, Nudge)):
            before = self.membership.current_view
            self._outgoing.extend(self.membership.handle(src, payload))
            self._note_view_change(before)
        elif isinstance(payload, ViewMessage):
            for sender, delivered in self.vsync.receive(payload):
                self._emit(Delivered(sender=sender, payload=delivered))
        else:
            raise SimulationError(
                f"stack received unknown payload {type(payload).__name__}"
            )

    def drain_outgoing(self) -> List[Tuple[ProcessId, Any]]:
        """Hand the queued (dst, payload) unicasts to the network layer."""
        outgoing, self._outgoing = self._outgoing, []
        return outgoing

    def _emit(self, event: GCSEvent) -> None:
        """Queue one event and mirror it to the attached sink, if any."""
        self._events.append(event)
        if self._event_sink is not None:
            self._event_sink(self.pid, event)

    def _note_view_change(self, before: AgreedView) -> None:
        current = self.membership.current_view
        if current.view_id == before.view_id:
            return
        buffered = self.vsync.enter_view(current.view_id, current.members)
        self._emit(
            ViewInstalled(
                view_id=current.view_id,
                members=current.members,
                seq=self.membership.view_seq(),
            )
        )
        for sender, payload in buffered:
            self._emit(Delivered(sender=sender, payload=payload))


class GCSCluster:
    """Lock-step simulation of a whole group communication system.

    ``observers`` takes any :class:`repro.obs.Subscriber` instances;
    the cluster publishes ``on_gcs_event(cluster, pid, event)`` the
    moment any stack raises a view installation or delivery, and
    ``on_gcs_tick(cluster)`` after each completed tick.

    ``transport`` is the single packet-backend attachment point: pass
    ``None`` (in-memory default), a backend name (``"memory"``,
    ``"udp"``, ``"tcp"``) or a constructed
    :class:`~repro.gcs.transport.Transport` — e.g. a
    ``MemoryTransport(link=LinkFaults(...))`` to inject wire faults.
    The legacy ``.network`` attribute remains readable as a deprecated
    alias of ``.transport``.
    """

    def __init__(
        self,
        n_processes: int,
        observers: Iterable[Subscriber] = (),
        *,
        transport: "Optional[Transport | str]" = None,
    ) -> None:
        if n_processes < 2:
            raise SimulationError("a group needs at least two processes")
        universe = frozenset(range(n_processes))
        self.topology = Topology.fully_connected(n_processes)
        self.transport = resolve_transport(transport)
        self.transport.bind(universe, universe)
        self.transport.set_topology(self.topology)
        self.bus = EventBus(observers)
        self._tick_hooks = self.bus.hooks("on_gcs_tick")
        event_hooks = self.bus.hooks("on_gcs_event")
        sink = None
        if event_hooks:
            def sink(pid: ProcessId, event: GCSEvent) -> None:
                for hook in event_hooks:
                    hook(self, pid, event)
        self.stacks: Dict[ProcessId, GCStack] = {
            pid: GCStack(pid, universe, event_sink=sink)
            for pid in sorted(universe)
        }
        self.ticks = 0

    @property
    def network(self) -> Transport:
        """Deprecated alias of :attr:`transport` (the pre-seam name)."""
        warnings.warn(
            "GCSCluster.network is deprecated; use GCSCluster.transport",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.transport

    # ------------------------------------------------------------------
    # Topology control.
    # ------------------------------------------------------------------

    def set_topology(self, topology: Topology) -> None:
        """Reshape the network; failure detectors notice next tick."""
        self.topology = topology
        self.transport.set_topology(topology)

    def reachable(self, pid: ProcessId) -> Members:
        """The oracle reachable set fed to one process's detector."""
        if self.topology.is_crashed(pid):
            return frozenset({pid})
        return self.topology.component_of(pid)

    # ------------------------------------------------------------------
    # The tick loop.
    # ------------------------------------------------------------------

    def tick(self) -> bool:
        """One lock-step tick; returns True when any traffic moved."""
        self.ticks += 1
        # 1. Deliver whatever the transport has matured.
        deliveries = self.transport.deliver_tick()
        for datagram in deliveries:
            if self.topology.is_crashed(datagram.dst):
                continue
            self.stacks[datagram.dst].on_datagram(
                datagram.src, datagram.payload
            )
        # 2. Advance failure detectors / membership.
        for pid in sorted(self.stacks):
            if not self.topology.is_crashed(pid):
                self.stacks[pid].tick(self.reachable(pid))
        # 3. Flush everything the stacks produced into the transport.
        moved = bool(deliveries)
        for pid in sorted(self.stacks):
            for dst, payload in self.stacks[pid].drain_outgoing():
                self.transport.send(pid, dst, payload)
                moved = True
        for hook in self._tick_hooks:
            hook(self)
        return moved

    def run_until_stable(self, max_ticks: int = 200) -> int:
        """Tick until the system is quiet; returns ticks used.

        A tick is *quiet* when it moved no traffic **and** the
        transport holds nothing in flight — backends may defer delivery
        across ticks (injected delay, sockets, retransmission), and a
        packet still pending means the silence is not stability.
        Realtime backends additionally require several consecutive
        quiet ticks (their traffic moves on the wall clock, not the
        tick clock) with a short blocking wait between them.
        """
        quiet_needed = self.transport.quiet_ticks_for_stability
        quiet = 0
        for elapsed in range(max_ticks):
            if self.tick() or self.transport.pending() > 0:
                quiet = 0
            else:
                quiet += 1
                if quiet >= quiet_needed:
                    return elapsed + 1
            if self.transport.realtime:
                self.transport.idle_wait()
        raise SimulationError(
            f"group communication did not stabilize in {max_ticks} ticks"
        )

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------

    def views_agree_with_topology(self) -> bool:
        """Does every live process's view equal its component?"""
        return all(
            self.stacks[pid].view_members == self.reachable(pid)
            for pid in self.stacks
            if not self.topology.is_crashed(pid)
        )

    def common_views(self) -> Dict[ViewId, Members]:
        """The distinct views currently installed across the cluster."""
        views: Dict[ViewId, Members] = {}
        for stack in self.stacks.values():
            view = stack.membership.current_view
            views[view.view_id] = view.members
        return views

    def close(self) -> None:
        """Release the transport (sockets/threads of network backends)."""
        self.transport.close()
