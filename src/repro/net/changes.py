"""Connectivity changes and their random generation (thesis §2.2).

"A connectivity change is either a network partition, where processes
in one network component are divided into two smaller components, or a
merge, where two components are unified to produce one.  The driver
loop has an equal likelihood of generating either of these changes
[when feasible].  Partitions do not necessarily happen evenly — the
percentage of processes which are moved to the new component is
determined at random each time."

Changes are plain data; :func:`apply_change` executes them against a
topology, and :class:`UniformChangeGenerator` draws them with the
thesis' distribution.  :class:`CrashRecoveryChangeGenerator` adds the
§5.1 extension fault model.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Union

from repro.errors import TopologyError
from repro.net.topology import Component, Topology
from repro.types import Members, ProcessId, sorted_members


@dataclass(frozen=True)
class PartitionChange:
    """Split ``component``, moving ``moved`` into a new component."""

    component: Component
    moved: Members

    def describe(self) -> str:
        """Short label for traces, e.g. ``partition(moved={2,3})``."""
        moved = ",".join(str(p) for p in sorted_members(self.moved))
        return f"partition(moved={{{moved}}})"


@dataclass(frozen=True)
class MergeChange:
    """Unify ``first`` and ``second``."""

    first: Component
    second: Component

    def describe(self) -> str:
        """Short label for traces."""
        return "merge"


@dataclass(frozen=True)
class CrashChange:
    """Extension (§5.1): process ``pid`` crashes."""

    pid: ProcessId

    def describe(self) -> str:
        """Short label for traces."""
        return f"crash({self.pid})"


@dataclass(frozen=True)
class RecoverChange:
    """Extension (§5.1): crashed process ``pid`` comes back, isolated."""

    pid: ProcessId

    def describe(self) -> str:
        """Short label for traces."""
        return f"recover({self.pid})"


ConnectivityChange = Union[PartitionChange, MergeChange, CrashChange, RecoverChange]


def apply_change(topology: Topology, change: ConnectivityChange) -> Topology:
    """Execute a change, returning the new topology."""
    if isinstance(change, PartitionChange):
        return topology.partition(change.component, change.moved)
    if isinstance(change, MergeChange):
        return topology.merge(change.first, change.second)
    if isinstance(change, CrashChange):
        return topology.crash(change.pid)
    if isinstance(change, RecoverChange):
        return topology.recover(change.pid)
    raise TypeError(f"unknown change type {type(change).__name__}")


def affected_processes(change: ConnectivityChange, topology: Topology) -> Members:
    """The processes whose connectivity the change disturbs.

    These are the processes that will receive a new view (and that may
    lose the current round's in-flight messages); everyone else
    proceeds undisturbed.
    """
    if isinstance(change, PartitionChange):
        return frozenset(change.component)
    if isinstance(change, MergeChange):
        return frozenset(change.first | change.second)
    if isinstance(change, CrashChange):
        return frozenset(topology.component_of(change.pid))
    if isinstance(change, RecoverChange):
        return frozenset({change.pid})
    raise TypeError(f"unknown change type {type(change).__name__}")


class UniformChangeGenerator:
    """The thesis' change distribution: partition/merge with equal odds."""

    def propose(self, topology: Topology, rng: random.Random) -> Optional[ConnectivityChange]:
        """Draw a feasible change, or None when the topology allows none.

        (A single live process allows neither a partition nor a merge.)
        """
        kinds: List[str] = []
        if topology.splittable_components():
            kinds.append("partition")
        if topology.mergeable_pairs_exist():
            kinds.append("merge")
        if not kinds:
            return None
        kind = rng.choice(kinds)
        if kind == "partition":
            return self._propose_partition(topology, rng)
        return self._propose_merge(topology, rng)

    @staticmethod
    def _propose_partition(topology: Topology, rng: random.Random) -> PartitionChange:
        component = rng.choice(topology.splittable_components())
        ordered = sorted(component)
        # "The percentage of processes which are moved to the new
        # component is determined at random each time."
        moved_count = rng.randint(1, len(ordered) - 1)
        moved = frozenset(rng.sample(ordered, moved_count))
        return PartitionChange(component=component, moved=moved)

    @staticmethod
    def _propose_merge(topology: Topology, rng: random.Random) -> MergeChange:
        live = topology.live_components()
        first, second = rng.sample(live, 2)
        return MergeChange(first=first, second=second)


class SkewedPartitionGenerator(UniformChangeGenerator):
    """§2.2 variation: control the *shape* of partitions.

    The thesis moves a uniformly random fraction; real networks often
    fail differently — a router drop severs one host ("singleton"), a
    backbone cut splits sites evenly ("even").  The availability study's
    sensitivity to this modelling choice is quantified by the
    ``abl_partition_shape`` experiment.
    """

    STYLES = ("uniform", "even", "singleton")

    def __init__(self, style: str = "uniform") -> None:
        if style not in self.STYLES:
            raise ValueError(
                f"unknown partition style {style!r}; known: {self.STYLES}"
            )
        self.style = style

    def _propose_partition(self, topology: Topology, rng: random.Random) -> PartitionChange:
        if self.style == "uniform":
            return UniformChangeGenerator._propose_partition(topology, rng)
        component = rng.choice(topology.splittable_components())
        ordered = sorted(component)
        if self.style == "singleton":
            moved_count = 1
        else:  # even
            moved_count = len(ordered) // 2
        moved = frozenset(rng.sample(ordered, moved_count))
        return PartitionChange(component=component, moved=moved)


class CrashRecoveryChangeGenerator(UniformChangeGenerator):
    """Extension fault model: partitions, merges, crashes and recoveries.

    With probability ``crash_weight`` a change is drawn from the
    crash/recovery family (crash and recovery equally likely when both
    are feasible); otherwise the thesis' partition/merge family is
    used.  ``max_crashed`` bounds how many processes may be down at
    once, so the system is never wiped out entirely.
    """

    def __init__(self, crash_weight: float = 0.25, max_crashed: Optional[int] = None):
        if not 0.0 <= crash_weight <= 1.0:
            raise ValueError("crash_weight must be in [0, 1]")
        self.crash_weight = crash_weight
        self.max_crashed = max_crashed

    def propose(self, topology: Topology, rng: random.Random) -> Optional[ConnectivityChange]:
        limit = (
            self.max_crashed
            if self.max_crashed is not None
            else max(len(topology.universe) // 2 - 1, 0)
        )
        kinds: List[str] = []
        if topology.crashable_processes() and len(topology.crashed) < limit:
            kinds.append("crash")
        if topology.recoverable_processes():
            kinds.append("recover")
        if kinds and rng.random() < self.crash_weight:
            kind = rng.choice(kinds)
            if kind == "crash":
                return CrashChange(pid=rng.choice(topology.crashable_processes()))
            return RecoverChange(pid=rng.choice(topology.recoverable_processes()))
        return super().propose(topology, rng)
