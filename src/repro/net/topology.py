"""Network component topology (thesis §2.2).

The simulated "network" is nothing but a partition of the process set
into disjoint *components*: processes in the same component deliver
each other's broadcasts, processes in different components are mutually
unreachable.  A connectivity change either splits one component in two
(a network partition) or unifies two components (a merge).

The extension fault model (thesis §5.1) adds crashed processes: a
crashed process sits in a singleton component and does not participate
until it recovers.

``Topology`` is immutable; every change produces a new value.  This
keeps fault plans replayable and lets tests snapshot histories cheaply.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Tuple

from repro.errors import TopologyError
from repro.types import Members, ProcessId, sorted_members

Component = Members


def _normalize_components(components: Iterable[Iterable[ProcessId]]) -> Tuple[Component, ...]:
    normalized = tuple(
        sorted((frozenset(c) for c in components), key=sorted_members)
    )
    return normalized


@dataclass(frozen=True)
class Topology:
    """A partition of the process universe into connected components."""

    components: Tuple[Component, ...]
    crashed: FrozenSet[ProcessId] = frozenset()

    def __post_init__(self) -> None:
        components = _normalize_components(self.components)
        object.__setattr__(self, "components", components)
        object.__setattr__(self, "crashed", frozenset(self.crashed))
        seen: set = set()
        for component in components:
            if not component:
                raise TopologyError("components must be non-empty")
            overlap = seen & component
            if overlap:
                raise TopologyError(
                    f"processes {sorted(overlap)} appear in multiple components"
                )
            seen |= component
        for pid in self.crashed:
            if pid not in seen:
                raise TopologyError(f"crashed process {pid} is not in the topology")
            if self.component_of(pid) != frozenset({pid}):
                raise TopologyError(
                    f"crashed process {pid} must sit in a singleton component"
                )

    # ------------------------------------------------------------------
    # Construction.
    # ------------------------------------------------------------------

    @classmethod
    def fully_connected(cls, n_processes: int) -> "Topology":
        """All processes in one component — how every simulation begins."""
        if n_processes < 1:
            raise TopologyError("need at least one process")
        return cls(components=(frozenset(range(n_processes)),))

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------

    @property
    def universe(self) -> Members:
        return frozenset().union(*self.components)

    def component_of(self, pid: ProcessId) -> Component:
        """The component containing ``pid``."""
        for component in self.components:
            if pid in component:
                return component
        raise TopologyError(f"process {pid} is not in the topology")

    def active_processes(self) -> Members:
        """Processes that participate in rounds (i.e. are not crashed)."""
        return self.universe - self.crashed

    def is_crashed(self, pid: ProcessId) -> bool:
        """Whether the process is currently down."""
        return pid in self.crashed

    def splittable_components(self) -> List[Component]:
        """Components a partition change can act on (≥ 2 live members)."""
        return [
            component
            for component in self.components
            if len(component) >= 2
        ]

    def mergeable_pairs_exist(self) -> bool:
        """A merge needs two components of non-crashed processes."""
        live = [c for c in self.components if not (c & self.crashed)]
        return len(live) >= 2

    def live_components(self) -> List[Component]:
        """Components containing no crashed process."""
        return [c for c in self.components if not (c & self.crashed)]

    def crashable_processes(self) -> List[ProcessId]:
        """Processes a crash change can act on (alive right now)."""
        return sorted(self.universe - self.crashed)

    def recoverable_processes(self) -> List[ProcessId]:
        """Processes a recovery change can act on (currently down)."""
        return sorted(self.crashed)

    # ------------------------------------------------------------------
    # Transformations — each returns a new Topology.
    # ------------------------------------------------------------------

    def partition(self, component: Component, moved: Members) -> "Topology":
        """Split ``component`` by moving ``moved`` into a new component."""
        component = frozenset(component)
        moved = frozenset(moved)
        if component not in self.components:
            raise TopologyError(f"{sorted(component)} is not a current component")
        if not moved or moved == component:
            raise TopologyError("a partition must move a proper non-empty subset")
        if not moved <= component:
            raise TopologyError(
                f"moved processes {sorted(moved - component)} are not in the component"
            )
        remaining = component - moved
        new_components = [c for c in self.components if c != component]
        new_components.extend([remaining, moved])
        return Topology(components=tuple(new_components), crashed=self.crashed)

    def merge(self, first: Component, second: Component) -> "Topology":
        """Unify two distinct components into one."""
        first = frozenset(first)
        second = frozenset(second)
        if first == second:
            raise TopologyError("cannot merge a component with itself")
        for component in (first, second):
            if component not in self.components:
                raise TopologyError(f"{sorted(component)} is not a current component")
            if component & self.crashed:
                raise TopologyError(
                    f"component {sorted(component)} contains crashed processes"
                )
        new_components = [c for c in self.components if c not in (first, second)]
        new_components.append(first | second)
        return Topology(components=tuple(new_components), crashed=self.crashed)

    def crash(self, pid: ProcessId) -> "Topology":
        """Crash a process: isolate it and mark it non-participating."""
        if pid in self.crashed:
            raise TopologyError(f"process {pid} is already crashed")
        component = self.component_of(pid)
        topology = self
        if len(component) > 1:
            topology = topology.partition(component, frozenset({pid}))
        return Topology(
            components=topology.components, crashed=self.crashed | {pid}
        )

    def recover(self, pid: ProcessId) -> "Topology":
        """Recover a crashed process; it stays isolated until a merge."""
        if pid not in self.crashed:
            raise TopologyError(f"process {pid} is not crashed")
        return Topology(components=self.components, crashed=self.crashed - {pid})

    def describe(self) -> str:
        """Compact rendering, e.g. ``{0,1} {2,3,4}``."""
        parts = []
        for component in self.components:
            inner = ",".join(str(p) for p in sorted_members(component))
            flag = "✗" if component & self.crashed else ""
            parts.append(f"{{{inner}}}{flag}")
        return " ".join(parts)
