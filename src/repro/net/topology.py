"""Network component topology (thesis §2.2).

The simulated "network" is nothing but a partition of the process set
into disjoint *components*: processes in the same component deliver
each other's broadcasts, processes in different components are mutually
unreachable.  A connectivity change either splits one component in two
(a network partition) or unifies two components (a merge).

The extension fault model (thesis §5.1) adds crashed processes: a
crashed process sits in a singleton component and does not participate
until it recovers.

``Topology`` is immutable; every change produces a new value.  This
keeps fault plans replayable and lets tests snapshot histories cheaply.
Immutability is also what makes the hot-path caches below sound: the
pid→component map, the universe and the active set are each computed at
most once per value and memoized on the instance (memoized attributes
live in ``__dict__`` outside the declared fields, so equality and
hashing are untouched).

Construction validates the partition invariants.  The transformation
methods (:meth:`partition`, :meth:`merge`, :meth:`crash`,
:meth:`recover`) perform their own targeted precondition checks and
then build the result via the private trusted constructor, skipping the
full revalidation — a transformation of a valid topology cannot
introduce overlap or empty components, and the property tests in
``tests/test_topology_fastpath.py`` hold the fast path to the validated
constructor's behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Tuple

from repro.errors import TopologyError
from repro.types import Members, ProcessId, sorted_members

Component = Members


def _normalize_components(components: Iterable[Iterable[ProcessId]]) -> Tuple[Component, ...]:
    normalized = tuple(
        sorted((frozenset(c) for c in components), key=sorted_members)
    )
    return normalized


@dataclass(frozen=True)
class Topology:
    """A partition of the process universe into connected components."""

    components: Tuple[Component, ...]
    crashed: FrozenSet[ProcessId] = frozenset()

    def __post_init__(self) -> None:
        components = _normalize_components(self.components)
        object.__setattr__(self, "components", components)
        object.__setattr__(self, "crashed", frozenset(self.crashed))
        seen: set = set()
        for component in components:
            if not component:
                raise TopologyError("components must be non-empty")
            overlap = seen & component
            if overlap:
                raise TopologyError(
                    f"processes {sorted(overlap)} appear in multiple components"
                )
            seen |= component
        for pid in self.crashed:
            if pid not in seen:
                raise TopologyError(f"crashed process {pid} is not in the topology")
            if self.component_of(pid) != frozenset({pid}):
                raise TopologyError(
                    f"crashed process {pid} must sit in a singleton component"
                )

    # ------------------------------------------------------------------
    # Construction.
    # ------------------------------------------------------------------

    @classmethod
    def fully_connected(cls, n_processes: int) -> "Topology":
        """All processes in one component — how every simulation begins."""
        if n_processes < 1:
            raise TopologyError("need at least one process")
        return cls(components=(frozenset(range(n_processes)),))

    @classmethod
    def _from_trusted(
        cls,
        components: Iterable[Component],
        crashed: FrozenSet[ProcessId],
    ) -> "Topology":
        """Build from components already known to satisfy the invariants.

        Internal fast path for the transformation methods: the inputs
        are frozensets derived from an already-validated topology, so
        only normalization (the canonical component order) runs —
        ``__post_init__``'s overlap and crash-singleton scans are
        skipped.  Never call this with untrusted data.
        """
        topology = object.__new__(cls)
        object.__setattr__(topology, "components", _normalize_components(components))
        object.__setattr__(topology, "crashed", crashed)
        return topology

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------

    @property
    def universe(self) -> Members:
        cached = self.__dict__.get("_universe")
        if cached is None:
            cached = frozenset().union(*self.components)
            object.__setattr__(self, "_universe", cached)
        return cached

    @property
    def _component_map(self) -> Dict[ProcessId, Component]:
        cached = self.__dict__.get("_component_map_cache")
        if cached is None:
            cached = {}
            for component in self.components:
                for pid in component:
                    cached[pid] = component
            object.__setattr__(self, "_component_map_cache", cached)
        return cached

    def component_of(self, pid: ProcessId) -> Component:
        """The component containing ``pid``."""
        try:
            return self._component_map[pid]
        except KeyError:
            raise TopologyError(f"process {pid} is not in the topology") from None

    def active_processes(self) -> Members:
        """Processes that participate in rounds (i.e. are not crashed)."""
        cached = self.__dict__.get("_active")
        if cached is None:
            cached = self.universe - self.crashed
            object.__setattr__(self, "_active", cached)
        return cached

    def is_crashed(self, pid: ProcessId) -> bool:
        """Whether the process is currently down."""
        return pid in self.crashed

    def splittable_components(self) -> List[Component]:
        """Components a partition change can act on (≥ 2 live members)."""
        return [
            component
            for component in self.components
            if len(component) >= 2
        ]

    def mergeable_pairs_exist(self) -> bool:
        """A merge needs two components of non-crashed processes."""
        live = [c for c in self.components if not (c & self.crashed)]
        return len(live) >= 2

    def live_components(self) -> List[Component]:
        """Components containing no crashed process."""
        return [c for c in self.components if not (c & self.crashed)]

    def crashable_processes(self) -> List[ProcessId]:
        """Processes a crash change can act on (alive right now)."""
        return sorted(self.universe - self.crashed)

    def recoverable_processes(self) -> List[ProcessId]:
        """Processes a recovery change can act on (currently down)."""
        return sorted(self.crashed)

    # ------------------------------------------------------------------
    # Transformations — each returns a new Topology.
    # ------------------------------------------------------------------

    def partition(self, component: Component, moved: Members) -> "Topology":
        """Split ``component`` by moving ``moved`` into a new component."""
        component = frozenset(component)
        moved = frozenset(moved)
        if component not in self.components:
            raise TopologyError(f"{sorted(component)} is not a current component")
        if not moved or moved == component:
            raise TopologyError("a partition must move a proper non-empty subset")
        if not moved <= component:
            raise TopologyError(
                f"moved processes {sorted(moved - component)} are not in the component"
            )
        remaining = component - moved
        new_components = [c for c in self.components if c != component]
        new_components.extend([remaining, moved])
        return Topology._from_trusted(new_components, self.crashed)

    def merge(self, first: Component, second: Component) -> "Topology":
        """Unify two distinct components into one."""
        first = frozenset(first)
        second = frozenset(second)
        if first == second:
            raise TopologyError("cannot merge a component with itself")
        for component in (first, second):
            if component not in self.components:
                raise TopologyError(f"{sorted(component)} is not a current component")
            if component & self.crashed:
                raise TopologyError(
                    f"component {sorted(component)} contains crashed processes"
                )
        new_components = [c for c in self.components if c not in (first, second)]
        new_components.append(first | second)
        return Topology._from_trusted(new_components, self.crashed)

    def crash(self, pid: ProcessId) -> "Topology":
        """Crash a process: isolate it and mark it non-participating."""
        if pid in self.crashed:
            raise TopologyError(f"process {pid} is already crashed")
        component = self.component_of(pid)
        topology = self
        if len(component) > 1:
            topology = topology.partition(component, frozenset({pid}))
        return Topology._from_trusted(topology.components, self.crashed | {pid})

    def recover(self, pid: ProcessId) -> "Topology":
        """Recover a crashed process; it stays isolated until a merge."""
        if pid not in self.crashed:
            raise TopologyError(f"process {pid} is not crashed")
        return Topology._from_trusted(self.components, self.crashed - {pid})

    def describe(self) -> str:
        """Compact rendering, e.g. ``{0,1} {2,3,4}``."""
        parts = []
        for component in self.components:
            inner = ",".join(str(p) for p in sorted_members(component))
            flag = "✗" if component & self.crashed else ""
            parts.append(f"{{{inner}}}{flag}")
        return " ".join(parts)
