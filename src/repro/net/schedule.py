"""Fault schedules: when connectivity changes fire (thesis §2.2, §5.1).

The thesis specifies change frequency "as the mean number of message
rounds which are successfully executed between two subsequent
connectivity changes", realized with a per-round uniform probability p:
that is a geometric gap distribution with ``p = 1 / (1 + mean)`` (the
expected number of change-free rounds between changes is then exactly
``mean``; ``mean = 0`` fires a change every round — the extreme left of
the availability figures).

§5.1 invites other probability functions, so the schedule is an
abstraction: deterministic gaps and bursty gaps are provided alongside
the thesis' geometric schedule.

A schedule draws *gaps* — whole runs of change-free rounds — rather
than a per-round coin.  Drawing gaps up front lets a fault plan be
fixed per run and replayed identically under every algorithm, matching
the thesis' "the same random sequence was used to test each of the
algorithms".
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import List

from repro.errors import ScheduleError


class ChangeSchedule(ABC):
    """Distribution of the number of quiet rounds between changes."""

    @abstractmethod
    def draw_gap(self, rng: random.Random) -> int:
        """Number of change-free rounds before the next change fires."""

    def draw_gaps(self, rng: random.Random, count: int) -> List[int]:
        """Draw a whole run's gaps up front (replayable fault plans)."""
        if count < 0:
            raise ScheduleError("cannot draw a negative number of gaps")
        return [self.draw_gap(rng) for _ in range(count)]

    @abstractmethod
    def mean_gap(self) -> float:
        """Expected quiet rounds between changes (the figures' x-axis)."""


class GeometricSchedule(ChangeSchedule):
    """The thesis' uniform-probability schedule.

    A change fires at each round with probability ``p = 1/(1 + mean)``,
    independently; equivalently, gaps are geometric with that success
    probability and expectation ``mean``.
    """

    def __init__(self, mean_rounds_between_changes: float) -> None:
        if mean_rounds_between_changes < 0:
            raise ScheduleError("mean rounds between changes must be >= 0")
        self.mean = float(mean_rounds_between_changes)
        self.probability = 1.0 / (1.0 + self.mean)

    def draw_gap(self, rng: random.Random) -> int:
        gap = 0
        while rng.random() >= self.probability:
            gap += 1
        return gap

    def mean_gap(self) -> float:
        return self.mean

    def __repr__(self) -> str:
        return f"GeometricSchedule(mean={self.mean})"


class DeterministicSchedule(ChangeSchedule):
    """Fixed gaps: a change exactly every ``gap`` quiet rounds (§5.1)."""

    def __init__(self, gap: int) -> None:
        if gap < 0:
            raise ScheduleError("gap must be >= 0")
        self.gap = int(gap)

    def draw_gap(self, rng: random.Random) -> int:
        return self.gap

    def mean_gap(self) -> float:
        return float(self.gap)

    def __repr__(self) -> str:
        return f"DeterministicSchedule(gap={self.gap})"


class BurstSchedule(ChangeSchedule):
    """Clustered changes: tight bursts separated by long lulls (§5.1).

    Within a burst, changes fire on consecutive rounds (gap 0); between
    bursts the network is quiet for ``lull`` rounds.  This sharpens the
    thesis' "closely clustered changes ... then the network stabilizes"
    scenario into its extreme form.
    """

    def __init__(self, burst_size: int, lull: int) -> None:
        if burst_size < 1:
            raise ScheduleError("burst_size must be >= 1")
        if lull < 0:
            raise ScheduleError("lull must be >= 0")
        self.burst_size = int(burst_size)
        self.lull = int(lull)
        self._position = 0

    def draw_gap(self, rng: random.Random) -> int:
        in_burst = self._position % self.burst_size != 0
        self._position += 1
        return 0 if in_burst else self.lull

    def mean_gap(self) -> float:
        return self.lull / self.burst_size

    def __repr__(self) -> str:
        return f"BurstSchedule(burst_size={self.burst_size}, lull={self.lull})"
