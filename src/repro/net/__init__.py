"""Network substrate: component topology, connectivity changes, schedules."""

from repro.net.changes import (
    ConnectivityChange,
    CrashChange,
    CrashRecoveryChangeGenerator,
    MergeChange,
    PartitionChange,
    RecoverChange,
    UniformChangeGenerator,
    affected_processes,
    apply_change,
)
from repro.net.schedule import (
    BurstSchedule,
    ChangeSchedule,
    DeterministicSchedule,
    GeometricSchedule,
)
from repro.net.topology import Component, Topology

__all__ = [
    "BurstSchedule",
    "ChangeSchedule",
    "Component",
    "ConnectivityChange",
    "CrashChange",
    "CrashRecoveryChangeGenerator",
    "DeterministicSchedule",
    "GeometricSchedule",
    "MergeChange",
    "PartitionChange",
    "RecoverChange",
    "Topology",
    "UniformChangeGenerator",
    "affected_processes",
    "apply_change",
]
