"""Per-fault-class safety oracles.

The thesis' safety obligations were verified under *clean* faults:
view-synchronous partitions, merges, crashes with persistent state, and
recoveries.  Each adversarial fault class changes which obligations the
algorithms can still honour — and the whole point of shipping a fault
class *with its oracle* is to say so precisely, in code:

* **churn** and **persistent crash-recovery** are clean faults in new
  clothing (trace-shaped schedules; the historical crash semantics), so
  the strict oracle applies: *any* violation is a genuine bug.
* **loss** (and Byzantine **drop**, its targeted special case) are
  omission faults.  At-most-one-primary must survive them — a lost
  message can only prevent a formation, never conjure one — so
  ``dual_primary``, ``chain_order_conflict`` and ``chain_broken``
  remain hard failures.  *Agreement* obligations are a different
  matter: the algorithms are event-driven and never retransmit, so a
  lost state item legitimately strands part of a view mid-protocol,
  which the strict checker reports as ``view_disagreement``,
  ``stability_mismatch`` or ``quiescent_disagreement``.  Those kinds
  are expected; anything else is not.
* **amnesiac crash-recovery** violates the algorithms' root persistence
  assumption (thesis §5.1 keeps session state across crashes).  A
  process that forgets having formed a session can vote it into two
  different futures, so every safety kind may break — the oracle's job
  is to confirm the checker *detects* the breakage, not to demand it
  cannot happen.
* **Byzantine alter/equivocate** forge formation evidence; no safety
  obligation survives an adversary the model never admitted.  All
  kinds are expected — ``chain_order_conflict`` is the characteristic
  signature of equivocation — and so is livelock (poisoned evidence can
  leave honest members re-negotiating forever).

Classification is by the structured ``kind`` carried on every
:class:`~repro.errors.InvariantViolation` — never by message parsing —
and a violation is *expected* only when some active fault class expects
that kind.  An expected violation is still a finding (the corpus marks
such repros ``expect: violation``); it is just not a bug in the
algorithms under test.
"""

from __future__ import annotations

from typing import FrozenSet

from repro.faults.model import FaultModel

#: Every structured violation kind the invariant checker can raise.
ALL_KINDS: FrozenSet[str] = frozenset(
    {
        "dual_primary",
        "view_disagreement",
        "chain_order_conflict",
        "chain_broken",
        "stability_mismatch",
        "quiescent_disagreement",
    }
)

#: Agreement-only kinds: breakable by pure omission (lost deliveries
#: strand event-driven members mid-protocol), while the at-most-one-
#: primary family must still hold.
OMISSION_KINDS: FrozenSet[str] = frozenset(
    {
        "view_disagreement",
        "stability_mismatch",
        "quiescent_disagreement",
    }
)


def expected_kinds(model: FaultModel) -> FrozenSet[str]:
    """The violation kinds the active fault classes may legitimately cause.

    The empty set is the strict (clean-fault) oracle.  Classes compose
    by union: a model mixing loss with equivocation is allowed
    everything equivocation alone is allowed.
    """
    kinds: FrozenSet[str] = frozenset()
    if model.link.is_active():
        kinds |= OMISSION_KINDS
    if model.crashrec.is_active():
        kinds |= ALL_KINDS
    if model.byzantine.is_active():
        if model.byzantine.behavior == "drop":
            kinds |= OMISSION_KINDS
        else:
            kinds |= ALL_KINDS
    return kinds


def violation_expected(model: FaultModel, kind: str) -> bool:
    """Whether a violation of ``kind`` is expected under ``model``."""
    return kind in expected_kinds(model)


def livelock_expected(model: FaultModel) -> bool:
    """Whether a quiescence failure is expected under ``model``.

    Forged formation evidence (Byzantine alter/equivocate) can leave
    honest members re-negotiating forever, and an amnesiac recovery can
    resurrect settled sessions; pure omission cannot — an event-driven
    algorithm that loses messages goes *quiet*, not busy.
    """
    if model.byzantine.is_active() and model.byzantine.behavior != "drop":
        return True
    return model.crashrec.is_active()
