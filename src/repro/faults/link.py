"""Pure-hash per-delivery link fault draws.

Every stochastic link decision is a *pure function* of
``(seed, round, link)`` computed through :func:`repro.sim.rng.derive_seed`
— no RNG stream is consumed.  Two properties follow:

* the fault environment is identical for every algorithm replaying the
  same plan (the thesis' "same random sequence" discipline), because
  there is no stream whose alignment could drift with per-algorithm
  behaviour differences;
* replay is bit-exact from the plan alone: a
  :class:`~repro.faults.model.LinkFaults` value plus the round index and
  the directed link fully determine whether a delivery is lost, how long
  it is held, and where it sorts on release.

Draw labels are namespaced under ``"faults.link"`` so link draws can
never collide with the driver's fault-plan streams.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.faults.model import LinkFaults
from repro.sim.rng import derive_seed

_SCALE = 2 ** 64


def _unit(seed: int, *labels) -> float:
    """Uniform [0, 1) draw, pure in (seed, labels)."""
    return derive_seed(seed, "faults.link", *labels) / _SCALE


def _loss_permille(link: LinkFaults, sender: int, recipient: int) -> int:
    for entry_sender, entry_recipient, permille in link.link_loss:
        if entry_sender == sender and entry_recipient == recipient:
            return permille
    return link.loss_permille


def delivery_lost(
    link: LinkFaults, round_index: int, sender: int, recipient: int
) -> bool:
    """Whether this round's ``sender -> recipient`` delivery is lost."""
    permille = _loss_permille(link, sender, recipient)
    if permille <= 0:
        return False
    if permille >= 1000:
        return True
    return _unit(link.seed, "loss", round_index, sender, recipient) * 1000 < permille


def _delay_params(
    link: LinkFaults, sender: int, recipient: int
) -> Tuple[int, int]:
    """Effective ``(delay_permille, delay_max)`` for one directed link."""
    for entry_sender, entry_recipient, permille, delay_max in link.link_delay:
        if entry_sender == sender and entry_recipient == recipient:
            return permille, delay_max
    return link.delay_permille, link.delay_max


def delivery_delay(
    link: LinkFaults, round_index: int, sender: int, recipient: int
) -> int:
    """Rounds this delivery is held back (0 = delivered in-round)."""
    delay_permille, delay_max = _delay_params(link, sender, recipient)
    if delay_permille <= 0 or delay_max <= 0:
        return 0
    if delay_permille < 1000:
        hit = (
            _unit(link.seed, "delay", round_index, sender, recipient) * 1000
            < delay_permille
        )
        if not hit:
            return 0
    if delay_max == 1:
        return 1
    span = _unit(link.seed, "delay.len", round_index, sender, recipient)
    return 1 + int(span * delay_max) % delay_max


def reorder_key(
    link: LinkFaults, round_index: int, recipient: int, sender: int
) -> Tuple[int, int]:
    """Sort key for releasing matured deliveries to ``recipient``.

    Without ``reorder`` the natural (deterministic) order is by sender
    id; with it, a pure-hash shuffle key is prepended so the release
    order is an arbitrary — but replayable — permutation.
    """
    if not link.reorder:
        return (0, sender)
    return (derive_seed(link.seed, "faults.link", "reorder",
                        round_index, recipient, sender) % _SCALE, sender)


def loss_matrix(
    link: LinkFaults, n_processes: int
) -> Dict[Tuple[int, int], int]:
    """Effective per-link loss per-mille for every directed link."""
    out: Dict[Tuple[int, int], int] = {}
    for sender in range(n_processes):
        for recipient in range(n_processes):
            if sender != recipient:
                out[(sender, recipient)] = _loss_permille(link, sender, recipient)
    return out


def delay_matrix(
    link: LinkFaults, n_processes: int
) -> Dict[Tuple[int, int], Tuple[int, int]]:
    """Effective ``(permille, delay_max)`` for every directed link."""
    out: Dict[Tuple[int, int], Tuple[int, int]] = {}
    for sender in range(n_processes):
        for recipient in range(n_processes):
            if sender != recipient:
                out[(sender, recipient)] = _delay_params(link, sender, recipient)
    return out
