"""Composable adversarial fault models (ROADMAP item 4).

The thesis measures availability under *clean* faults: partitions and
merges delivered view-synchronously, with at most a mid-round cut at
the change boundary.  This module widens the fault space along four
independent axes, each a frozen sub-model of one :class:`FaultModel`:

* :class:`LinkFaults` — per-delivery message loss, delivery delay and
  reordering, with optional per-link overrides;
* :class:`CrashRecoveryFaults` — whether a recovering process comes
  back with its algorithm state intact (*persistent*, the engine's
  historical behaviour) or freshly initialized (*amnesiac*);
* :class:`ByzantineFaults` — designated members that drop, alter or
  equivocate their broadcasts at the message boundary;
* :class:`ChurnFaults` — provenance marker for schedules generated
  from mobility-style topology traces (:mod:`repro.faults.churn`); the
  realized trace lives in the plan's steps, so this sub-model never
  changes engine behaviour.

Design rules, enforced by tests:

* **Knobs-off is byte-identical.**  A default-constructed model is
  *clean*: the driver takes the exact pre-fault delivery path and a
  plan carrying it serializes to the exact pre-fault JSON (the field
  is normalized away).
* **All probabilities are integer per-mille.**  Integer knobs make
  canonical JSON exact and give the delta-debugging shrinker a strict
  cost order.
* **All randomness is labelled.**  Stochastic draws are pure functions
  of ``(seed, round, link)`` (:mod:`repro.faults.link`), so the fault
  environment is identical for every algorithm replaying a plan —
  the thesis' "same random sequence" discipline extended to loss.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Tuple

from repro.errors import ReproError

#: Behaviours a Byzantine member may exhibit (JimmyOei-style knobs).
BYZANTINE_BEHAVIORS = ("drop", "alter", "equivocate")

#: Crash-recovery persistence modes.
PERSISTENT = "persistent"
AMNESIAC = "amnesiac"

#: The four adversarial fault classes, as the CLI and CI name them.
FAULT_CLASSES = ("loss", "crashrec", "byzantine", "churn")

#: Shrink-cost weight of each Byzantine behaviour (milder is cheaper,
#: so the minimizer prefers demoting equivocate -> alter -> drop when
#: the finding survives).
_BEHAVIOR_WEIGHT = {"drop": 1, "alter": 2, "equivocate": 3}


class FaultModelError(ReproError):
    """A fault model was configured with impossible parameters."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise FaultModelError(message)


def _permille(value: Any, name: str) -> int:
    value = int(value)
    _require(0 <= value <= 1000, f"{name} must be in [0, 1000] per-mille")
    return value


@dataclass(frozen=True)
class LinkFaults:
    """Per-delivery loss, delay and reordering (fault class ``loss``).

    Each non-self delivery of a round is independently lost with
    probability ``loss_permille``/1000 (overridable per directed link
    via ``link_loss``), and each surviving delivery is independently
    held back for 1..``delay_max`` rounds with probability
    ``delay_permille``/1000 (both delay knobs overridable per directed
    link via ``link_delay``).  Held deliveries mature after their
    delay; with ``reorder`` they are released in a deterministically
    shuffled order instead of FIFO.  All draws are pure functions of
    ``(seed, round, sender, recipient)`` — see :mod:`repro.faults.link`.
    """

    loss_permille: int = 0
    #: Directed-link overrides: ((sender, recipient, permille), ...).
    link_loss: Tuple[Tuple[int, int, int], ...] = ()
    delay_permille: int = 0
    delay_max: int = 0
    #: Directed-link delay overrides:
    #: ((sender, recipient, permille, delay_max), ...) — both knobs
    #: replaced together for that link, so a single link can be slowed
    #: (or exempted) without touching the global delay environment.
    link_delay: Tuple[Tuple[int, int, int, int], ...] = ()
    reorder: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "loss_permille", _permille(self.loss_permille, "loss_permille")
        )
        object.__setattr__(
            self, "delay_permille", _permille(self.delay_permille, "delay_permille")
        )
        _require(int(self.delay_max) >= 0, "delay_max must be >= 0")
        object.__setattr__(self, "delay_max", int(self.delay_max))
        object.__setattr__(self, "seed", int(self.seed))
        normalized = []
        seen = set()
        for entry in self.link_loss:
            sender, recipient, permille = entry
            sender, recipient = int(sender), int(recipient)
            _require(
                sender != recipient, "link_loss entries must name distinct ends"
            )
            _require(
                (sender, recipient) not in seen,
                f"duplicate link_loss entry for link {sender}->{recipient}",
            )
            seen.add((sender, recipient))
            normalized.append(
                (sender, recipient, _permille(permille, "link_loss"))
            )
        object.__setattr__(self, "link_loss", tuple(sorted(normalized)))
        delays = []
        seen_delay = set()
        for entry in self.link_delay:
            sender, recipient, permille, delay_max = entry
            sender, recipient = int(sender), int(recipient)
            _require(
                sender != recipient, "link_delay entries must name distinct ends"
            )
            _require(
                (sender, recipient) not in seen_delay,
                f"duplicate link_delay entry for link {sender}->{recipient}",
            )
            seen_delay.add((sender, recipient))
            _require(int(delay_max) >= 0, "link_delay delay_max must be >= 0")
            delays.append(
                (
                    sender,
                    recipient,
                    _permille(permille, "link_delay"),
                    int(delay_max),
                )
            )
        object.__setattr__(self, "link_delay", tuple(sorted(delays)))

    def is_active(self) -> bool:
        """Whether this sub-model changes delivery behaviour at all."""
        return bool(
            self.loss_permille
            or any(permille for _, _, permille in self.link_loss)
            or (self.delay_permille and self.delay_max)
            or any(
                permille and delay_max
                for _, _, permille, delay_max in self.link_delay
            )
            or self.reorder
        )

    def cost_detail(self) -> int:
        """Shrink-cost contribution (strictly decreases as knobs relax)."""
        return (
            self.loss_permille
            + self.delay_permille
            + self.delay_max
            + sum(1 + permille for _, _, permille in self.link_loss)
            + sum(
                1 + permille + delay_max
                for _, _, permille, delay_max in self.link_delay
            )
            + (1 if self.reorder else 0)
        )


@dataclass(frozen=True)
class CrashRecoveryFaults:
    """Session-state persistence across crashes (fault class ``crashrec``).

    ``persistent`` (the default) is the engine's historical semantics:
    a recovering process resumes with the exact algorithm state it
    crashed with.  ``amnesiac`` re-initializes the algorithm from the
    initial view before the recovery view is installed — the process
    kept its static configuration but lost every session it ever
    formed, which is precisely the state the dynamic voting algorithms
    must persist to stay safe.
    """

    persistence: str = PERSISTENT

    def __post_init__(self) -> None:
        _require(
            self.persistence in (PERSISTENT, AMNESIAC),
            f"unknown persistence mode {self.persistence!r}",
        )

    @property
    def amnesiac(self) -> bool:
        return self.persistence == AMNESIAC

    def is_active(self) -> bool:
        """Whether this sub-model changes recovery behaviour at all."""
        return self.amnesiac

    def cost_detail(self) -> int:
        """Shrink-cost contribution (strictly decreases as knobs relax)."""
        return 1 if self.amnesiac else 0


@dataclass(frozen=True)
class ByzantineFaults:
    """Designated faulty members (fault class ``byzantine``).

    Each broadcast of a Byzantine member is attacked with probability
    ``activity_permille``/1000 (a pure-hash draw per (seed, round,
    sender)); an attacked broadcast is, per ``behavior``:

    * ``drop`` — silently withheld from every other member (the
      receive side of a mute fault; an omission, so safety must hold);
    * ``alter`` — its state-exchange items are rewritten to carry
      forged formation evidence, the same forgery to every recipient;
    * ``equivocate`` — as ``alter``, but different recipients receive
      *different* forged member sets for the same session number.

    Mutations happen at the message boundary (:mod:`repro.faults.byzantine`)
    and never touch the faulty member's own state: the algorithm under
    test is correct code fed adversarial messages.
    """

    members: Tuple[int, ...] = ()
    behavior: str = "drop"
    activity_permille: int = 1000
    seed: int = 0

    def __post_init__(self) -> None:
        members = tuple(sorted({int(pid) for pid in self.members}))
        _require(
            all(pid >= 0 for pid in members),
            "byzantine members must be non-negative process ids",
        )
        object.__setattr__(self, "members", members)
        _require(
            self.behavior in BYZANTINE_BEHAVIORS,
            f"unknown byzantine behavior {self.behavior!r}; "
            f"known: {BYZANTINE_BEHAVIORS}",
        )
        object.__setattr__(
            self,
            "activity_permille",
            _permille(self.activity_permille, "activity_permille"),
        )
        object.__setattr__(self, "seed", int(self.seed))

    def is_active(self) -> bool:
        """Whether this sub-model changes delivery behaviour at all."""
        return bool(self.members) and self.activity_permille > 0

    def cost_detail(self) -> int:
        """Shrink-cost contribution (strictly decreases as knobs relax)."""
        if not self.is_active():
            return 0
        return (
            4 * len(self.members)
            + _BEHAVIOR_WEIGHT[self.behavior]
            + self.activity_permille
        )


@dataclass(frozen=True)
class ChurnFaults:
    """Provenance of a churn-trace-generated schedule (class ``churn``).

    The realized partition/merge sequence lives in the plan's steps —
    this marker only records the mobility-trace parameters that
    produced them, so the oracle can attribute the plan to the churn
    class.  It never changes engine behaviour.
    """

    cells: int = 0
    epochs: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        _require(int(self.cells) >= 0, "cells must be >= 0")
        _require(int(self.epochs) >= 0, "epochs must be >= 0")
        object.__setattr__(self, "cells", int(self.cells))
        object.__setattr__(self, "epochs", int(self.epochs))
        object.__setattr__(self, "seed", int(self.seed))

    def is_active(self) -> bool:
        """Whether this sub-model contributes topology churn steps."""
        return self.epochs > 0

    def cost_detail(self) -> int:
        """Shrink-cost contribution (strictly decreases as knobs relax)."""
        return 1 if self.is_active() else 0


@dataclass(frozen=True)
class FaultModel:
    """One composable adversarial fault configuration."""

    link: LinkFaults = field(default_factory=LinkFaults)
    crashrec: CrashRecoveryFaults = field(default_factory=CrashRecoveryFaults)
    byzantine: ByzantineFaults = field(default_factory=ByzantineFaults)
    churn: ChurnFaults = field(default_factory=ChurnFaults)

    def is_clean(self) -> bool:
        """No knob changes engine behaviour (churn marker excluded).

        A clean model drives the driver's exact pre-fault delivery
        path — the byte-identity tests pin this.
        """
        return not (
            self.link.is_active()
            or self.crashrec.is_active()
            or self.byzantine.is_active()
        )

    def is_default(self) -> bool:
        """Indistinguishable from carrying no fault model at all."""
        return self == FaultModel()

    def needs_injection(self) -> bool:
        """Whether the driver must route deliveries through an injector."""
        return self.link.is_active() or self.byzantine.is_active()

    def active_classes(self) -> Tuple[str, ...]:
        """The fault classes this model exercises, in canonical order."""
        classes = []
        if self.link.is_active():
            classes.append("loss")
        if self.crashrec.is_active():
            classes.append("crashrec")
        if self.byzantine.is_active():
            classes.append("byzantine")
        if self.churn.is_active():
            classes.append("churn")
        return tuple(classes)

    def cost_detail(self) -> int:
        """Shrink-cost contribution of the whole model."""
        return (
            self.link.cost_detail()
            + self.crashrec.cost_detail()
            + self.byzantine.cost_detail()
            + self.churn.cost_detail()
        )

    def validate_for(self, n_processes: int) -> None:
        """Check process-id references against a system size."""
        for pid in self.byzantine.members:
            _require(
                pid < n_processes,
                f"byzantine member {pid} outside the {n_processes}-process system",
            )
        for sender, recipient, _ in self.link.link_loss:
            _require(
                sender < n_processes and recipient < n_processes,
                f"link_loss link {sender}->{recipient} outside the "
                f"{n_processes}-process system",
            )
        for sender, recipient, _, _ in self.link.link_delay:
            _require(
                sender < n_processes and recipient < n_processes,
                f"link_delay link {sender}->{recipient} outside the "
                f"{n_processes}-process system",
            )


# ----------------------------------------------------------------------
# Canonical JSON codec.  Only non-default sections are emitted, and
# within a section only non-default fields, so a default model is the
# empty object and an absent model stays absent — byte identity with
# pre-fault plan files is structural, not incidental.
# ----------------------------------------------------------------------

_LINK_DEFAULT = LinkFaults()
_CRASHREC_DEFAULT = CrashRecoveryFaults()
_BYZ_DEFAULT = ByzantineFaults()
_CHURN_DEFAULT = ChurnFaults()


def _section(value: Any, default: Any, fields_: Tuple[str, ...]) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    for name in fields_:
        current = getattr(value, name)
        if current != getattr(default, name):
            if isinstance(current, tuple):
                current = [list(entry) if isinstance(entry, tuple) else entry
                           for entry in current]
            out[name] = current
    return out


def faults_to_dict(model: FaultModel) -> Dict[str, Any]:
    """JSON-compatible form of a fault model (non-default fields only)."""
    out: Dict[str, Any] = {}
    link = _section(
        model.link,
        _LINK_DEFAULT,
        ("loss_permille", "link_loss", "delay_permille", "delay_max",
         "link_delay", "reorder", "seed"),
    )
    if link:
        out["link"] = link
    crashrec = _section(model.crashrec, _CRASHREC_DEFAULT, ("persistence",))
    if crashrec:
        out["crashrec"] = crashrec
    byzantine = _section(
        model.byzantine,
        _BYZ_DEFAULT,
        ("members", "behavior", "activity_permille", "seed"),
    )
    if byzantine:
        out["byzantine"] = byzantine
    churn = _section(model.churn, _CHURN_DEFAULT, ("cells", "epochs", "seed"))
    if churn:
        out["churn"] = churn
    return out


def faults_from_dict(data: Mapping[str, Any]) -> FaultModel:
    """Inverse of :func:`faults_to_dict`."""
    known = {"link", "crashrec", "byzantine", "churn"}
    stray = set(data) - known
    _require(not stray, f"unknown fault model sections {sorted(stray)}")
    link = data.get("link", {})
    byzantine = data.get("byzantine", {})
    return FaultModel(
        link=LinkFaults(
            loss_permille=link.get("loss_permille", 0),
            link_loss=tuple(
                (int(s), int(r), int(p)) for s, r, p in link.get("link_loss", ())
            ),
            delay_permille=link.get("delay_permille", 0),
            delay_max=link.get("delay_max", 0),
            link_delay=tuple(
                (int(s), int(r), int(p), int(m))
                for s, r, p, m in link.get("link_delay", ())
            ),
            reorder=bool(link.get("reorder", False)),
            seed=link.get("seed", 0),
        ),
        crashrec=CrashRecoveryFaults(
            persistence=data.get("crashrec", {}).get("persistence", PERSISTENT)
        ),
        byzantine=ByzantineFaults(
            members=tuple(int(p) for p in byzantine.get("members", ())),
            behavior=byzantine.get("behavior", "drop"),
            activity_permille=byzantine.get("activity_permille", 1000),
            seed=byzantine.get("seed", 0),
        ),
        churn=ChurnFaults(
            cells=data.get("churn", {}).get("cells", 0),
            epochs=data.get("churn", {}).get("epochs", 0),
            seed=data.get("churn", {}).get("seed", 0),
        ),
    )
