"""Composable adversarial fault models with per-class safety oracles.

``repro.faults`` widens the engine's clean fault space (partitions,
merges, crashes, recoveries) along four independent axes — link faults,
crash-recovery persistence, Byzantine members, and churn traces — and
pairs every fault class with the oracle that says which safety
obligations it may legitimately break (:mod:`repro.faults.oracle`).

See ``docs/fault-models.md`` for the full catalogue.
"""

from repro.faults.churn import churn_steps, diff_partitions, mobility_trace
from repro.faults.injector import FaultInjector
from repro.faults.model import (
    AMNESIAC,
    BYZANTINE_BEHAVIORS,
    FAULT_CLASSES,
    PERSISTENT,
    ByzantineFaults,
    ChurnFaults,
    CrashRecoveryFaults,
    FaultModel,
    FaultModelError,
    LinkFaults,
    faults_from_dict,
    faults_to_dict,
)
from repro.faults.oracle import (
    ALL_KINDS,
    OMISSION_KINDS,
    expected_kinds,
    livelock_expected,
    violation_expected,
)

__all__ = [
    "ALL_KINDS",
    "AMNESIAC",
    "BYZANTINE_BEHAVIORS",
    "ByzantineFaults",
    "ChurnFaults",
    "CrashRecoveryFaults",
    "FAULT_CLASSES",
    "FaultInjector",
    "FaultModel",
    "FaultModelError",
    "LinkFaults",
    "OMISSION_KINDS",
    "PERSISTENT",
    "churn_steps",
    "diff_partitions",
    "expected_kinds",
    "faults_from_dict",
    "faults_to_dict",
    "livelock_expected",
    "mobility_trace",
    "violation_expected",
]
