"""Churn: partition schedules derived from mobility-style traces.

JBotSim-style dynamic-topology studies (PAPERS.md) drive connectivity
from *node mobility*: hosts wander among radio cells, and the network
components at any instant are the cell co-location classes.  This
module brings that fault shape to the availability study without
touching the engine: a mobility trace is generated (pure-hash random
walk over ``cells`` cells for ``epochs`` epochs), each epoch's
co-location partition is diffed against the previous one, and the diff
is compiled into the engine's own partition/merge change vocabulary.

The compilation per epoch transition ``A -> B``:

1. every A-component is split into its non-empty intersections with
   B's components (a chain of :class:`~repro.net.changes.PartitionChange`
   steps carving one intersection at a time off the remainder), then
2. the intersections belonging to one B-component are merged
   left-to-right (:class:`~repro.net.changes.MergeChange` steps).

Each step is feasible on the topology produced by its predecessors, so
the resulting plan passes :func:`repro.check.plan.validate_plan`
unchanged — churn is *provenance*, not a new engine capability, which
is why :class:`~repro.faults.model.ChurnFaults` never needs a driver
hook and the strict invariant oracle applies in full.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.faults.model import ChurnFaults, FaultModelError
from repro.net.changes import ConnectivityChange, MergeChange, PartitionChange
from repro.sim.rng import derive_seed
from repro.types import Members

Partition = Tuple[Members, ...]


def _canonical(partition: Sequence[Members]) -> Partition:
    """Components sorted by their sorted member tuples (stable identity)."""
    return tuple(
        sorted((frozenset(c) for c in partition if c), key=sorted)
    )


def mobility_trace(
    churn: ChurnFaults, n_processes: int
) -> List[Partition]:
    """Per-epoch co-location partitions of a pure-hash random walk.

    Epoch 0 is always the fully-connected universe (the engine's fixed
    start state); each later epoch assigns every process a cell via
    ``derive_seed(seed, "faults.churn", epoch, pid) % cells`` and
    partitions the universe by cell.  The walk is memoryless by
    design — what matters for the availability study is the *sequence
    of partitions*, not per-node trajectories — and being a pure hash
    it is identical on every replay.
    """
    if churn.cells < 1:
        raise FaultModelError("churn traces need at least one cell")
    universe = frozenset(range(n_processes))
    trace: List[Partition] = [(universe,)]
    for epoch in range(1, churn.epochs + 1):
        cells: Dict[int, set] = {}
        for pid in range(n_processes):
            cell = derive_seed(
                churn.seed, "faults.churn", epoch, pid
            ) % churn.cells
            cells.setdefault(cell, set()).add(pid)
        trace.append(_canonical([frozenset(c) for c in cells.values()]))
    return trace


def diff_partitions(
    before: Sequence[Members], after: Sequence[Members]
) -> List[ConnectivityChange]:
    """Feasible change sequence transforming partition ``before`` into ``after``.

    Split-then-merge: each before-component is carved into its
    after-intersections, then each after-component is assembled from
    its pieces.  Every intermediate change is feasible by construction
    (each partition carves a proper, non-empty subset off the current
    remainder; each merge unifies two components that exist at that
    point).
    """
    before = _canonical(before)
    after = _canonical(after)
    if frozenset().union(*before) != frozenset().union(*after):
        raise FaultModelError(
            "partition diff needs identical universes on both sides"
        )
    changes: List[ConnectivityChange] = []
    pieces: List[Members] = []
    for component in before:
        intersections = [
            component & target for target in after if component & target
        ]
        intersections.sort(key=sorted)
        remainder = component
        for piece in intersections[:-1]:
            changes.append(
                PartitionChange(component=remainder, moved=piece)
            )
            remainder = remainder - piece
        pieces.extend(intersections)
    for target in after:
        parts = sorted(
            (piece for piece in pieces if piece <= target), key=sorted
        )
        assembled = parts[0]
        for piece in parts[1:]:
            changes.append(MergeChange(first=assembled, second=piece))
            assembled = assembled | piece
    return changes


def churn_steps(
    churn: ChurnFaults, n_processes: int, dwell: int = 1
) -> List[Tuple[int, ConnectivityChange, None]]:
    """Driver-ready (gap, change, late) steps realizing a churn trace.

    ``dwell`` is the number of quiet rounds the system holds each epoch
    before the next epoch's changes land (the first change of an epoch
    carries it as its gap; the rest of the epoch's diff lands
    back-to-back).  Late-sets are ``None`` so replay samples the
    mid-round cut exactly as a random run would — fuzzing pins them
    afterwards from the recorded schedule.
    """
    if dwell < 0:
        raise FaultModelError("dwell must be >= 0")
    trace = mobility_trace(churn, n_processes)
    steps: List[Tuple[int, ConnectivityChange, None]] = []
    for previous, current in zip(trace, trace[1:]):
        changes = diff_partitions(previous, current)
        for index, change in enumerate(changes):
            steps.append((dwell if index == 0 else 0, change, None))
    return steps
