"""Byzantine message mutation at the message boundary.

A Byzantine member's *algorithm* runs the correct code; its
*broadcasts* are attacked between poll and delivery, which is exactly
where a traitorous process diverges from the protocol in the classical
model.  Three behaviours, in increasing severity:

* ``drop`` — the broadcast is withheld from every other member (the
  member still processes its own copy, so its local state stays the
  honest one).  This is an omission fault: the dynamic voting
  algorithms must stay safe under it.
* ``alter`` — every state-exchange item in the broadcast has its
  ``lastPrimary`` replaced by a *forged* session, one number above the
  newest formation evidence the honest item carried, spanning the
  sender's current component.  Every recipient sees the same forgery.
* ``equivocate`` — as ``alter``, but recipients are split between two
  forged member sets for the *same* session number.  Victims ACCEPT
  the forgery (it outranks anything legitimately formed), then report
  divergent primaries sharing one order key — the
  ``chain_order_conflict`` invariant is specifically the oracle for
  this attack.

The forgery targets :class:`~repro.core.knowledge.StateItem.last_primary`
because the YKD family's ACCEPT rule trusts any peer's formation
evidence outright (thesis Fig. 3-3): a single faulty member can
therefore poison the whole component's notion of the latest primary.
Messages with no state items pass through ``alter``/``equivocate``
unchanged — there is nothing to forge on an attempt-only broadcast.

Whether a given round's broadcast is attacked is a pure-hash draw on
``(seed, round, sender)``; like the link-fault draws this keeps the
adversary identical across algorithms and replays.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.knowledge import StateItem
from repro.core.message import Message
from repro.core.session import Session
from repro.faults.model import ByzantineFaults
from repro.sim.rng import derive_seed
from repro.types import Members, ProcessId

_SCALE = 2 ** 64


def attack_fires(
    byzantine: ByzantineFaults, round_index: int, sender: ProcessId
) -> bool:
    """Whether this round's broadcast from ``sender`` is attacked."""
    if sender not in byzantine.members or byzantine.activity_permille <= 0:
        return False
    if byzantine.activity_permille >= 1000:
        return True
    draw = derive_seed(
        byzantine.seed, "faults.byzantine", "fires", round_index, sender
    ) / _SCALE
    return draw * 1000 < byzantine.activity_permille


def _forged_number(message: Message) -> Optional[int]:
    """One above the newest formation evidence in the broadcast."""
    best: Optional[int] = None
    if message.piggyback is None:
        return None
    for item in message.piggyback.items:
        if isinstance(item, StateItem):
            newest = max(
                session.number for session in item.formed_evidence()
            )
            if best is None or newest > best:
                best = newest
    return None if best is None else best + 1


def forged_sessions(
    message: Message, component: Members
) -> Optional[Tuple[Session, Session]]:
    """The two forged primaries an attacked broadcast may carry.

    Variant A spans the sender's whole component; variant B omits the
    largest member (when the component has one to spare).  ``alter``
    sends A to everyone; ``equivocate`` splits recipients between A
    and B.  Returns None when the broadcast carries no state items.
    """
    number = _forged_number(message)
    if number is None:
        return None
    members_a = frozenset(component)
    variant_a = Session(number=number, members=members_a)
    if len(members_a) >= 2:
        members_b = members_a - {max(members_a)}
        variant_b = Session(number=number, members=members_b)
    else:
        variant_b = variant_a
    return variant_a, variant_b


def _with_forged_primary(message: Message, forged: Session) -> Message:
    """The broadcast with every state item's ``lastPrimary`` replaced."""
    piggyback = message.piggyback
    assert piggyback is not None
    items = tuple(
        StateItem(
            session_number=item.session_number,
            ambiguous=item.ambiguous,
            last_primary=forged,
            last_formed=item.last_formed,
        )
        if isinstance(item, StateItem)
        else item
        for item in piggyback.items
    )
    return message.with_piggyback(piggyback.with_items(items))


def poison(
    byzantine: ByzantineFaults,
    message: Message,
    recipient: ProcessId,
    component: Members,
) -> Optional[Message]:
    """The message ``recipient`` receives from an attacked broadcast.

    Returns None when the broadcast is withheld (``drop``), the
    original message when there is nothing to forge, or the mutated
    copy otherwise.  The variant split under ``equivocate`` is by
    recipient membership: members of variant B's set receive B, the
    omitted member receives A — so every victim is a member of the
    forgery it accepts.
    """
    if byzantine.behavior == "drop":
        return None
    variants = forged_sessions(message, component)
    if variants is None:
        return message
    variant_a, variant_b = variants
    if byzantine.behavior == "alter" or variant_a == variant_b:
        return _with_forged_primary(message, variant_a)
    chosen = variant_b if recipient in variant_b.members else variant_a
    return _with_forged_primary(message, chosen)
