"""The per-run delivery mediator for an active fault model.

The driver loop owns *scheduling* faults (connectivity changes, the
mid-round cut); the injector owns *delivery* faults: every non-self
delivery of a round is routed through :meth:`FaultInjector.transform`,
which applies the Byzantine mutation first (the traitor corrupts its
broadcast before the network touches it) and the link faults second
(loss, then delay).  Held deliveries are queued per recipient and
released by :meth:`matured` once their delay elapses.

The injector is deliberately *stateless about randomness*: every draw
inside :mod:`repro.faults.link` and :mod:`repro.faults.byzantine` is a
pure hash of ``(seed, round, link)``, so the only mutable state here is
the pending-delivery queue — which is exactly what
:meth:`snapshot_state`/:meth:`restore_state` capture for the driver's
forking explorer.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.message import Message
from repro.faults.byzantine import attack_fires, poison
from repro.faults.link import delivery_delay, delivery_lost, reorder_key
from repro.faults.model import FaultModel
from repro.types import ProcessId

#: One held delivery: (due round, release sort key, sender, message).
_Pending = Tuple[int, tuple, ProcessId, Message]


class FaultInjector:
    """Applies one :class:`FaultModel`'s delivery faults to one run."""

    def __init__(self, model: FaultModel) -> None:
        self.model = model
        self._link = model.link
        self._byzantine = model.byzantine
        self._pending: Dict[ProcessId, List[_Pending]] = {}
        #: Delivery-fault tally, for observability and tests: how many
        #: deliveries each fault consumed (``withheld``/``poisoned`` are
        #: Byzantine, ``lost``/``delayed`` are link faults).
        self.counts: Dict[str, int] = {
            "withheld": 0, "poisoned": 0, "lost": 0, "delayed": 0
        }

    def attacked(self, round_index: int, sender: ProcessId) -> bool:
        """Whether ``sender``'s broadcast is Byzantine-attacked this round."""
        return attack_fires(self._byzantine, round_index, sender)

    def transform(
        self,
        round_index: int,
        sender: ProcessId,
        recipient: ProcessId,
        message: Message,
        component: Sequence[ProcessId],
        attacked: bool,
    ) -> Optional[Message]:
        """The message to deliver right now, or None (dropped or held).

        Fault order: Byzantine mutation first, link loss second, link
        delay third — a traitor's forgery rides the same unreliable
        links as honest traffic.
        """
        if attacked:
            message = poison(self._byzantine, message, recipient, component)
            if message is None:
                self.counts["withheld"] += 1
                return None
            self.counts["poisoned"] += 1
        link = self._link
        if not link.is_active():
            return message
        if delivery_lost(link, round_index, sender, recipient):
            self.counts["lost"] += 1
            return None
        delay = delivery_delay(link, round_index, sender, recipient)
        if delay > 0:
            self.counts["delayed"] += 1
            self._pending.setdefault(recipient, []).append(
                (
                    round_index + delay,
                    reorder_key(link, round_index, recipient, sender),
                    sender,
                    message,
                )
            )
            return None
        return message

    def matured(
        self, round_index: int, recipient: ProcessId
    ) -> List[Tuple[ProcessId, Message]]:
        """Held deliveries for ``recipient`` whose delay has elapsed.

        Released in release-key order: sender id when ``reorder`` is
        off, a pure-hash shuffle otherwise.  Stale releases (the
        recipient moved to a new view meanwhile) are delivered anyway —
        the interface layer's view-seq check discards them, exactly as
        it discards any message straddling a view change.
        """
        queue = self._pending.get(recipient)
        if not queue:
            return []
        due = [entry for entry in queue if entry[0] <= round_index]
        if not due:
            return []
        remaining = [entry for entry in queue if entry[0] > round_index]
        if remaining:
            self._pending[recipient] = remaining
        else:
            del self._pending[recipient]
        due.sort(key=lambda entry: (entry[1], entry[0]))
        return [(sender, message) for _, _, sender, message in due]

    def drop_for(self, recipient: ProcessId) -> None:
        """Discard every held delivery for ``recipient`` (it crashed)."""
        self._pending.pop(recipient, None)

    def has_pending(self) -> bool:
        """Whether any delivery is still in flight (quiescence must wait)."""
        return bool(self._pending)

    # ------------------------------------------------------------------
    # State forking (DriverLoop.snapshot/restore).
    # ------------------------------------------------------------------

    def snapshot_state(self) -> tuple:
        """The pending queue as an immutable value (messages shared)."""
        return tuple(
            (recipient, tuple(entries))
            for recipient, entries in sorted(self._pending.items())
        )

    def restore_state(self, state: tuple) -> None:
        """Reinstate pending in-flight deliveries captured by
        :meth:`snapshot_state` (model-checker fork support)."""
        self._pending = {
            recipient: list(entries) for recipient, entries in state
        }
