"""Common type aliases and small value helpers shared across the library.

The thesis models a fixed universe of processes that all start together
in one initial view.  Processes are identified by small integers; the
"lexically smallest" process used by dynamic *linear* voting to break
exact-half ties is simply the numerically smallest identifier.  Any
total order works (the thesis suggests IP address + process id); the
integer order is the simulation's stand-in for it.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Tuple

#: Identifier of a single process.  Ordered; the order defines the
#: "lexically smallest" tie-break of dynamic linear voting.
ProcessId = int

#: An immutable set of processes, the raw material of views and sessions.
Members = FrozenSet[ProcessId]

#: A monotonically increasing identifier the driver assigns to each
#: installed view, used only for bookkeeping/tracing (algorithms number
#: their own sessions independently, as in the thesis).
ViewSeq = int

#: Round index within a simulation run.
Round = int


def as_members(processes: Iterable[ProcessId]) -> Members:
    """Normalize any iterable of process ids into a ``Members`` set.

    Raises ``ValueError`` for an empty iterable: neither views nor
    sessions may be empty anywhere in the system.
    """
    members = frozenset(processes)
    if not members:
        raise ValueError("a process set must not be empty")
    for pid in members:
        if not isinstance(pid, int) or pid < 0:
            raise ValueError(f"process ids must be non-negative ints, got {pid!r}")
    return members


def sorted_members(members: Members) -> Tuple[ProcessId, ...]:
    """Deterministic tuple form of a member set, for display and hashing."""
    return tuple(sorted(members))


def lexically_smallest(members: Members) -> ProcessId:
    """The designated tie-break process of a member set (thesis §3.1)."""
    if not members:
        raise ValueError("no lexically smallest process of an empty set")
    return min(members)
