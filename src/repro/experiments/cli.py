"""Command-line interface for the experiment harness.

Examples::

    repro-experiments list
    repro-experiments run fig4_2 --scale smoke --plot
    repro-experiments run fig4_5 --scale small --seed 7 --csv results/
    repro-experiments all --scale smoke
    repro-experiments run fig4_2 --scale smoke --metrics-out metrics.jsonl
    repro-experiments compare ykd dfls --changes 6 --rate 2 --runs 300
    repro-experiments trace ykd --processes 5 --changes 3
    repro-experiments profile ykd --processes 16 --runs 200
    repro-experiments check --schedules 500 --seed 3 --shrink
    repro-experiments check --replay repro.json
    repro-experiments check --corpus tests/corpus
    repro-experiments explain ykd --changes 4 --runs 50 --timeline
    repro-experiments explain ykd --replay repro.json --html report.html
    repro-experiments explain --replay case.trace.jsonl
    repro-experiments bench
    repro-experiments bench campaign --quick --max-regression 0.25
    repro-experiments serve --replicas 3 --port 8080
    repro-experiments load --seed 7 --schedule cascade --verify-replay
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro.analysis import compare_paired
from repro.core.registry import algorithm_names
from repro.faults.model import FAULT_CLASSES
from repro.obs import (
    CampaignMetrics,
    MetricsRegistry,
    PhaseProfiler,
    ProgressReporter,
    write_metrics_csv,
    write_metrics_jsonl,
)
from repro.experiments.ambiguous import AmbiguousFigure
from repro.experiments.availability import AvailabilityFigure
from repro.experiments.plot import plot_ambiguous, plot_availability
from repro.experiments.report import (
    render,
    write_ambiguous_csv,
    write_availability_csv,
)
from repro.experiments.runner import run_experiment
from repro.experiments.spec import SCALES, SPECS, all_spec_ids, get_scale
from repro.sim.campaign import CaseConfig, run_case
from repro.sim.driver import DriverLoop
from repro.sim.explore import explore
from repro.service.cli import (
    add_service_parsers,
    run_load,
    run_serve,
    run_telemetry,
)
from repro.sim.rng import derive_rng
from repro.sim.trace import TraceRecorder, render_timeline


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the tables and figures of the dynamic "
        "voting availability study.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list all experiments and scales")

    run_parser = sub.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment_id", choices=sorted(SPECS))
    _add_run_options(run_parser)

    all_parser = sub.add_parser("all", help="run every experiment")
    _add_run_options(all_parser)

    compare_parser = sub.add_parser(
        "compare",
        help="paired head-to-head comparison of two algorithms over "
        "identical fault sequences",
    )
    compare_parser.add_argument("first", choices=algorithm_names())
    compare_parser.add_argument("second", choices=algorithm_names())
    compare_parser.add_argument("--processes", type=int, default=16)
    compare_parser.add_argument("--changes", type=int, default=6)
    compare_parser.add_argument("--rate", type=float, default=2.0)
    compare_parser.add_argument("--runs", type=int, default=300)
    compare_parser.add_argument(
        "--mode", choices=["fresh", "cascading"], default="fresh"
    )
    compare_parser.add_argument("--seed", type=int, default=0)
    compare_parser.add_argument(
        "--kernel",
        choices=["scalar", "batched"],
        default="scalar",
        help="campaign execution backend (exact same outcomes; "
        "per-case scalar fallback outside the batched surface)",
    )

    soak_parser = sub.add_parser(
        "soak",
        help="endurance trial: inject a huge number of connectivity "
        "changes under continuous invariant checking (the thesis ran "
        "1,310,000 per algorithm)",
    )
    soak_parser.add_argument("algorithm", choices=algorithm_names())
    soak_parser.add_argument("--changes", type=int, default=10_000)
    soak_parser.add_argument("--processes", type=int, default=8)
    soak_parser.add_argument("--rate", type=float, default=1.0)
    soak_parser.add_argument("--seed", type=int, default=0)

    verify_parser = sub.add_parser(
        "verify",
        help="exhaustively model-check an algorithm over all bounded "
        "fault schedules",
    )
    verify_parser.add_argument(
        "algorithm", choices=list(algorithm_names()) + ["all"]
    )
    verify_parser.add_argument("--processes", type=int, default=3)
    verify_parser.add_argument("--depth", type=int, default=2)
    verify_parser.add_argument(
        "--gaps", type=int, nargs="+", default=[0, 1, 2, 3]
    )
    verify_parser.add_argument("--max-scenarios", type=int, default=None)
    verify_parser.add_argument(
        "--workers", type=int, default=1,
        help="shard the top-level frontier across this many processes",
    )
    verify_parser.add_argument(
        "--symmetry", action="store_true",
        help="collapse first steps that are process relabelings of "
        "each other (exact counts, representative violations; "
        "requires --processes 3)",
    )
    verify_parser.add_argument(
        "--stats", action="store_true",
        help="print the explorer's work accounting (states, dedup "
        "hits, rounds, fork depth)",
    )
    verify_parser.add_argument(
        "--stats-out", type=Path, default=None, metavar="PATH",
        help="also write per-algorithm results and stats as JSON",
    )

    trace_parser = sub.add_parser(
        "trace",
        help="run one randomized scenario and print its event timeline",
    )
    trace_parser.add_argument("algorithm", choices=algorithm_names())
    trace_parser.add_argument("--processes", type=int, default=5)
    trace_parser.add_argument("--changes", type=int, default=3)
    trace_parser.add_argument("--seed", type=int, default=0)

    profile_parser = sub.add_parser(
        "profile",
        help="run one campaign case with per-phase timing, live "
        "progress and campaign metrics; print the phase table",
    )
    profile_parser.add_argument("algorithm", choices=algorithm_names())
    profile_parser.add_argument("--processes", type=int, default=16)
    profile_parser.add_argument("--changes", type=int, default=6)
    profile_parser.add_argument("--rate", type=float, default=2.0)
    profile_parser.add_argument("--runs", type=int, default=200)
    profile_parser.add_argument(
        "--mode", choices=["fresh", "cascading"], default="fresh"
    )
    profile_parser.add_argument("--seed", type=int, default=0)
    profile_parser.add_argument(
        "--every",
        type=int,
        default=25,
        help="progress reporting interval in runs (default: 25)",
    )
    profile_parser.add_argument(
        "--metrics-out",
        type=Path,
        default=None,
        help="write the case's metrics (campaign counters plus the "
        "phase profile) as JSONL, or CSV for a .csv path",
    )

    check_parser = sub.add_parser(
        "check",
        help="differential schedule fuzzing with failure minimization, "
        "repro replay, and corpus regression",
    )
    check_parser.add_argument(
        "mode",
        nargs="?",
        choices=["fuzz"],
        default="fuzz",
        help="check mode (only 'fuzz' exists; --replay/--corpus override)",
    )
    check_parser.add_argument(
        "--faults",
        nargs="+",
        choices=list(FAULT_CLASSES),
        default=None,
        metavar="CLASS",
        help="adversarial fault classes to fuzz with (subset of "
        f"{', '.join(FAULT_CLASSES)}); each failing schedule is judged "
        "against the per-class invariant oracle, and only findings the "
        "oracle does not sanction fail the run",
    )
    check_parser.add_argument(
        "--replay",
        type=Path,
        default=None,
        help="replay one repro file instead of fuzzing",
    )
    check_parser.add_argument(
        "--corpus",
        type=Path,
        default=None,
        help="replay every repro file in a directory instead of fuzzing",
    )
    check_parser.add_argument(
        "--algorithms",
        nargs="+",
        choices=algorithm_names(),
        default=None,
        help="algorithms to cross-check (default: all registered)",
    )
    check_parser.add_argument("--schedules", type=int, default=200)
    check_parser.add_argument("--seed", type=int, default=0)
    check_parser.add_argument("--min-processes", type=int, default=3)
    check_parser.add_argument("--max-processes", type=int, default=6)
    check_parser.add_argument("--max-changes", type=int, default=6)
    check_parser.add_argument("--max-gap", type=int, default=3)
    check_parser.add_argument("--crash-weight", type=float, default=0.2)
    check_parser.add_argument(
        "--shrink",
        action="store_true",
        help="delta-debug each failing schedule to a minimal reproducer",
    )
    check_parser.add_argument(
        "--save-repros",
        type=Path,
        default=None,
        help="directory for the (minimized) failing schedules as repro files",
    )

    explain_parser = sub.add_parser(
        "explain",
        help="availability forensics: run a case (or replay a trace / "
        "repro plan) and explain every round without a primary",
    )
    explain_parser.add_argument(
        "algorithm",
        nargs="?",
        choices=algorithm_names(),
        default=None,
        help="algorithm to run (optional with --replay)",
    )
    explain_parser.add_argument(
        "--replay",
        type=Path,
        default=None,
        metavar="PATH",
        help="explain a recorded artifact instead of running: a trace "
        "JSONL (from --trace-out) or a repro.check repro/plan JSON",
    )
    explain_parser.add_argument("--processes", type=int, default=8)
    explain_parser.add_argument("--changes", type=int, default=4)
    explain_parser.add_argument("--rate", type=float, default=4.0)
    explain_parser.add_argument("--runs", type=int, default=50)
    explain_parser.add_argument(
        "--mode", choices=["fresh", "cascading"], default="fresh"
    )
    explain_parser.add_argument("--seed", type=int, default=0)
    explain_parser.add_argument(
        "--timeline",
        action="store_true",
        help="also print the event timeline with attempt spans woven in",
    )
    explain_parser.add_argument(
        "--html",
        type=Path,
        default=None,
        metavar="PATH",
        help="write the self-contained HTML forensics report",
    )
    explain_parser.add_argument(
        "--spans-out",
        type=Path,
        default=None,
        metavar="PATH",
        help="write the reconstructed spans as canonical JSONL",
    )
    explain_parser.add_argument(
        "--trace-out",
        type=Path,
        default=None,
        metavar="PATH",
        help="write the recorded trace as canonical JSONL",
    )

    bench_parser = sub.add_parser(
        "bench",
        help="run the pinned-seed throughput benchmarks and record "
        "BENCH_<scenario>.json, flagging regressions vs the previous files",
    )
    bench_parser.add_argument(
        "scenarios",
        nargs="*",
        default=None,
        help="scenario names to run (default: all)",
    )
    bench_parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized workloads (same hot paths, a few seconds)",
    )
    bench_parser.add_argument(
        "--output-dir",
        type=Path,
        default=Path("."),
        help="where the BENCH_<scenario>.json files live (default: repo root)",
    )
    bench_parser.add_argument(
        "--max-regression",
        type=float,
        default=None,
        help="relative rounds/sec drop vs the previous file that fails "
        "the run (default: 0.10)",
    )
    bench_parser.add_argument(
        "--no-write",
        action="store_true",
        help="compare against the committed files without rewriting them",
    )
    bench_parser.add_argument(
        "--repeats",
        type=int,
        default=1,
        help="run each scenario N times and report the fastest (noise guard)",
    )

    add_service_parsers(sub)

    gcs_parser = sub.add_parser(
        "gcs",
        help="run a recorded partition schedule on a real multi-process "
        "GCS cluster (UDP/TCP sockets) and compare against the "
        "simulated reference — see `python -m repro.gcs.proc --help`",
        add_help=False,
    )
    gcs_parser.add_argument(
        "gcs_args", nargs=argparse.REMAINDER,
        help="arguments forwarded to repro.gcs.proc",
    )

    return parser


def _add_run_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        default="smoke",
        choices=sorted(SCALES),
        help="resource preset (default: smoke)",
    )
    parser.add_argument("--seed", type=int, default=0, help="master seed")
    parser.add_argument(
        "--csv",
        type=Path,
        default=None,
        help="directory for CSV export (availability figures only)",
    )
    parser.add_argument(
        "--plot",
        action="store_true",
        help="also draw the figure as an ASCII chart",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool size for the heavy figures (default: 1)",
    )
    parser.add_argument(
        "--metrics-out",
        type=Path,
        default=None,
        help="write campaign metrics as JSONL (or CSV for a .csv "
        "path); campaign-backed experiments only",
    )
    parser.add_argument(
        "--trace-out",
        type=Path,
        default=None,
        metavar="DIR",
        help="write one canonical trace JSONL per case (availability "
        "figures only; forces serial execution)",
    )
    parser.add_argument(
        "--spans-out",
        type=Path,
        default=None,
        metavar="DIR",
        help="write one causal-span JSONL per case (availability "
        "figures only; forces serial execution)",
    )
    parser.add_argument(
        "--kernel",
        choices=["scalar", "batched"],
        default="scalar",
        help="campaign execution backend: the object-graph driver, or "
        "the vectorized bitmask kernel (availability figures; exact "
        "same numbers, per-case scalar fallback outside its surface)",
    )


def _write_metrics(registry: MetricsRegistry, path: Path) -> None:
    """Write a registry as JSONL, or CSV when the path says so."""
    if path.suffix.lower() == ".csv":
        write_metrics_csv(registry, path)
    else:
        write_metrics_jsonl(registry, path)
    print(f"metrics written: {path} ({len(registry.series())} series)")


def _run_one(
    experiment_id: str,
    scale: str,
    seed: int,
    csv_dir: Optional[Path],
    plot: bool = False,
    workers: int = 1,
    metrics_out: Optional[Path] = None,
    trace_dir: Optional[Path] = None,
    spans_dir: Optional[Path] = None,
    kernel: str = "scalar",
) -> None:
    started = time.time()
    metrics = MetricsRegistry() if metrics_out is not None else None
    result = run_experiment(
        experiment_id,
        scale=scale,
        master_seed=seed,
        workers=workers,
        metrics=metrics,
        trace_dir=trace_dir,
        spans_dir=spans_dir,
        kernel=kernel,
    )
    print(render(result))
    if trace_dir is not None or spans_dir is not None:
        if isinstance(result, AvailabilityFigure):
            for label, directory in (
                ("traces", trace_dir), ("spans", spans_dir)
            ):
                if directory is not None:
                    count = len(list(Path(directory).glob(f"{experiment_id}_*.jsonl")))
                    print(f"{label} written: {directory} ({count} files)")
        else:
            print(
                f"traces/spans not written: {experiment_id} is not an "
                "availability figure"
            )
    if plot and isinstance(result, AvailabilityFigure):
        print(plot_availability(result))
    if plot and isinstance(result, AmbiguousFigure):
        print(plot_ambiguous(result))
    if csv_dir is not None and isinstance(result, AvailabilityFigure):
        path = write_availability_csv(result, csv_dir)
        print(f"csv written: {path}")
    if csv_dir is not None and isinstance(result, AmbiguousFigure):
        path = write_ambiguous_csv(result, csv_dir)
        print(f"csv written: {path}")
    if metrics is not None:
        if metrics.series():
            _write_metrics(metrics, metrics_out)
        else:
            print(
                f"metrics not written: {experiment_id} is not "
                "campaign-backed"
            )
    print(f"[{experiment_id} done in {time.time() - started:.1f}s]\n")


def _compare(args: argparse.Namespace) -> None:
    outcomes = {}
    for algorithm in (args.first, args.second):
        case = CaseConfig(
            algorithm=algorithm,
            n_processes=args.processes,
            n_changes=args.changes,
            mean_rounds_between_changes=args.rate,
            runs=args.runs,
            mode=args.mode,
            master_seed=args.seed,
        )
        outcomes[algorithm] = run_case(case, kernel=args.kernel).outcomes
    comparison = compare_paired(
        args.first, outcomes[args.first], args.second, outcomes[args.second]
    )
    print(
        f"{args.runs} paired runs, {args.changes} changes/run, "
        f"mean {args.rate:g} rounds between changes, {args.mode} mode:\n"
    )
    print(comparison.describe())


def _soak(args: argparse.Namespace) -> int:
    from repro.net.schedule import GeometricSchedule

    started = time.time()
    schedule = GeometricSchedule(args.rate)
    driver = DriverLoop(
        algorithm=args.algorithm,
        n_processes=args.processes,
        fault_rng=derive_rng(args.seed, "soak", args.processes, args.rate),
    )
    milestone = max(args.changes // 10, 1)
    runs = 0
    while driver.changes_injected < args.changes:
        gaps = schedule.draw_gaps(driver.fault_rng, 10)
        driver.execute_run(gaps)
        runs += 1
        if driver.changes_injected // milestone != (
            driver.changes_injected - 10
        ) // milestone:
            elapsed = time.time() - started
            print(
                f"  {driver.changes_injected:>9} changes, "
                f"{driver.round_index} rounds, {runs} runs, "
                f"{elapsed:.0f}s, no inconsistency"
            )
    print(
        f"soak complete: {args.algorithm} survived "
        f"{driver.changes_injected} connectivity changes "
        f"({driver.round_index} rounds) with every invariant intact"
    )
    return 0


def _verify(args: argparse.Namespace) -> int:
    if args.symmetry and args.processes != 3:
        print(
            "error: --symmetry is only sound with --processes 3 — dynamic "
            "linear voting's lexical tie-break makes relabeled schedules "
            "behaviourally inequivalent (see docs/model-checking.md)",
            file=sys.stderr,
        )
        return 2
    algorithms = (
        list(algorithm_names()) if args.algorithm == "all" else [args.algorithm]
    )
    exit_code = 0
    report: dict = {}
    for algorithm in algorithms:
        started = time.time()
        result = explore(
            algorithm,
            n_processes=args.processes,
            depth=args.depth,
            gap_options=tuple(args.gaps),
            max_scenarios=args.max_scenarios,
            symmetry=args.symmetry,
            workers=args.workers,
        )
        elapsed = time.time() - started
        print(
            f"{algorithm}: {result.scenarios} scenarios "
            f"({args.processes} processes, depth {args.depth}, "
            f"gaps {list(result.gap_options)}"
            f"{', truncated' if result.truncated else ''}) "
            f"in {elapsed:.1f}s"
        )
        print(
            "availability over all scenarios: "
            f"{result.availability_percent:.1f}%"
        )
        stats = result.stats
        if args.stats and stats is not None:
            print(
                f"  states={stats.nodes} dedup_hits={stats.dedup_hits} "
                f"cut_collapsed={stats.cut_collapsed} "
                f"orbits={stats.orbits}/{stats.first_steps} "
                f"rounds={stats.rounds} snapshots={stats.snapshots} "
                f"restores={stats.restores} "
                f"max_fork_depth={stats.max_fork_depth} "
                f"workers={stats.workers}"
            )
        report[algorithm] = {
            "scenarios": result.scenarios,
            "available": result.available,
            "availability_percent": result.availability_percent,
            "violations": result.violations,
            "truncated": result.truncated,
            "seconds": elapsed,
            "stats": None if stats is None else stats.to_dict(),
            "counterexamples": [
                example.to_dict() for example in result.counterexamples
            ],
        }
        if result.violations:
            print("INVARIANT VIOLATIONS FOUND:")
            for violation in result.violations[:5]:
                print(f"  {violation}")
            for example in result.counterexamples[:5]:
                breakdown = ", ".join(
                    f"{category}={count}" for category, count in example.blame
                )
                print(
                    f"  counterexample ({len(example.plan_steps)} steps): "
                    f"lost rounds on the way — {breakdown or 'none'}"
                )
            exit_code = 1
        else:
            print("all invariants held in every scenario")
    if args.stats_out is not None:
        payload = {
            "kind": "repro.explore/stats",
            "processes": args.processes,
            "depth": args.depth,
            "gaps": list(args.gaps),
            "symmetry": args.symmetry,
            "workers": args.workers,
            "algorithms": report,
        }
        args.stats_out.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"stats written to {args.stats_out}")
    return exit_code


def _trace(args: argparse.Namespace) -> None:
    recorder = TraceRecorder()
    driver = DriverLoop(
        algorithm=args.algorithm,
        n_processes=args.processes,
        fault_rng=derive_rng(args.seed, "trace", args.processes, args.changes),
        observers=[recorder],
    )
    driver.execute_run(gaps=[1] * args.changes)
    print(render_timeline(recorder))
    print(
        f"\noutcome: primary={driver.primary_members()} "
        f"topology={driver.topology.describe()}"
    )


def _profile(args: argparse.Namespace) -> int:
    profiler = PhaseProfiler()
    reporter = ProgressReporter(every=args.every)
    collector = CampaignMetrics()
    case = CaseConfig(
        algorithm=args.algorithm,
        n_processes=args.processes,
        n_changes=args.changes,
        mean_rounds_between_changes=args.rate,
        runs=args.runs,
        mode=args.mode,
        master_seed=args.seed,
    )
    started = time.time()
    result = run_case(case, observers=[profiler, reporter, collector])
    elapsed = time.time() - started
    rate = result.rounds_total / elapsed if elapsed > 0 else 0.0
    print(
        f"{args.algorithm}: {result.runs} runs, "
        f"{result.rounds_total} rounds, "
        f"{result.changes_total} changes, "
        f"availability {result.availability_percent:.1f}% "
        f"({elapsed:.1f}s, {rate:,.0f} rounds/s)\n"
    )
    print(profiler.describe())
    if args.metrics_out is not None:
        registry = collector.registry
        profiler.to_registry(
            registry, algorithm=args.algorithm, mode=args.mode
        )
        _write_metrics(registry, args.metrics_out)
    return 0


def _explain(args: argparse.Namespace) -> int:
    """Availability forensics: spans + blame for a case or an artifact."""
    from repro.obs.causal import (
        CausalObserver,
        render_forensics_report,
        spans_from_recorder,
        write_html_report,
        write_spans_jsonl,
    )
    from repro.sim.trace import write_trace_jsonl

    if args.replay is not None:
        loaded = _load_replay_artifact(args)
        if loaded is None:
            return 2
        recorder, labels = loaded
    elif args.algorithm is None:
        print(
            "error: explain needs an algorithm to run, or --replay",
            file=sys.stderr,
        )
        return 2
    else:
        recorder = TraceRecorder(max_events=1_000_000)
        causal = CausalObserver()
        case = CaseConfig(
            algorithm=args.algorithm,
            n_processes=args.processes,
            n_changes=args.changes,
            mean_rounds_between_changes=args.rate,
            runs=args.runs,
            mode=args.mode,
            master_seed=args.seed,
        )
        result = run_case(case, observers=[recorder, causal])
        labels = {
            "algorithm": args.algorithm,
            "mode": args.mode,
            "processes": args.processes,
            "changes": args.changes,
            "rate": f"{args.rate:g}",
            "runs": args.runs,
            "seed": args.seed,
        }
        print(
            f"{args.algorithm}: {result.runs} runs, availability "
            f"{result.availability_percent:.1f}%\n"
        )
    spans = spans_from_recorder(recorder)
    print(render_forensics_report(spans, labels))
    if args.timeline:
        print()
        print(render_timeline(recorder, spans=spans.attempts))
    if args.html is not None:
        timeline = render_timeline(recorder, spans=spans.attempts)
        path = write_html_report(
            spans, args.html, labels=labels, timeline=timeline
        )
        print(f"\nhtml report written: {path}")
    if args.spans_out is not None:
        path = write_spans_jsonl(spans, args.spans_out)
        print(f"spans written: {path}")
    if args.trace_out is not None:
        path = write_trace_jsonl(recorder, args.trace_out)
        print(f"trace written: {path}")
    return 0


def _load_replay_artifact(args: argparse.Namespace):
    """Load ``explain --replay``'s input: a trace JSONL or a repro plan.

    Returns ``(recorder, labels)`` — the trace either parsed directly
    or re-recorded by replaying the plan — or None after printing an
    error.
    """
    from repro.check import PlanError, load_repro
    from repro.check.plan import driver_steps
    from repro.errors import InvariantViolation, SimulationError
    from repro.sim.trace import recorder_from_events

    try:
        text = args.replay.read_text(encoding="utf-8")
    except OSError as error:
        print(f"error: cannot read {args.replay}: {error}", file=sys.stderr)
        return None
    first = next((line for line in text.splitlines() if line.strip()), "")
    try:
        head = json.loads(first)
    except json.JSONDecodeError:
        head = None
    if isinstance(head, dict) and "plan" not in head:
        # One event object per line: a canonical trace JSONL.
        from repro.sim.trace import events_from_jsonl

        try:
            events, truncated = events_from_jsonl(text)
        except ValueError as error:
            print(f"error: bad trace: {error}", file=sys.stderr)
            return None
        return (
            recorder_from_events(events, truncated),
            {"replay": str(args.replay)},
        )
    try:
        repro = load_repro(args.replay)
    except (OSError, PlanError, ValueError) as error:
        print(
            f"error: {args.replay} is neither a trace JSONL nor a "
            f"repro file: {error}",
            file=sys.stderr,
        )
        return None
    algorithm = args.algorithm
    if algorithm is None:
        candidates = repro.algorithms or tuple(algorithm_names())
        algorithm = sorted(candidates)[0]
    recorder = TraceRecorder(max_events=1_000_000)
    driver = DriverLoop(
        algorithm=algorithm,
        n_processes=repro.plan.n_processes,
        fault_rng=derive_rng(0, "explain", "replay", algorithm),
        observers=[recorder],
    )
    try:
        driver.execute_schedule(driver_steps(repro.plan))
    except (InvariantViolation, SimulationError) as error:
        print(f"replay stopped early: {error}\n")
    labels = {
        "algorithm": algorithm,
        "processes": repro.plan.n_processes,
        "replay": str(args.replay),
    }
    return recorder, labels


def _check(args: argparse.Namespace) -> int:
    from repro.check import (
        EXPECT_VIOLATION,
        FuzzConfig,
        PlanError,
        ReproFile,
        check_plan,
        fuzz,
        load_repro,
        minimize,
        run_corpus,
        run_repro,
        violation_predicate,
        write_repro,
    )

    started = time.time()
    if args.replay is not None:
        try:
            repro = load_repro(args.replay)
        except (OSError, PlanError) as error:
            print(f"error: cannot load repro: {error}", file=sys.stderr)
            return 2
        met, report = run_repro(repro, args.algorithms)
        print(report.describe())
        status = "matches" if met else "DOES NOT match"
        print(f"expectation {repro.expect!r} {status} ({args.replay})")
        return 0 if met else 1

    if args.corpus is not None:
        result = run_corpus(args.corpus, args.algorithms)
        print(result.describe())
        print(f"[corpus done in {time.time() - started:.1f}s]")
        return 0 if result.ok else 1

    from repro.check import classify_report

    try:
        config = FuzzConfig(
            master_seed=args.seed,
            schedules=args.schedules,
            algorithms=tuple(args.algorithms) if args.algorithms else None,
            min_processes=args.min_processes,
            max_processes=args.max_processes,
            max_changes=args.max_changes,
            max_gap=args.max_gap,
            crash_weight=args.crash_weight,
            fault_classes=tuple(args.faults) if args.faults else (),
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    result = fuzz(config)
    print(result.describe())
    for failure in result.failures:
        plan = failure.plan
        if args.shrink:
            # A genuine (oracle-unsanctioned) bug must stay a genuine
            # bug while shrinking; expected breakage may shrink freely.
            shrunk = minimize(
                plan,
                violation_predicate(
                    result.algorithms,
                    require_unexpected=not failure.expected,
                ),
            )
            plan = shrunk.minimized
            print(
                f"schedule #{failure.index} minimized "
                f"{shrunk.original.cost()} -> {shrunk.minimized.cost()} "
                f"({shrunk.tests_run} replays): {plan.describe()}"
            )
        if args.save_repros is not None:
            # Replay the plan being saved (post-shrink) so the repro
            # carries the span-level explanation of *this* schedule.
            saved_report = check_plan(plan, result.algorithms)
            explanations = "; ".join(
                f"{verdict.algorithm} lost rounds: "
                + ", ".join(f"{k}={v}" for k, v in verdict.blame)
                for verdict in saved_report.failures
                if verdict.blame
            )
            if classify_report(saved_report):
                note = (
                    f"found by fuzzer seed={args.seed} "
                    f"schedule={failure.index}; expected violation: the "
                    f"{'/'.join(plan.faults.active_classes())} fault "
                    "oracle sanctions this breakage — it must stay "
                    "detected, it is not a bug"
                )
            else:
                note = (
                    f"found by fuzzer seed={args.seed} "
                    f"schedule={failure.index}; flip expect to 'pass' "
                    "once the underlying bug is fixed"
                )
            if explanations:
                note += f" [{explanations}]"
            path = write_repro(
                args.save_repros / f"seed{args.seed}_schedule{failure.index}.json",
                ReproFile(
                    plan=plan,
                    algorithms=result.algorithms,
                    expect=EXPECT_VIOLATION,
                    note=note,
                ),
            )
            print(f"repro written: {path}")
    print(f"[check done in {time.time() - started:.1f}s]")
    return 0 if result.ok else 1


def _bench(args: argparse.Namespace) -> int:
    from repro.bench import DEFAULT_REGRESSION_THRESHOLD, run_bench
    from repro.errors import BenchError

    threshold = (
        args.max_regression
        if args.max_regression is not None
        else DEFAULT_REGRESSION_THRESHOLD
    )
    try:
        comparisons = run_bench(
            scenario_names=args.scenarios or None,
            quick=args.quick,
            output_dir=args.output_dir,
            threshold=threshold,
            write=not args.no_write,
            repeats=args.repeats,
        )
    except BenchError as error:
        print(f"bench error: {error}", file=sys.stderr)
        return 2
    regressed = [c for c in comparisons if c.regressed]
    if regressed:
        names = ", ".join(c.scenario for c in regressed)
        print(f"bench FAILED: regression in {names}", file=sys.stderr)
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    raw = sys.argv[1:] if argv is None else list(argv)
    if raw and raw[0] == "gcs":
        # argparse's REMAINDER cannot start with an option-like token,
        # so forward everything after `gcs` to the proc runner directly.
        from repro.gcs.proc.__main__ import main as gcs_main

        return gcs_main(raw[1:])
    args = _build_parser().parse_args(raw)
    if args.command == "list":
        print("Experiments:")
        for spec_id in all_spec_ids():
            spec = SPECS[spec_id]
            print(f"  {spec_id:18s} {spec.paper_artifact}: {spec.title}")
        print("\nScales:")
        for scale in SCALES.values():
            print(f"  {scale.describe()}")
        return 0
    if args.command == "run":
        _run_one(
            args.experiment_id, args.scale, args.seed, args.csv,
            args.plot, args.workers, args.metrics_out,
            args.trace_out, args.spans_out, args.kernel,
        )
        return 0
    if args.command == "all":
        for spec_id in all_spec_ids():
            _run_one(
                spec_id, args.scale, args.seed, args.csv,
                args.plot, args.workers, args.metrics_out,
                args.trace_out, args.spans_out, args.kernel,
            )
        return 0
    if args.command == "compare":
        _compare(args)
        return 0
    if args.command == "trace":
        _trace(args)
        return 0
    if args.command == "profile":
        return _profile(args)
    if args.command == "verify":
        return _verify(args)
    if args.command == "soak":
        return _soak(args)
    if args.command == "check":
        return _check(args)
    if args.command == "explain":
        return _explain(args)
    if args.command == "bench":
        return _bench(args)
    if args.command == "serve":
        return run_serve(args)
    if args.command == "load":
        return run_load(args)
    if args.command == "telemetry":
        return run_telemetry(args)
    if args.command == "gcs":
        from repro.gcs.proc.__main__ import main as gcs_main

        return gcs_main(args.gcs_args)
    return 2  # pragma: no cover - argparse guards commands


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
