"""Dispatch: run any experiment spec and get its result object."""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from repro.errors import ExperimentError
from repro.obs import MetricsRegistry
from repro.experiments.ablation import AblationResult, run_ablation
from repro.experiments.ambiguous import AmbiguousFigure, run_ambiguous_figure
from repro.experiments.availability import AvailabilityFigure, run_availability_figure
from repro.experiments.longrun import LongRunSeries, run_longrun
from repro.experiments.extras import (
    BlockingTable,
    MessageSizeTable,
    RoundsTable,
    ScalingTable,
    run_blocking_table,
    run_msgsize_table,
    run_rounds_table,
    run_scaling_table,
)
from repro.experiments.spec import ExperimentSpec, Scale, get_scale, get_spec

ExperimentResult = Union[
    AvailabilityFigure, AmbiguousFigure, RoundsTable, ScalingTable,
    MessageSizeTable, BlockingTable, LongRunSeries, AblationResult,
]


def run_experiment(
    experiment_id: str,
    scale: Union[str, Scale] = "smoke",
    master_seed: int = 0,
    workers: int = 1,
    metrics: Optional[MetricsRegistry] = None,
    trace_dir: Optional[Path] = None,
    spans_dir: Optional[Path] = None,
    kernel: str = "scalar",
) -> ExperimentResult:
    """Run one paper artifact's experiment at the given scale.

    ``metrics`` (a :class:`repro.obs.MetricsRegistry`) collects
    campaign metrics for the campaign-backed kinds (availability and
    ambiguous figures); other kinds leave it untouched.  ``trace_dir``
    and ``spans_dir`` write per-case canonical trace/span JSONL for the
    availability figures (see
    :func:`~repro.experiments.availability.run_availability_figure`);
    other kinds ignore them.  ``kernel="batched"`` runs availability
    figures on the vectorized campaign kernel (exact same numbers;
    per-case scalar fallback); the other kinds need statistics the
    kernel does not collect and ignore the flag.
    """
    spec = get_spec(experiment_id)
    if isinstance(scale, str):
        scale = get_scale(scale)
    return run_experiment_spec(
        spec, scale, master_seed, workers, metrics, trace_dir, spans_dir,
        kernel=kernel,
    )


def run_experiment_spec(
    spec: ExperimentSpec,
    scale: Scale,
    master_seed: int = 0,
    workers: int = 1,
    metrics: Optional[MetricsRegistry] = None,
    trace_dir: Optional[Path] = None,
    spans_dir: Optional[Path] = None,
    kernel: str = "scalar",
) -> ExperimentResult:
    """Dispatch a resolved spec to the runner for its kind."""
    if spec.kind == "availability":
        return run_availability_figure(
            spec,
            scale,
            master_seed,
            workers=workers,
            metrics=metrics,
            trace_dir=trace_dir,
            spans_dir=spans_dir,
            kernel=kernel,
        )
    if spec.kind == "ambiguous":
        return run_ambiguous_figure(
            spec, scale, master_seed, workers=workers, metrics=metrics
        )
    if spec.kind == "rounds":
        return run_rounds_table(spec, scale, master_seed)
    if spec.kind == "scaling":
        return run_scaling_table(spec, scale, master_seed)
    if spec.kind == "msgsize":
        return run_msgsize_table(spec, scale, master_seed)
    if spec.kind == "blocking":
        return run_blocking_table(spec, scale, master_seed)
    if spec.kind == "longrun":
        return run_longrun(spec, scale, master_seed)
    if spec.kind == "ablation":
        return run_ablation(spec, scale, master_seed)
    raise ExperimentError(f"unknown experiment kind {spec.kind!r}")
