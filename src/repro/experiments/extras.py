"""Table experiments: §3.4 rounds, §4.1 scaling, §3.4/§5 message sizes."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.registry import algorithm_class
from repro.net.changes import UniformChangeGenerator
from repro.sim.campaign import CaseConfig, run_case
from repro.sim.driver import DriverLoop
from repro.sim.invariants import InvariantChecker
from repro.sim.rng import derive_rng
from repro.sim.stats import BlockingCollector, FormationTimeCollector
from repro.experiments.spec import ExperimentSpec, Scale


# ----------------------------------------------------------------------
# tab_rounds: message rounds to form a primary (§3.4).
# ----------------------------------------------------------------------


@dataclass
class RoundsRow:
    algorithm: str
    declared_rounds: int
    measured_mean_rounds: float
    measured_quiescence_rounds: float
    declared_rounds_with_pending: Optional[int] = None


@dataclass
class RoundsTable:
    spec: ExperimentSpec
    scale: Scale
    rows: List[RoundsRow] = field(default_factory=list)


def run_rounds_table(
    spec: ExperimentSpec, scale: Scale, master_seed: int = 0
) -> RoundsTable:
    """Measure rounds-to-form under calm conditions per algorithm.

    The driver injects widely separated partition/merge changes (no
    interruptions) and the :class:`FormationTimeCollector` measures how
    many rounds pass between each view's installation and its formation
    as a primary; quiescence rounds show protocol tails such as DFLS's
    confirm round.
    """
    table = RoundsTable(spec=spec, scale=scale)
    cycles = max(scale.runs // 10, 10)
    for algorithm in spec.algorithms:
        collector = FormationTimeCollector()
        fault_rng = derive_rng(master_seed, "rounds", algorithm)
        driver = DriverLoop(
            algorithm=algorithm,
            n_processes=scale.n_processes,
            fault_rng=fault_rng,
            change_generator=UniformChangeGenerator(),
            observers=[InvariantChecker(), collector],
        )
        quiescence_rounds: List[int] = []
        for _ in range(cycles):
            change = driver.change_generator.propose(driver.topology, fault_rng)
            driver.run_round(change)
            quiescence_rounds.append(driver.run_until_quiescent())
        cls = algorithm_class(algorithm)
        measured = collector.mean_rounds_to_form
        table.rows.append(
            RoundsRow(
                algorithm=algorithm,
                declared_rounds=cls.rounds_to_form,
                measured_mean_rounds=measured,
                measured_quiescence_rounds=sum(quiescence_rounds)
                / len(quiescence_rounds),
                declared_rounds_with_pending=getattr(
                    cls, "rounds_to_form_pending", None
                ),
            )
        )
    return table


# ----------------------------------------------------------------------
# tab_scaling: availability vs process count (§4.1).
# ----------------------------------------------------------------------


@dataclass
class ScalingTable:
    spec: ExperimentSpec
    scale: Scale
    rate: float = 4.0
    #: algorithm -> [(n_processes, availability %)].
    series: Dict[str, List[Tuple[int, float]]] = field(default_factory=dict)

    def spread(self, algorithm: str) -> float:
        """Max-min availability across process counts."""
        values = [percent for _, percent in self.series[algorithm]]
        return max(values) - min(values)


def run_scaling_table(
    spec: ExperimentSpec, scale: Scale, master_seed: int = 0
) -> ScalingTable:
    """§4.1: "The results obtained with 32 and 48 processes were almost
    identical to those obtained with 64."
    """
    table = ScalingTable(spec=spec, scale=scale)
    for algorithm in spec.algorithms:
        points: List[Tuple[int, float]] = []
        for n_processes in scale.scaling_process_counts:
            case = CaseConfig(
                algorithm=algorithm,
                n_processes=n_processes,
                n_changes=spec.n_changes,
                mean_rounds_between_changes=table.rate,
                runs=scale.runs,
                mode="fresh",
                master_seed=master_seed,
            )
            points.append((n_processes, run_case(case).availability_percent))
        table.series[algorithm] = points
    return table


# ----------------------------------------------------------------------
# tab_msgsize: piggyback sizes (§3.4, Chapter 5).
# ----------------------------------------------------------------------


@dataclass
class MessageSizeRow:
    algorithm: str
    max_bytes: float
    mean_bytes: float


@dataclass
class MessageSizeTable:
    spec: ExperimentSpec
    scale: Scale
    rows: List[MessageSizeRow] = field(default_factory=list)


def run_msgsize_table(
    spec: ExperimentSpec, scale: Scale, master_seed: int = 0
) -> MessageSizeTable:
    """§3.4: "The total amount of information which must be transmitted
    does not exceed two kilobytes during these 64-process trials."
    """
    table = MessageSizeTable(spec=spec, scale=scale)
    unstable_rate = 1.0  # sizes peak when interruptions pile sessions up
    for algorithm in spec.algorithms:
        case = CaseConfig(
            algorithm=algorithm,
            n_processes=scale.n_processes,
            n_changes=spec.n_changes,
            mean_rounds_between_changes=unstable_rate,
            runs=scale.runs,
            mode="fresh",
            master_seed=master_seed,
            collect_message_sizes=True,
        )
        result = run_case(case)
        table.rows.append(
            MessageSizeRow(
                algorithm=algorithm,
                max_bytes=result.message_max_bytes,
                mean_bytes=result.message_mean_bytes,
            )
        )
    return table


# ----------------------------------------------------------------------
# tab_blocking: the blocking period, measured directly (Ch. 1, §3.4).
# ----------------------------------------------------------------------


@dataclass
class BlockingRow:
    algorithm: str
    rate: float
    views_observed: int
    formation_rate_percent: float
    mean_rounds_to_form: float
    mean_blocked_lifetime: float
    terminally_blocked: int


@dataclass
class BlockingTable:
    spec: ExperimentSpec
    scale: Scale
    rows: List[BlockingRow] = field(default_factory=list)


def run_blocking_table(
    spec: ExperimentSpec, scale: Scale, master_seed: int = 0
) -> BlockingTable:
    """Measure how long views sit blocked, per algorithm and rate.

    "When interrupted, dynamic voting algorithms differ in the length
    of their blocking period" (thesis Ch. 1) — this experiment turns
    that qualitative statement into numbers: the fraction of installed
    views that ever become primaries, how long formation takes, and how
    long blocked views linger.
    """
    table = BlockingTable(spec=spec, scale=scale)
    for algorithm in spec.algorithms:
        for rate in (1.0, 4.0):
            collector = BlockingCollector()
            case = CaseConfig(
                algorithm=algorithm,
                n_processes=scale.n_processes,
                n_changes=spec.n_changes,
                mean_rounds_between_changes=rate,
                runs=scale.runs,
                mode="fresh",
                master_seed=master_seed,
            )
            run_case(case, observers=[collector])
            table.rows.append(
                BlockingRow(
                    algorithm=algorithm,
                    rate=rate,
                    views_observed=collector.views_observed,
                    formation_rate_percent=100.0 * collector.formation_rate,
                    mean_rounds_to_form=collector.mean_rounds_to_form,
                    mean_blocked_lifetime=collector.mean_blocked_lifetime,
                    terminally_blocked=collector.terminally_blocked,
                )
            )
    return table
