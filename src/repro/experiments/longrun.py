"""Extension experiment: availability over very long executions.

The thesis' cascading figures aggregate thousands of changes into one
percentage; its *text* makes a sharper claim — "if the 1-pending
algorithm is run for extensive periods of time, its availability
continues to decrease", while YKD/DFLS "show no degradation".  This
experiment makes the time axis explicit: one long cascading campaign is
split into consecutive windows and the availability of each window is
reported, exposing the trend the aggregated figures can only imply.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.sim.campaign import CaseConfig, run_case
from repro.experiments.spec import ExperimentSpec, Scale


@dataclass
class LongRunSeries:
    spec: ExperimentSpec
    scale: Scale
    windows: int
    runs_per_window: int
    rate: float
    #: algorithm -> availability % per consecutive window.
    series: Dict[str, List[float]] = field(default_factory=dict)

    def trend(self, algorithm: str) -> float:
        """Late-minus-early availability: negative means degradation.

        Compares the mean of the last half of the windows against the
        first half, which is robust to single-window noise.
        """
        values = self.series[algorithm]
        half = len(values) // 2
        early = sum(values[:half]) / half
        late = sum(values[half:]) / (len(values) - half)
        return late - early


def run_longrun(
    spec: ExperimentSpec, scale: Scale, master_seed: int = 0
) -> LongRunSeries:
    """One long cascading execution per algorithm, split into windows."""
    windows = 6
    runs_per_window = max(scale.runs // 3, 10)
    rate = 1.0  # frequent changes: where long-run effects bite
    result = LongRunSeries(
        spec=spec,
        scale=scale,
        windows=windows,
        runs_per_window=runs_per_window,
        rate=rate,
    )
    for algorithm in spec.algorithms:
        case = CaseConfig(
            algorithm=algorithm,
            n_processes=scale.n_processes,
            n_changes=spec.n_changes,
            mean_rounds_between_changes=rate,
            runs=windows * runs_per_window,
            mode="cascading",
            master_seed=master_seed,
        )
        outcomes = run_case(case).outcomes
        result.series[algorithm] = [
            100.0
            * sum(outcomes[w * runs_per_window : (w + 1) * runs_per_window])
            / runs_per_window
            for w in range(windows)
        ]
    return result
