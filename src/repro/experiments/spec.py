"""Experiment specifications: every table and figure of the thesis.

Each spec names a paper artifact (figure or claim), the workload that
regenerates it, and the modules that implement the pieces; the CLI and
the benchmark suite both run from these specs, so there is exactly one
source of truth for "what does Fig. 4-3 mean".

Scales
------
The thesis ran 1000 runs per case with 64 processes on a compute farm.
Scales let the same experiments run anywhere:

* ``smoke`` — seconds; CI-sized sanity check of every series' shape.
* ``small`` — a couple of minutes; clear trends, small error bars.
* ``medium`` — 32 processes (one of the thesis' own validation points),
  300 runs/case; minutes per figure with ``--workers``.
* ``paper`` — the thesis' parameters (64 processes, 1000 runs/case,
  rates 0..12); hours of CPU, intended for a full reproduction pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.registry import AMBIGUITY_ALGORITHMS, AVAILABILITY_ALGORITHMS
from repro.errors import ExperimentError


@dataclass(frozen=True)
class Scale:
    """Resource preset for an experiment run."""

    name: str
    n_processes: int
    runs: int
    rates: Tuple[float, ...]
    scaling_process_counts: Tuple[int, ...]

    def describe(self) -> str:
        """One-line summary shown by ``repro-experiments list``."""
        return (
            f"{self.name}: {self.n_processes} processes, {self.runs} runs/case, "
            f"rates {list(self.rates)}"
        )


SCALES: Dict[str, Scale] = {
    "smoke": Scale(
        name="smoke",
        n_processes=8,
        runs=40,
        rates=(0.0, 2.0, 6.0, 12.0),
        scaling_process_counts=(6, 8, 10),
    ),
    "small": Scale(
        name="small",
        n_processes=16,
        runs=150,
        rates=(0.0, 1.0, 2.0, 4.0, 6.0, 8.0, 12.0),
        scaling_process_counts=(8, 16, 24),
    ),
    "medium": Scale(
        name="medium",
        n_processes=32,
        runs=300,
        rates=(0.0, 1.0, 2.0, 4.0, 6.0, 8.0, 12.0),
        scaling_process_counts=(16, 32, 48),
    ),
    "paper": Scale(
        name="paper",
        n_processes=64,
        runs=1000,
        rates=(0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0),
        scaling_process_counts=(32, 48, 64),
    ),
}


def get_scale(name: str) -> Scale:
    """Look up a scale preset by name."""
    try:
        return SCALES[name]
    except KeyError:
        raise ExperimentError(
            f"unknown scale {name!r}; known: {', '.join(sorted(SCALES))}"
        ) from None


@dataclass(frozen=True)
class ExperimentSpec:
    """One reproducible paper artifact."""

    experiment_id: str
    title: str
    kind: str  # availability | ambiguous | rounds | scaling | msgsize | ablation
    paper_artifact: str
    n_changes: int = 6
    mode: str = "fresh"
    algorithms: Tuple[str, ...] = tuple(AVAILABILITY_ALGORITHMS)
    expected_shape: str = ""


_SPECS: List[ExperimentSpec] = [
    ExperimentSpec(
        experiment_id="fig4_1",
        title="System availability with 2 connectivity changes (fresh start)",
        kind="availability",
        paper_artifact="Figure 4-1",
        n_changes=2,
        mode="fresh",
        expected_shape=(
            "All algorithms near simple majority at rate 0; MR1p almost "
            "matches YKD (at most one session to resolve); availability "
            "rises with the mean gap."
        ),
    ),
    ExperimentSpec(
        experiment_id="fig4_2",
        title="System availability with 6 connectivity changes (fresh start)",
        kind="availability",
        paper_artifact="Figure 4-2",
        n_changes=6,
        mode="fresh",
        expected_shape=(
            "YKD > DFLS by a few percent; 1-pending and MR1p clearly lower."
        ),
    ),
    ExperimentSpec(
        experiment_id="fig4_3",
        title="System availability with 12 connectivity changes (fresh start)",
        kind="availability",
        paper_artifact="Figure 4-3",
        n_changes=12,
        mode="fresh",
        expected_shape=(
            "YKD/DFLS degrade gracefully; 1-pending and MR1p degrade "
            "drastically as changes multiply."
        ),
    ),
    ExperimentSpec(
        experiment_id="fig4_4",
        title="System availability with 2 cascading connectivity changes",
        kind="availability",
        paper_artifact="Figure 4-4",
        n_changes=2,
        mode="cascading",
        expected_shape=(
            "YKD/DFLS nearly match their fresh-start availability; "
            "1-pending falls further."
        ),
    ),
    ExperimentSpec(
        experiment_id="fig4_5",
        title="System availability with 6 cascading connectivity changes",
        kind="availability",
        paper_artifact="Figure 4-5",
        n_changes=6,
        mode="cascading",
        expected_shape=(
            "1-pending and MR1p can drop below simple majority under "
            "cascading faults."
        ),
    ),
    ExperimentSpec(
        experiment_id="fig4_6",
        title="System availability with 12 cascading connectivity changes",
        kind="availability",
        paper_artifact="Figure 4-6",
        n_changes=12,
        mode="cascading",
        expected_shape=(
            "The widest spread: YKD degrades gracefully over thousands of "
            "changes, 1-pending/MR1p collapse."
        ),
    ),
    ExperimentSpec(
        experiment_id="fig4_7",
        title="Ambiguous sessions retained when stable",
        kind="ambiguous",
        paper_artifact="Figure 4-7",
        mode="fresh",
        algorithms=tuple(AMBIGUITY_ALGORITHMS),
        expected_shape=(
            "Dominantly zero sessions; successful runs end with none; "
            "DFLS bars taller than YKD's purely because it succeeds less."
        ),
    ),
    ExperimentSpec(
        experiment_id="fig4_8",
        title="Ambiguous sessions sent over the network (at each change)",
        kind="ambiguous",
        paper_artifact="Figure 4-8",
        mode="fresh",
        algorithms=tuple(AMBIGUITY_ALGORITHMS),
        expected_shape=(
            "Small counts throughout; unoptimized YKD retains more than "
            "YKD; worst case single digits, far below the theoretical "
            "exponential."
        ),
    ),
    ExperimentSpec(
        experiment_id="tab_rounds",
        title="Message rounds required to form a primary (§3.4)",
        kind="rounds",
        paper_artifact="Section 3.4 comparison",
        expected_shape=(
            "YKD/unopt/1-pending: 2 rounds; DFLS: 3; MR1p: 2 clean / 5 "
            "with a pending session; simple majority: 0."
        ),
    ),
    ExperimentSpec(
        experiment_id="tab_scaling",
        title="Availability is insensitive to the process count (§4.1)",
        kind="scaling",
        paper_artifact="Section 4.1 (32/48/64 processes)",
        n_changes=6,
        expected_shape="Availability within a few points across process counts.",
    ),
    ExperimentSpec(
        experiment_id="tab_msgsize",
        title="State-broadcast sizes stay small (§3.4, §5)",
        kind="msgsize",
        paper_artifact="Section 3.4 / Chapter 5 (≈2 KB at 64 processes)",
        n_changes=12,
        algorithms=tuple(AMBIGUITY_ALGORITHMS),
        expected_shape="Maximum piggyback size ≲ 2 KB at 64 processes.",
    ),
    ExperimentSpec(
        experiment_id="tab_blocking",
        title="Blocking periods of interrupted views (Ch. 1, §3.4)",
        kind="blocking",
        paper_artifact="Chapter 1 / Section 3.4 (blocking-period discussion)",
        n_changes=8,
        expected_shape=(
            "1-pending and MR1p leave more views terminally blocked and "
            "form a smaller fraction of installed views than YKD/DFLS."
        ),
    ),
    ExperimentSpec(
        experiment_id="ext_longrun",
        title="Windowed availability over very long executions",
        kind="longrun",
        paper_artifact="Section 4.1 text (long-run degradation claims)",
        n_changes=8,
        algorithms=("ykd", "dfls", "one_pending", "mr1p"),
        expected_shape=(
            "1-pending's availability keeps falling window over window; "
            "YKD and DFLS stay flat."
        ),
    ),
    ExperimentSpec(
        experiment_id="ext_gcs_substrate",
        title="Cross-substrate validation on the group communication stack",
        kind="ablation",
        paper_artifact="Section 2.1 (portability of the interface) / methodology",
        n_changes=8,
        algorithms=("ykd", "dfls", "one_pending", "mr1p", "simple_majority"),
        expected_shape=(
            "The same availability orderings emerge on the negotiated "
            "GCS, whose interruption model (in-flight packet drops, "
            "multi-tick membership agreement) differs entirely from the "
            "driver's mid-round cut."
        ),
    ),
    ExperimentSpec(
        experiment_id="abl_never_formed",
        title="Ablation: the 'no member formed S' DELETE clause",
        kind="ablation",
        paper_artifact="Section 3.2.1 interpretation (see DESIGN.md)",
        n_changes=12,
        algorithms=("ykd", "ykd_aggressive", "ykd_unopt"),
        expected_shape=(
            "ykd == ykd_unopt per run; ykd_aggressive slightly more "
            "available (it deletes vacuous constraints)."
        ),
    ),
    ExperimentSpec(
        experiment_id="abl_rounds",
        title="Ablation: the cost of DFLS's extra round",
        kind="ablation",
        paper_artifact="Sections 3.2.2 / 4.1 (the ≈3% YKD-DFLS gap)",
        n_changes=6,
        algorithms=("ykd", "dfls"),
        expected_shape="YKD forms primaries in ~3% of runs where DFLS does not.",
    ),
    ExperimentSpec(
        experiment_id="abl_schedules",
        title="Extension: non-uniform change schedules (§5.1)",
        kind="ablation",
        paper_artifact="Section 5.1 future work",
        n_changes=12,
        algorithms=("ykd", "one_pending"),
        expected_shape=(
            "Bursty schedules hurt blocking algorithms more than the "
            "geometric schedule at the same mean."
        ),
    ),
    ExperimentSpec(
        experiment_id="abl_cut_model",
        title="Sensitivity to the mid-round cut probability",
        kind="ablation",
        paper_artifact="Methodology (DESIGN.md mid-round interruption note)",
        n_changes=12,
        algorithms=("ykd", "dfls", "one_pending"),
        expected_shape=(
            "The YKD > DFLS > 1-pending ordering holds at every cut "
            "probability; only absolute levels move."
        ),
    ),
    ExperimentSpec(
        experiment_id="abl_partition_shape",
        title="Sensitivity to the partition shape",
        kind="ablation",
        paper_artifact="Methodology (§2.2 'determined at random' split sizes)",
        n_changes=12,
        algorithms=("ykd", "one_pending", "simple_majority"),
        expected_shape=(
            "Singleton splits are mild, even splits are harsh, uniform "
            "sits between; orderings persist."
        ),
    ),
    ExperimentSpec(
        experiment_id="abl_crashes",
        title="Extension: crash/recovery fault model (§5.1)",
        kind="ablation",
        paper_artifact="Section 5.1 future work",
        n_changes=12,
        algorithms=("ykd", "one_pending", "mr1p"),
        expected_shape=(
            "Crashes of ambiguous-session members hit 1-pending hardest "
            "(it may need to hear from every member)."
        ),
    ),
]

SPECS: Dict[str, ExperimentSpec] = {spec.experiment_id: spec for spec in _SPECS}


def get_spec(experiment_id: str) -> ExperimentSpec:
    """Look up an experiment spec by its id (e.g. ``"fig4_3"``)."""
    try:
        return SPECS[experiment_id]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known: "
            f"{', '.join(sorted(SPECS))}"
        ) from None


def all_spec_ids() -> List[str]:
    """Every experiment id, in definition (paper) order."""
    return [spec.experiment_id for spec in _SPECS]
