"""Ablation and extension experiments.

These quantify the design choices DESIGN.md calls out and the §5.1
future-work items the library implements:

* ``abl_never_formed`` — the literal Fig. 3-3 DELETE clause versus the
  availability-neutral YKD (see DESIGN.md's interpretation notes);
* ``abl_rounds`` — how often YKD forms a primary where DFLS does not
  (the thesis' ≈3% gap, §4.1);
* ``abl_schedules`` — geometric vs deterministic vs bursty fault
  schedules at the same mean (§5.1);
* ``abl_crashes`` — the crash/recovery fault model (§5.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Tuple

from repro.net.changes import CrashRecoveryChangeGenerator, SkewedPartitionGenerator
from repro.net.schedule import BurstSchedule, DeterministicSchedule, GeometricSchedule
from repro.sim.campaign import CaseConfig, run_case
from repro.errors import ExperimentError
from repro.experiments.spec import ExperimentSpec, Scale


@dataclass
class AblationResult:
    spec: ExperimentSpec
    scale: Scale
    #: condition label -> algorithm -> availability %.
    availability: Dict[str, Dict[str, float]] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)


def _base_case(spec: ExperimentSpec, scale: Scale, master_seed: int) -> CaseConfig:
    return CaseConfig(
        algorithm=spec.algorithms[0],
        n_processes=scale.n_processes,
        n_changes=spec.n_changes,
        mean_rounds_between_changes=2.0,
        runs=scale.runs,
        mode="fresh",
        master_seed=master_seed,
    )


def run_ablation(
    spec: ExperimentSpec, scale: Scale, master_seed: int = 0
) -> AblationResult:
    """Dispatch an ablation/extension spec to its runner."""
    runner = _RUNNERS.get(spec.experiment_id)
    if runner is None:
        raise ExperimentError(f"no ablation runner for {spec.experiment_id}")
    return runner(spec, scale, master_seed)


def _run_never_formed(
    spec: ExperimentSpec, scale: Scale, master_seed: int
) -> AblationResult:
    result = AblationResult(spec=spec, scale=scale)
    base = _base_case(spec, scale, master_seed)
    outcomes: Dict[Tuple[str, float], List[bool]] = {}
    for rate in (0.0, 2.0):
        condition = f"rate={rate}"
        result.availability[condition] = {}
        for algorithm in spec.algorithms:
            case = replace(
                base, algorithm=algorithm, mean_rounds_between_changes=rate
            )
            case_result = run_case(case)
            result.availability[condition][algorithm] = (
                case_result.availability_percent
            )
            outcomes[(algorithm, rate)] = case_result.outcomes
    for rate in (0.0, 2.0):
        same = outcomes[("ykd", rate)] == outcomes[("ykd_unopt", rate)]
        result.notes.append(
            f"rate={rate}: ykd per-run identical to ykd_unopt: {same}"
        )
        aggressive_gain = sum(
            a and not b
            for a, b in zip(
                outcomes[("ykd_aggressive", rate)],
                outcomes[("ykd", rate)],
            )
        )
        result.notes.append(
            f"rate={rate}: runs where aggressive delete succeeds and YKD "
            f"does not: {aggressive_gain}/{scale.runs}"
        )
    return result


def _run_rounds_gap(
    spec: ExperimentSpec, scale: Scale, master_seed: int
) -> AblationResult:
    result = AblationResult(spec=spec, scale=scale)
    base = _base_case(spec, scale, master_seed)
    for rate in (2.0, 6.0):
        condition = f"rate={rate}"
        result.availability[condition] = {}
        case_outcomes = {}
        for algorithm in spec.algorithms:
            case_result = run_case(
                replace(base, algorithm=algorithm, mean_rounds_between_changes=rate)
            )
            result.availability[condition][algorithm] = (
                case_result.availability_percent
            )
            case_outcomes[algorithm] = case_result.outcomes
        ykd_only = sum(
            a and not b
            for a, b in zip(case_outcomes["ykd"], case_outcomes["dfls"])
        )
        dfls_only = sum(
            b and not a
            for a, b in zip(case_outcomes["ykd"], case_outcomes["dfls"])
        )
        result.notes.append(
            f"rate={rate}: YKD succeeds where DFLS fails in "
            f"{100.0 * ykd_only / scale.runs:.1f}% of runs "
            f"(reverse: {100.0 * dfls_only / scale.runs:.1f}%)"
        )
    return result


def _run_schedules(
    spec: ExperimentSpec, scale: Scale, master_seed: int
) -> AblationResult:
    result = AblationResult(spec=spec, scale=scale)
    base = _base_case(spec, scale, master_seed)
    mean = 4.0
    schedules = {
        "geometric": GeometricSchedule(mean),
        "deterministic": DeterministicSchedule(int(mean)),
        "burst(3)": BurstSchedule(burst_size=3, lull=int(3 * mean)),
    }
    for label, schedule in schedules.items():
        result.availability[label] = {}
        for algorithm in spec.algorithms:
            case = replace(base, algorithm=algorithm, schedule=schedule)
            result.availability[label][algorithm] = run_case(
                case
            ).availability_percent
    result.notes.append(
        f"all schedules share mean gap ≈ {mean} rounds between changes"
    )
    return result


def _run_crashes(
    spec: ExperimentSpec, scale: Scale, master_seed: int
) -> AblationResult:
    result = AblationResult(spec=spec, scale=scale)
    base = _base_case(spec, scale, master_seed)
    generators = {
        "partitions/merges only": None,
        "with crash/recovery (25%)": CrashRecoveryChangeGenerator(crash_weight=0.25),
    }
    for label, generator in generators.items():
        result.availability[label] = {}
        for algorithm in spec.algorithms:
            case = replace(base, algorithm=algorithm, change_generator=generator)
            result.availability[label][algorithm] = run_case(
                case
            ).availability_percent
    return result


def _run_gcs_substrate(
    spec: ExperimentSpec, scale: Scale, master_seed: int
) -> AblationResult:
    from repro.gcs.campaign import compare_on_gcs

    result = AblationResult(spec=spec, scale=scale)
    n_processes = min(scale.n_processes, 8)  # packet-level sim is costly
    for ticks in (2.0, 6.0):
        condition = f"mean {ticks:g} ticks between changes"
        results = compare_on_gcs(
            list(spec.algorithms),
            n_processes=n_processes,
            n_changes=spec.n_changes,
            mean_ticks_between_changes=ticks,
            runs=scale.runs,
            master_seed=master_seed,
        )
        result.availability[condition] = {
            algorithm: case.availability_percent
            for algorithm, case in results.items()
        }
    for condition, row in result.availability.items():
        ordering = row["ykd"] >= row["dfls"] >= row["one_pending"] - 3.0
        result.notes.append(
            f"{condition}: YKD >= DFLS >= 1-pending ordering holds: {ordering}"
        )
    return result


def _run_cut_model(
    spec: ExperimentSpec, scale: Scale, master_seed: int
) -> AblationResult:
    result = AblationResult(spec=spec, scale=scale)
    base = _base_case(spec, scale, master_seed)
    orderings_hold = True
    for cut in (0.25, 0.5, 0.75):
        condition = f"cut p={cut}"
        result.availability[condition] = {}
        for algorithm in spec.algorithms:
            case = replace(base, algorithm=algorithm, cut_probability=cut)
            result.availability[condition][algorithm] = run_case(
                case
            ).availability_percent
        row = result.availability[condition]
        orderings_hold = orderings_hold and (
            row["ykd"] >= row["one_pending"] - 2.0
        )
    result.notes.append(
        "YKD >= 1-pending at every cut probability: "
        f"{orderings_hold}"
    )
    return result


def _run_partition_shape(
    spec: ExperimentSpec, scale: Scale, master_seed: int
) -> AblationResult:
    result = AblationResult(spec=spec, scale=scale)
    base = _base_case(spec, scale, master_seed)
    for style in SkewedPartitionGenerator.STYLES:
        condition = f"splits: {style}"
        result.availability[condition] = {}
        for algorithm in spec.algorithms:
            case = replace(
                base,
                algorithm=algorithm,
                change_generator=SkewedPartitionGenerator(style=style),
            )
            result.availability[condition][algorithm] = run_case(
                case
            ).availability_percent
    singleton = result.availability["splits: singleton"]
    even = result.availability["splits: even"]
    result.notes.append(
        "singleton splits are gentler than even splits for YKD: "
        f"{singleton['ykd'] >= even['ykd']}"
    )
    return result


_RUNNERS = {
    "abl_never_formed": _run_never_formed,
    "abl_rounds": _run_rounds_gap,
    "abl_schedules": _run_schedules,
    "abl_crashes": _run_crashes,
    "abl_cut_model": _run_cut_model,
    "ext_gcs_substrate": _run_gcs_substrate,
    "abl_partition_shape": _run_partition_shape,
}
