"""Rendering of experiment results as ASCII tables and CSV files.

The thesis post-processed raw results with Perl and plotted with
Matlab; here the equivalent output is a text table per figure — the
same rows/series the paper plots — plus optional CSV files for external
plotting.
"""

from __future__ import annotations

import csv
import io
import math
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.registry import display_name
from repro.experiments.ablation import AblationResult
from repro.experiments.ambiguous import CHANGE_COUNTS, AmbiguousFigure
from repro.experiments.availability import AvailabilityFigure
from repro.experiments.longrun import LongRunSeries
from repro.experiments.extras import (
    BlockingTable,
    MessageSizeTable,
    RoundsTable,
    ScalingTable,
)

Renderable = Union[
    AvailabilityFigure, AmbiguousFigure, RoundsTable, ScalingTable,
    MessageSizeTable, BlockingTable, LongRunSeries, AblationResult,
]


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        return "-" if math.isnan(value) else f"{value:.1f}"
    return str(value)


def render_grid(
    title: str,
    column_headers: Sequence[str],
    rows: Sequence[Tuple[str, Sequence[object]]],
    row_header: str = "",
) -> str:
    """A plain fixed-width table."""
    headers = [row_header] + [str(header) for header in column_headers]
    body = [[label] + [_format_cell(v) for v in values] for label, values in rows]
    widths = [
        max(len(line[i]) for line in [headers] + body) for i in range(len(headers))
    ]
    out = io.StringIO()
    out.write(title + "\n")
    out.write("-" * len(title) + "\n")
    out.write("  ".join(h.rjust(w) for h, w in zip(headers, widths)) + "\n")
    for line in body:
        out.write("  ".join(c.rjust(w) for c, w in zip(line, widths)) + "\n")
    return out.getvalue()


# ----------------------------------------------------------------------
# Per-result renderers.
# ----------------------------------------------------------------------


def render_availability(
    figure: AvailabilityFigure, with_intervals: bool = True
) -> str:
    """Rows = mean rounds between changes, columns = algorithms.

    With ``with_intervals`` each cell carries its 95% Wilson half-width
    (``94.7 ±3.6``), so readers can judge which gaps are signal.
    """
    spec, scale = figure.spec, figure.scale
    algorithms = list(figure.series)

    def cell(algorithm: str, rate: float) -> object:
        percent = figure.at(algorithm, rate)
        if not with_intervals:
            return percent
        low, high = figure.interval_at(algorithm, rate)
        return f"{percent:.1f} ±{(high - low) / 2:.1f}"

    rows = [
        (
            f"{rate:g}",
            [cell(algorithm, rate) for algorithm in algorithms],
        )
        for rate in scale.rates
    ]
    unit = (
        "availability % ±95% Wilson half-width"
        if with_intervals
        else "availability %"
    )
    title = (
        f"{spec.paper_artifact}: {spec.title} "
        f"[{scale.n_processes} procs, {scale.runs} runs/case, {unit}]"
    )
    return render_grid(
        title,
        [display_name(a) for a in algorithms],
        rows,
        row_header="mean rounds",
    )


def render_ambiguous(figure: AmbiguousFigure) -> str:
    """One panel per change count, bars as percentage-by-count columns."""
    spec, scale = figure.spec, figure.scale
    stable = spec.experiment_id == "fig4_7"
    out = io.StringIO()
    for n_changes in CHANGE_COUNTS:
        rows = []
        for rate in scale.rates:
            values = []
            for algorithm in spec.algorithms:
                cell = figure.cell(n_changes, rate, algorithm)
                total = (
                    cell.stable_retained_percent
                    if stable
                    else cell.in_progress_retained_percent
                )
                values.append(total)
            rows.append((f"{rate:g}", values))
        title = (
            f"{spec.paper_artifact} panel: {n_changes} changes — % of "
            f"{'runs (stable)' if stable else 'changes (in progress)'} "
            "retaining ambiguous sessions"
        )
        out.write(
            render_grid(
                title,
                [display_name(a) for a in spec.algorithms],
                rows,
                row_header="mean rounds",
            )
        )
        out.write("\n")
    out.write("Maximum sessions ever observed: ")
    out.write(
        ", ".join(
            f"{display_name(a)}={figure.max_observed[a]}" for a in spec.algorithms
        )
    )
    out.write("\n")
    return out.getvalue()


def render_rounds(table: RoundsTable) -> str:
    """The §3.4 message-rounds comparison as a table."""
    rows = [
        (
            display_name(row.algorithm),
            [
                row.declared_rounds,
                row.measured_mean_rounds,
                row.measured_quiescence_rounds,
                row.declared_rounds_with_pending or "-",
            ],
        )
        for row in table.rows
    ]
    return render_grid(
        f"{table.spec.paper_artifact}: {table.spec.title}",
        ["declared", "measured (to primary)", "measured (to quiet)", "with pending"],
        rows,
        row_header="algorithm",
    )


def render_scaling(table: ScalingTable) -> str:
    """Availability by process count, one row per algorithm."""
    counts = [n for n, _ in next(iter(table.series.values()))]
    rows = [
        (
            display_name(algorithm),
            [percent for _, percent in points] + [table.spread(algorithm)],
        )
        for algorithm, points in table.series.items()
    ]
    return render_grid(
        f"{table.spec.paper_artifact}: availability % by process count "
        f"(rate={table.rate:g}, {table.spec.n_changes} changes)",
        [f"n={n}" for n in counts] + ["spread"],
        rows,
        row_header="algorithm",
    )


def render_msgsize(table: MessageSizeTable) -> str:
    """Estimated piggyback sizes, one row per algorithm."""
    rows = [
        (display_name(row.algorithm), [row.max_bytes, row.mean_bytes])
        for row in table.rows
    ]
    return render_grid(
        f"{table.spec.paper_artifact}: piggyback sizes at "
        f"{table.scale.n_processes} processes (bytes, estimated)",
        ["max", "mean"],
        rows,
        row_header="algorithm",
    )


def render_blocking(table: BlockingTable) -> str:
    """Blocking-period statistics, one row per algorithm × rate."""
    rows = [
        (
            f"{display_name(row.algorithm)} @ rate {row.rate:g}",
            [
                row.views_observed,
                row.formation_rate_percent,
                row.mean_rounds_to_form,
                row.mean_blocked_lifetime,
                row.terminally_blocked,
            ],
        )
        for row in table.rows
    ]
    return render_grid(
        f"{table.spec.paper_artifact}: {table.spec.title}",
        ["views", "formed %", "rounds to form", "blocked lifetime", "terminal"],
        rows,
        row_header="algorithm",
    )


def render_longrun(series: LongRunSeries) -> str:
    """Windowed long-run availability plus the per-algorithm trend."""
    algorithms = list(series.series)
    rows = [
        (
            f"window {w} (runs {w * series.runs_per_window}"
            f"-{(w + 1) * series.runs_per_window - 1})",
            [series.series[a][w] for a in algorithms],
        )
        for w in range(series.windows)
    ]
    rows.append(
        ("trend (late - early)", [series.trend(a) for a in algorithms])
    )
    return render_grid(
        f"{series.spec.paper_artifact}: {series.spec.title} "
        f"[cascading, rate={series.rate:g}, availability %]",
        [display_name(a) for a in algorithms],
        rows,
        row_header="window",
    )


def render_ablation(result: AblationResult) -> str:
    """Condition × algorithm availability grid plus runner notes."""
    conditions = list(result.availability)
    algorithms = list(next(iter(result.availability.values())))
    rows = [
        (
            condition,
            [result.availability[condition][a] for a in algorithms],
        )
        for condition in conditions
    ]
    out = render_grid(
        f"{result.spec.paper_artifact}: {result.spec.title} [availability %]",
        [display_name(a) for a in algorithms],
        rows,
        row_header="condition",
    )
    if result.notes:
        out += "".join(f"note: {note}\n" for note in result.notes)
    return out


def render(result: Renderable) -> str:
    """Render any experiment result to its text table."""
    if isinstance(result, AvailabilityFigure):
        return render_availability(result)
    if isinstance(result, AmbiguousFigure):
        return render_ambiguous(result)
    if isinstance(result, RoundsTable):
        return render_rounds(result)
    if isinstance(result, ScalingTable):
        return render_scaling(result)
    if isinstance(result, MessageSizeTable):
        return render_msgsize(result)
    if isinstance(result, BlockingTable):
        return render_blocking(result)
    if isinstance(result, LongRunSeries):
        return render_longrun(result)
    if isinstance(result, AblationResult):
        return render_ablation(result)
    raise TypeError(f"cannot render {type(result).__name__}")


# ----------------------------------------------------------------------
# CSV export.
# ----------------------------------------------------------------------


def write_ambiguous_csv(figure: AmbiguousFigure, directory: Path) -> Path:
    """Write an ambiguous-session figure's cells as CSV; returns the path."""
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{figure.spec.experiment_id}.csv"
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["n_changes", "mean_rounds", "algorithm",
             "stable_retained_percent", "in_progress_retained_percent",
             "max_observed"]
        )
        for (n_changes, rate, algorithm), cell in sorted(
            figure.cells.items(), key=lambda kv: (kv[0][0], kv[0][1], kv[0][2])
        ):
            writer.writerow(
                [n_changes, rate, algorithm,
                 f"{cell.stable_retained_percent:.2f}",
                 f"{cell.in_progress_retained_percent:.2f}",
                 cell.max_observed]
            )
    return path


def write_availability_csv(figure: AvailabilityFigure, directory: Path) -> Path:
    """Write one availability figure's series as CSV; returns the path."""
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{figure.spec.experiment_id}.csv"
    algorithms = list(figure.series)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["mean_rounds_between_changes"] + algorithms)
        for rate in figure.scale.rates:
            writer.writerow(
                [rate] + [figure.at(algorithm, rate) for algorithm in algorithms]
            )
    return path
