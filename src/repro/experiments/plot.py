"""ASCII rendering of the thesis' figures.

The thesis plotted its results with Matlab; this module draws the same
series as terminal line charts (availability figures) and bar panels
(ambiguous-session figures), so a full reproduction can be eyeballed
without leaving the shell.

Charts are deliberately plain: a fixed-size grid of characters, one
marker per algorithm (the legend maps markers to names), y axis in
percent.  Collisions between series at the same cell show the marker of
the later-listed algorithm; exact numbers live in the table renderer.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core.registry import display_name
from repro.experiments.ambiguous import CHANGE_COUNTS, AmbiguousFigure
from repro.experiments.availability import AvailabilityFigure

#: Markers follow the thesis legend order: YKD, DFLS, 1-pending, MR1p,
#: simple majority (thesis uses triangle/plus/diamond/circle/nabla).
MARKERS = "A+doV*x#"


def _scale_to_rows(percent: float, height: int, y_min: float, y_max: float) -> int:
    """Map a percentage to a grid row (0 = bottom)."""
    if y_max <= y_min:
        return 0
    fraction = (percent - y_min) / (y_max - y_min)
    fraction = min(1.0, max(0.0, fraction))
    return round(fraction * (height - 1))


def plot_availability(
    figure: AvailabilityFigure,
    width: int = 64,
    height: int = 18,
    y_min: float = 40.0,
    y_max: float = 100.0,
) -> str:
    """Draw one availability figure as an ASCII chart.

    The y range defaults to the thesis' own axes (40-100%).
    """
    algorithms = list(figure.series)
    rates = figure.rates
    if len(rates) < 2:
        raise ValueError("need at least two rates to draw a line chart")
    grid = [[" "] * width for _ in range(height)]

    def column(rate: float) -> int:
        span = max(rates) - min(rates)
        fraction = (rate - min(rates)) / span if span else 0.0
        return round(fraction * (width - 1))

    for index, algorithm in enumerate(algorithms):
        marker = MARKERS[index % len(MARKERS)]
        points = sorted(figure.series[algorithm])
        # Mark data points, then connect neighbours with interpolation.
        for (rate_a, pct_a), (rate_b, pct_b) in zip(points, points[1:]):
            col_a, col_b = column(rate_a), column(rate_b)
            for col in range(col_a, col_b + 1):
                if col_b == col_a:
                    pct = pct_a
                else:
                    t = (col - col_a) / (col_b - col_a)
                    pct = pct_a + t * (pct_b - pct_a)
                row = _scale_to_rows(pct, height, y_min, y_max)
                char = marker if col in (col_a, col_b) else "."
                if grid[height - 1 - row][col] == " " or char != ".":
                    grid[height - 1 - row][col] = char

    lines: List[str] = []
    title = f"{figure.spec.paper_artifact}: {figure.spec.title}"
    lines.append(title)
    for row_index, row in enumerate(grid):
        y_value = y_max - (y_max - y_min) * row_index / (height - 1)
        label = f"{y_value:5.0f}% |" if row_index % 3 == 0 else "       |"
        lines.append(label + "".join(row))
    lines.append("       +" + "-" * width)
    x_labels = "        "
    for rate in rates:
        position = column(rate) + 8
        text = f"{rate:g}"
        if position + len(text) > len(x_labels):
            x_labels = x_labels.ljust(position) + text
    lines.append(x_labels)
    lines.append("        mean message rounds between connectivity changes")
    legend = "  ".join(
        f"{MARKERS[i % len(MARKERS)]}={display_name(a)}"
        for i, a in enumerate(algorithms)
    )
    lines.append("legend: " + legend)
    return "\n".join(lines)


def plot_ambiguous(figure: AmbiguousFigure, bar_width: int = 40) -> str:
    """Draw an ambiguous-session figure as horizontal bar panels."""
    stable = figure.spec.experiment_id == "fig4_7"
    lines: List[str] = [
        f"{figure.spec.paper_artifact}: {figure.spec.title}",
        f"(bar = % of {'runs' if stable else 'changes'} retaining any "
        "ambiguous session)",
    ]
    for n_changes in CHANGE_COUNTS:
        lines.append(f"\n-- {n_changes} connectivity changes --")
        for rate in figure.scale.rates:
            lines.append(f" mean rounds {rate:g}:")
            for algorithm in figure.spec.algorithms:
                cell = figure.cell(n_changes, rate, algorithm)
                percent = (
                    cell.stable_retained_percent
                    if stable
                    else cell.in_progress_retained_percent
                )
                filled = round(percent / 100.0 * bar_width)
                bar = "#" * filled + "." * (bar_width - filled)
                lines.append(
                    f"   {display_name(algorithm):>16s} |{bar}| {percent:5.1f}%"
                )
    return "\n".join(lines)
