"""Availability figures: Figs. 4-1 through 4-6.

Each figure fixes a number of connectivity changes and a run protocol
(fresh start or cascading) and sweeps the mean number of message rounds
between changes, plotting the percentage of runs that end with a live
primary component, for the five studied algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.obs import MetricsRegistry
from repro.sim.campaign import CaseConfig, run_case
from repro.sim.parallel import run_cases_parallel
from repro.experiments.spec import ExperimentSpec, Scale


@dataclass
class AvailabilityFigure:
    """The data behind one availability figure."""

    spec: ExperimentSpec
    scale: Scale
    #: algorithm -> [(mean rounds between changes, availability %)].
    series: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)

    def at(self, algorithm: str, rate: float) -> float:
        """Availability % of one algorithm at one swept rate."""
        for point_rate, percent in self.series[algorithm]:
            if point_rate == rate:
                return percent
        raise KeyError(f"no point at rate {rate} for {algorithm}")

    def interval_at(
        self, algorithm: str, rate: float, confidence: float = 0.95
    ) -> Tuple[float, float]:
        """Wilson confidence interval (as percentages) for one point.

        Reconstructed from the percentage and the per-case run count —
        exact, because percentages are successes/runs by construction.
        """
        from repro.analysis import wilson_interval

        percent = self.at(algorithm, rate)
        successes = round(percent * self.scale.runs / 100.0)
        low, high = wilson_interval(successes, self.scale.runs, confidence)
        return 100.0 * low, 100.0 * high

    @property
    def rates(self) -> List[float]:
        return list(self.scale.rates)


def run_availability_figure(
    spec: ExperimentSpec,
    scale: Scale,
    master_seed: int = 0,
    check_invariants: bool = True,
    workers: int = 1,
    metrics: Optional[MetricsRegistry] = None,
    trace_dir: Optional[Path] = None,
    spans_dir: Optional[Path] = None,
    kernel: str = "scalar",
) -> AvailabilityFigure:
    """Regenerate one of Figs. 4-1..4-6 at the given scale.

    Every algorithm runs against the identical fault sequences (the
    fault RNG label excludes the algorithm name), exactly as the thesis
    did.  ``workers > 1`` spreads the algorithm × rate case grid over a
    process pool (results are identical to a serial run).  Passing a
    ``metrics`` registry collects campaign metrics for every case into
    it (merged in grid order, so the registry is identical whatever the
    worker count).  ``trace_dir``/``spans_dir`` write one canonical
    JSONL artifact per case (the full event trace, resp. the
    reconstructed causal spans); recording observers cannot cross
    process boundaries, so either directory forces the serial path
    regardless of ``workers``.  ``kernel="batched"`` regenerates the
    figure on the vectorized kernel of :mod:`repro.sim.batch` — exact
    same numbers, much faster — with per-case scalar fallback for
    anything outside the batched surface (cascading figures, metrics
    collection, tracing).
    """
    figure = AvailabilityFigure(spec=spec, scale=scale)
    grid = [
        (algorithm, rate)
        for algorithm in spec.algorithms
        for rate in scale.rates
    ]
    configs = [
        CaseConfig(
            algorithm=algorithm,
            n_processes=scale.n_processes,
            n_changes=spec.n_changes,
            mean_rounds_between_changes=rate,
            runs=scale.runs,
            mode=spec.mode,
            master_seed=master_seed,
            check_invariants=check_invariants,
            collect_metrics=metrics is not None,
        )
        for algorithm, rate in grid
    ]
    if trace_dir is None and spans_dir is None:
        results = run_cases_parallel(configs, workers=workers, kernel=kernel)
    else:
        results = [
            _run_case_recorded(
                spec, config, algorithm, rate, trace_dir, spans_dir
            )
            for (algorithm, rate), config in zip(grid, configs)
        ]
    for (algorithm, rate), result in zip(grid, results):
        figure.series.setdefault(algorithm, []).append(
            (rate, result.availability_percent)
        )
        if metrics is not None and result.metrics is not None:
            metrics.merge(result.metrics)
    return figure


def _run_case_recorded(
    spec: ExperimentSpec,
    config: CaseConfig,
    algorithm: str,
    rate: float,
    trace_dir: Optional[Path],
    spans_dir: Optional[Path],
):
    """One case with trace/span recording, written as per-case JSONL."""
    from repro.obs.causal import CausalObserver, write_spans_jsonl
    from repro.sim.trace import TraceRecorder, write_trace_jsonl

    observers = []
    recorder = causal = None
    if trace_dir is not None:
        recorder = TraceRecorder(max_events=1_000_000)
        observers.append(recorder)
    if spans_dir is not None:
        causal = CausalObserver()
        observers.append(causal)
    result = run_case(config, observers=observers)
    stem = f"{spec.experiment_id}_{algorithm}_rate{rate:g}"
    if recorder is not None:
        write_trace_jsonl(recorder, Path(trace_dir) / f"{stem}.trace.jsonl")
    if causal is not None:
        write_spans_jsonl(
            causal.finalize(), Path(spans_dir) / f"{stem}.spans.jsonl"
        )
    return result
