"""Experiment harness reproducing every table and figure of the thesis."""

from repro.experiments.ablation import AblationResult, run_ablation
from repro.experiments.ambiguous import (
    CHANGE_COUNTS,
    AmbiguousCell,
    AmbiguousFigure,
    run_ambiguous_figure,
)
from repro.experiments.availability import (
    AvailabilityFigure,
    run_availability_figure,
)
from repro.experiments.extras import (
    BlockingTable,
    MessageSizeTable,
    RoundsTable,
    ScalingTable,
    run_blocking_table,
    run_msgsize_table,
    run_rounds_table,
    run_scaling_table,
)
from repro.experiments.report import (
    render,
    write_ambiguous_csv,
    write_availability_csv,
)
from repro.experiments.runner import ExperimentResult, run_experiment
from repro.experiments.spec import (
    SCALES,
    SPECS,
    ExperimentSpec,
    Scale,
    all_spec_ids,
    get_scale,
    get_spec,
)

__all__ = [
    "AblationResult",
    "AmbiguousCell",
    "AmbiguousFigure",
    "AvailabilityFigure",
    "BlockingTable",
    "CHANGE_COUNTS",
    "ExperimentResult",
    "ExperimentSpec",
    "MessageSizeTable",
    "RoundsTable",
    "SCALES",
    "SPECS",
    "Scale",
    "ScalingTable",
    "all_spec_ids",
    "get_scale",
    "get_spec",
    "render",
    "run_ablation",
    "run_ambiguous_figure",
    "run_blocking_table",
    "run_availability_figure",
    "run_experiment",
    "run_msgsize_table",
    "run_rounds_table",
    "run_scaling_table",
    "write_ambiguous_csv",
    "write_availability_csv",
]
