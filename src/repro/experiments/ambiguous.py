"""Ambiguous-session figures: Figs. 4-7 and 4-8 (§4.2).

For YKD, unoptimized YKD and DFLS, and for 2/6/12 connectivity changes
across the rate sweep, measure how many ambiguous sessions one
monitored process retains — at the stable end of each run (Fig. 4-7)
and at the moment of each connectivity change, i.e. what must travel in
the next state broadcast (Fig. 4-8).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs import MetricsRegistry
from repro.sim.campaign import CaseConfig, run_case
from repro.sim.parallel import run_cases_parallel
from repro.experiments.spec import ExperimentSpec, Scale

#: The thesis plots these three panels in each of Figs. 4-7/4-8.
CHANGE_COUNTS: Tuple[int, ...] = (2, 6, 12)


@dataclass
class AmbiguousCell:
    """One bar of the figure: a histogram of retained-session counts."""

    algorithm: str
    n_changes: int
    rate: float
    #: count -> % of samples showing that many sessions (zero included).
    stable: Dict[int, float] = field(default_factory=dict)
    in_progress: Dict[int, float] = field(default_factory=dict)
    max_observed: int = 0

    @staticmethod
    def _percent_retained(histogram: Dict[int, float]) -> float:
        return sum(pct for count, pct in histogram.items() if count > 0)

    @property
    def stable_retained_percent(self) -> float:
        """Total bar height in Fig. 4-7: % of runs retaining any session."""
        return self._percent_retained(self.stable)

    @property
    def in_progress_retained_percent(self) -> float:
        """Total bar height in Fig. 4-8."""
        return self._percent_retained(self.in_progress)


@dataclass
class AmbiguousFigure:
    spec: ExperimentSpec
    scale: Scale
    #: (n_changes, rate, algorithm) -> cell.
    cells: Dict[Tuple[int, float, str], AmbiguousCell] = field(default_factory=dict)
    max_observed: Dict[str, int] = field(default_factory=dict)

    def cell(self, n_changes: int, rate: float, algorithm: str) -> AmbiguousCell:
        """The histogram cell for one panel position."""
        return self.cells[(n_changes, rate, algorithm)]


def _to_percentages(histogram: Dict[int, int]) -> Dict[int, float]:
    total = sum(histogram.values())
    if total == 0:
        return {}
    return {
        count: 100.0 * occurrences / total
        for count, occurrences in sorted(histogram.items())
    }


def run_ambiguous_figure(
    spec: ExperimentSpec,
    scale: Scale,
    master_seed: int = 0,
    check_invariants: bool = True,
    workers: int = 1,
    metrics: Optional[MetricsRegistry] = None,
) -> AmbiguousFigure:
    """Regenerate Fig. 4-7 / Fig. 4-8 data at the given scale.

    One campaign collects both the stable and the in-progress
    histograms; the two figure specs render different slices of the
    same data, as in the thesis.  ``workers > 1`` spreads the case grid
    over a process pool.  Passing a ``metrics`` registry collects each
    case's campaign metrics into it, merged in grid order.
    """
    figure = AmbiguousFigure(spec=spec, scale=scale)
    grid = [
        (algorithm, n_changes, rate)
        for algorithm in spec.algorithms
        for n_changes in CHANGE_COUNTS
        for rate in scale.rates
    ]
    configs = [
        CaseConfig(
            algorithm=algorithm,
            n_processes=scale.n_processes,
            n_changes=n_changes,
            mean_rounds_between_changes=rate,
            runs=scale.runs,
            mode=spec.mode,
            master_seed=master_seed,
            check_invariants=check_invariants,
            collect_ambiguous=True,
            collect_metrics=metrics is not None,
        )
        for algorithm, n_changes, rate in grid
    ]
    results = run_cases_parallel(configs, workers=workers)
    for (algorithm, n_changes, rate), result in zip(grid, results):
        if metrics is not None and result.metrics is not None:
            metrics.merge(result.metrics)
        cell = AmbiguousCell(
            algorithm=algorithm,
            n_changes=n_changes,
            rate=rate,
            stable=_to_percentages(result.ambiguous_stable),
            in_progress=_to_percentages(result.ambiguous_in_progress),
            max_observed=result.ambiguous_max,
        )
        figure.cells[(n_changes, rate, algorithm)] = cell
        figure.max_observed[algorithm] = max(
            figure.max_observed.get(algorithm, 0), result.ambiguous_max
        )
    return figure
