"""The unified observer protocol and its dispatch bus.

Everything the simulator can report — driver rounds, broadcasts,
connectivity changes, campaign lifecycles, group-communication ticks —
is published through one :class:`Subscriber` protocol.  A subscriber
overrides the hooks it cares about and attaches through the single
``observers=[...]`` parameter of :class:`~repro.sim.driver.DriverLoop`,
:func:`~repro.sim.campaign.run_case` or
:class:`~repro.gcs.stack.GCSCluster`; the statistics collectors, the
trace recorder and the invariant checker are all ordinary subscribers.

Dispatch is pay-for-what-you-use: an :class:`EventBus` snapshots, per
hook, the bound methods of exactly the subscribers whose *class*
overrides that hook, so a publisher's cost for an unwatched event is an
iteration over an empty tuple.  This is what keeps the disabled-observer
overhead of the simulation fast path near zero.

Subscribers are dispatched in attachment order.  Hooks that observe the
same moment (e.g. every ``on_round``) therefore run deterministically,
which the byte-identity guarantees of ``repro.sim.trace`` rely on.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Tuple


class Subscriber:
    """Base observer: override any subset of the hooks below.

    Hook arguments are the live publisher objects (a driver loop, a
    GCS cluster, a case config/result) — subscribers read whatever
    state they need from them and must not mutate it.  The base
    implementations are no-ops, and the :class:`EventBus` never calls
    a hook a subclass did not override.
    """

    # ------------------------------------------------------------------
    # Driver lifecycle (published by repro.sim.driver.DriverLoop).
    # ------------------------------------------------------------------

    def on_run_start(self, driver: Any) -> None:
        """A new run begins (fresh or cascading)."""

    def on_round(self, driver: Any) -> None:
        """A round completed (after deliveries and view installation)."""

    def on_change(self, driver: Any, change: Any) -> None:
        """A connectivity change was injected this round."""

    def on_broadcast(self, driver: Any, sender: int, message: Any) -> None:
        """A process broadcast a message within its component."""

    def on_quiescence(self, driver: Any) -> None:
        """The run drained to quiescence (before ``on_run_end``)."""

    def on_run_end(self, driver: Any) -> None:
        """The run reached its end state."""

    # ------------------------------------------------------------------
    # Campaign lifecycle (published by repro.sim.campaign.run_case).
    # ------------------------------------------------------------------

    def on_case_start(self, config: Any) -> None:
        """A campaign case is about to execute its runs."""

    def on_case_end(self, result: Any) -> None:
        """A campaign case finished; ``result`` is its CaseResult."""

    # ------------------------------------------------------------------
    # Exhaustive exploration (published by repro.sim.explore.explore).
    # ------------------------------------------------------------------

    def on_explore_start(self, result: Any) -> None:
        """An exhaustive exploration begins; ``result`` is the live
        (still-empty) ExplorationResult being filled."""

    def on_explore_progress(self, result: Any, stats: Any) -> None:
        """Periodic exploration progress (serial mode only): the live
        ExplorationResult so far plus its ExploreStats counters."""

    def on_explore_end(self, result: Any) -> None:
        """The exploration finished; ``result`` is final."""

    # ------------------------------------------------------------------
    # Group communication (published by repro.gcs.stack.GCSCluster).
    # ------------------------------------------------------------------

    def on_gcs_tick(self, cluster: Any) -> None:
        """One lock-step tick of a GCS cluster completed."""

    def on_gcs_event(self, cluster: Any, pid: int, event: Any) -> None:
        """A stack raised a view-installation or delivery event."""


#: Every hook name of the protocol, in publication order.
HOOK_NAMES: Tuple[str, ...] = (
    "on_run_start",
    "on_round",
    "on_change",
    "on_broadcast",
    "on_quiescence",
    "on_run_end",
    "on_case_start",
    "on_case_end",
    "on_explore_start",
    "on_explore_progress",
    "on_explore_end",
    "on_gcs_tick",
    "on_gcs_event",
)


def overrides_hook(subscriber: Subscriber, hook_name: str) -> bool:
    """Does this subscriber's class override the named hook?

    The check is by function identity against :class:`Subscriber`, so
    an intermediate base that merely inherits the no-op does not count
    as an override — only a class that actually redefines the method
    pays its dispatch cost.
    """
    return getattr(type(subscriber), hook_name) is not getattr(
        Subscriber, hook_name
    )


class EventBus:
    """Dispatch snapshots for a fixed set of subscribers.

    The bus precomputes, for every hook, the tuple of bound methods of
    the subscribers that override it (`hooks("on_round")` etc.), in
    attachment order.  Publishers fetch a tuple once and iterate it in
    their hot loop; an event nobody watches costs one empty-tuple
    iteration.

    Buses are cheap to build (a driver constructs one per run in
    fresh-start campaigns) and intentionally simple: subscribing after
    construction rebuilds the snapshots, and there is no unsubscribe —
    a bus lives exactly as long as its publisher.
    """

    __slots__ = ("_subscribers", "_hooks")

    def __init__(self, subscribers: Iterable[Subscriber] = ()) -> None:
        self._subscribers: List[Subscriber] = []
        self._hooks = {name: () for name in HOOK_NAMES}
        for subscriber in subscribers:
            self.subscribe(subscriber)

    def subscribe(self, subscriber: Subscriber) -> None:
        """Attach one subscriber and refresh the dispatch snapshots."""
        self._subscribers.append(subscriber)
        for name in HOOK_NAMES:
            if overrides_hook(subscriber, name):
                self._hooks[name] = self._hooks[name] + (
                    getattr(subscriber, name),
                )

    @property
    def subscribers(self) -> Tuple[Subscriber, ...]:
        """Every attached subscriber, in attachment order."""
        return tuple(self._subscribers)

    def hooks(self, name: str) -> Tuple[Callable[..., None], ...]:
        """The bound methods overriding one hook, in attachment order."""
        return self._hooks[name]

    def publish(self, name: str, *args: Any) -> None:
        """Call every override of one hook (convenience, not hot path).

        Publishers with a hot loop should fetch :meth:`hooks` once and
        iterate the tuple themselves instead of paying the dict lookup
        per event.
        """
        for hook in self._hooks[name]:
            hook(*args)

    def __len__(self) -> int:
        return len(self._subscribers)
