"""Campaign metrics collection: a subscriber that feeds a registry.

:class:`CampaignMetrics` is the bridge between the event bus and the
metrics registry — attach one to ``run_case(..., observers=[...])`` (or
set ``CaseConfig.collect_metrics``) and the campaign's execution facts
accumulate as labelled series:

========================  =========  ====================================
series                    type       meaning
========================  =========  ====================================
``runs_total``            counter    runs executed
``runs_available``        counter    runs ending with a live primary
``rounds_total``          counter    driver rounds executed
``changes_total``         counter    connectivity changes injected
``changes_by_kind``       counter    per change type (label ``change``)
``broadcasts_total``      counter    broadcasts observed
``run_rounds``            histogram  rounds per run
``run_changes``           histogram  changes per run
========================  =========  ====================================

Every series carries the case labels (algorithm, mode, processes,
changes, rate), so registries merged across a whole figure keep each
case's numbers separate.  All observations are integers, which makes
shard-merged registries bit-identical to serial ones (see
``repro.obs.metrics``).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.obs.bus import Subscriber
from repro.obs.metrics import Counter, Histogram, MetricsRegistry

#: Buckets for the per-run histograms: run lengths live in the tens of
#: rounds at thesis scales, the overflow slot absorbs pathologies.
RUN_BUCKETS = (4, 8, 16, 32, 64, 128, 256, 512, 1024)


class CampaignMetrics(Subscriber):
    """Record campaign execution facts into a :class:`MetricsRegistry`.

    Works standalone on a bare driver too — without a case the labels
    fall back to the driver's algorithm name.  The registry may be
    shared by several collectors (series are get-or-create).
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        labels: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._extra_labels = dict(labels or {})
        self._labels: Optional[Dict[str, str]] = None
        self._bound_for: Optional[Dict[str, str]] = None
        self._run_start_round = 0
        self._run_start_changes = 0
        # Bound series (resolved once per label set, not per event).
        self._runs: Counter
        self._available: Counter
        self._rounds: Counter
        self._changes: Counter
        self._broadcasts: Counter
        self._run_rounds: Histogram
        self._run_changes: Histogram
        self._by_kind: Dict[str, Counter] = {}

    # ------------------------------------------------------------------
    # Label binding.
    # ------------------------------------------------------------------

    def on_case_start(self, config: Any) -> None:
        """Adopt the case's identity as the label set for every series."""
        self._labels = {
            "algorithm": str(config.algorithm),
            "mode": str(config.mode),
            "processes": str(config.n_processes),
            "changes": str(config.n_changes),
            "rate": str(config.mean_rounds_between_changes),
            **{str(k): str(v) for k, v in self._extra_labels.items()},
        }

    def _bind(self, driver: Any) -> None:
        labels = self._labels
        if labels is None:
            labels = {
                "algorithm": str(driver.algorithm_name),
                **{str(k): str(v) for k, v in self._extra_labels.items()},
            }
        if self._bound_for == labels:
            return
        registry = self.registry
        self._runs = registry.counter("runs_total", **labels)
        self._available = registry.counter("runs_available", **labels)
        self._rounds = registry.counter("rounds_total", **labels)
        self._changes = registry.counter("changes_total", **labels)
        self._broadcasts = registry.counter("broadcasts_total", **labels)
        self._run_rounds = registry.histogram(
            "run_rounds", buckets=RUN_BUCKETS, **labels
        )
        self._run_changes = registry.histogram(
            "run_changes", buckets=RUN_BUCKETS, **labels
        )
        self._by_kind = {}
        self._bound_for = dict(labels)

    # ------------------------------------------------------------------
    # Event hooks.
    # ------------------------------------------------------------------

    def on_run_start(self, driver: Any) -> None:
        """Bind series and remember where this run starts."""
        self._bind(driver)
        self._run_start_round = driver.round_index
        self._run_start_changes = driver.changes_injected

    def on_round(self, driver: Any) -> None:
        """Count one executed round."""
        self._rounds.value += 1

    def on_change(self, driver: Any, change: Any) -> None:
        """Count one injected change, total and per change kind."""
        self._changes.value += 1
        kind = type(change).__name__
        counter = self._by_kind.get(kind)
        if counter is None:
            labels = dict(self._bound_for or {})
            labels["change"] = kind
            counter = self.registry.counter("changes_by_kind", **labels)
            self._by_kind[kind] = counter
        counter.value += 1

    def on_broadcast(self, driver: Any, sender: int, message: Any) -> None:
        """Count one broadcast."""
        self._broadcasts.value += 1

    def on_run_end(self, driver: Any) -> None:
        """Close out one run: outcome plus per-run distributions."""
        self._runs.value += 1
        if driver.primary_exists():
            self._available.value += 1
        self._run_rounds.observe(driver.round_index - self._run_start_round)
        self._run_changes.observe(
            driver.changes_injected - self._run_start_changes
        )


class ExploreMetrics(Subscriber):
    """Record exhaustive-exploration facts into a :class:`MetricsRegistry`.

    The explorer's counterpart to :class:`CampaignMetrics`: attach to
    ``explore(..., observers=[...])`` and one completed exploration
    lands as labelled counters —

    ==============================  ======================================
    series                          meaning
    ==============================  ======================================
    ``explore_scenarios_total``     complete scenarios covered
    ``explore_available_total``     scenarios ending with a live primary
    ``explore_violations_total``    invariant violations recorded
    ``explore_states_total``        distinct states evaluated (DFS nodes)
    ``explore_dedup_hits_total``    subtrees answered from the state memo
    ``explore_collapsed_total``     cut subtrees skipped via silent rounds
    ``explore_rounds_total``        driver rounds actually executed
    ``explore_max_fork_depth``      gauge: deepest live snapshot stack
    ==============================  ======================================

    Labels are the exploration's identity (algorithm, processes, depth),
    so registries holding several explorations keep them separate.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        labels: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._extra_labels = dict(labels or {})

    def on_explore_end(self, result: Any) -> None:
        """Fold one finished exploration into the registry."""
        labels = {
            "algorithm": str(result.algorithm),
            "processes": str(result.n_processes),
            "depth": str(result.depth),
            **{str(k): str(v) for k, v in self._extra_labels.items()},
        }
        registry = self.registry
        registry.counter("explore_scenarios_total", **labels).value += (
            result.scenarios
        )
        registry.counter("explore_available_total", **labels).value += (
            result.available
        )
        registry.counter("explore_violations_total", **labels).value += len(
            result.violations
        )
        stats = result.stats
        if stats is None:
            return
        registry.counter("explore_states_total", **labels).value += stats.nodes
        registry.counter("explore_dedup_hits_total", **labels).value += (
            stats.dedup_hits
        )
        registry.counter("explore_collapsed_total", **labels).value += (
            stats.cut_collapsed
        )
        registry.counter("explore_rounds_total", **labels).value += stats.rounds
        gauge = registry.gauge("explore_max_fork_depth", **labels)
        gauge.set(max(gauge.value, stats.max_fork_depth))
