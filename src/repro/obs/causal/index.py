"""SpanIndex: composable queries over a reconstructed span set.

Each filter returns a *new* index over the narrowed span set, so
queries compose left to right::

    index = SpanIndex(spans, labels={"algorithm": "ykd"})
    costly = (
        index.attempts_with(outcome="interrupted")
             .interrupted_by("partition")
             .in_rounds(0, 500)
    )
    costly.outcome_counts()   # {"interrupted": ...}

Filters never mutate; the underlying spans are frozen dataclasses.
Run- and round-scoped filters narrow runs/primaries consistently with
the attempts, so aggregate queries on a filtered index stay coherent.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple

from repro.obs.causal.spans import (
    AttemptSpan,
    PrimarySpan,
    RunSpan,
    SpanSet,
)


class SpanIndex:
    """An immutable, filterable view over one :class:`SpanSet`."""

    __slots__ = ("spans", "labels")

    def __init__(
        self,
        spans: SpanSet,
        labels: Optional[Mapping[str, Any]] = None,
    ) -> None:
        self.spans = spans
        self.labels: Dict[str, str] = {
            str(k): str(v) for k, v in (labels or {}).items()
        }

    # ------------------------------------------------------------------
    # Views.
    # ------------------------------------------------------------------

    @property
    def attempts(self) -> Tuple[AttemptSpan, ...]:
        return self.spans.attempts

    @property
    def primaries(self) -> Tuple[PrimarySpan, ...]:
        return self.spans.primaries

    @property
    def runs(self) -> Tuple[RunSpan, ...]:
        return self.spans.runs

    def __len__(self) -> int:
        return len(self.spans.attempts)

    # ------------------------------------------------------------------
    # Composable filters (each returns a new index).
    # ------------------------------------------------------------------

    def _narrowed(
        self,
        attempts: Iterable[AttemptSpan],
        primaries: Optional[Iterable[PrimarySpan]] = None,
        runs: Optional[Iterable[RunSpan]] = None,
    ) -> "SpanIndex":
        spans = replace(
            self.spans,
            attempts=tuple(attempts),
            primaries=(
                self.spans.primaries
                if primaries is None
                else tuple(primaries)
            ),
            runs=self.spans.runs if runs is None else tuple(runs),
        )
        return SpanIndex(spans, self.labels)

    def attempts_with(
        self,
        outcome: Optional[str] = None,
        min_message_rounds: Optional[int] = None,
        involving: Optional[int] = None,
    ) -> "SpanIndex":
        """Narrow attempts by outcome, activity, or membership."""
        selected = self.spans.attempts
        if outcome is not None:
            selected = tuple(s for s in selected if s.outcome == outcome)
        if min_message_rounds is not None:
            selected = tuple(
                s for s in selected if s.message_rounds >= min_message_rounds
            )
        if involving is not None:
            selected = tuple(s for s in selected if involving in s.members)
        return self._narrowed(selected)

    def interrupted_by(self, *kinds: str) -> "SpanIndex":
        """Attempts interrupted by one of the given change kinds."""
        wanted = set(kinds)
        return self._narrowed(
            s for s in self.spans.attempts if s.interrupted_by in wanted
        )

    def in_run(self, *run_indices: int) -> "SpanIndex":
        """All spans belonging to the given runs."""
        wanted = set(run_indices)
        return self._narrowed(
            (s for s in self.spans.attempts if s.run_index in wanted),
            (s for s in self.spans.primaries if s.run_index in wanted),
            (s for s in self.spans.runs if s.run_index in wanted),
        )

    def in_rounds(self, first: int, last: int) -> "SpanIndex":
        """Attempts/primaries overlapping the round interval [first, last]."""

        def overlaps(open_round: int, close_round: Optional[int]) -> bool:
            end = close_round if close_round is not None else open_round
            return open_round <= last and end >= first

        return self._narrowed(
            (
                s
                for s in self.spans.attempts
                if overlaps(s.open_round, s.close_round)
            ),
            (
                s
                for s in self.spans.primaries
                if overlaps(s.formed_round, s.lost_round)
            ),
        )

    # ------------------------------------------------------------------
    # Aggregates over the current view.
    # ------------------------------------------------------------------

    def outcome_counts(self) -> Dict[str, int]:
        """Attempt count per outcome over the current view."""
        counts: Dict[str, int] = {}
        for span in self.spans.attempts:
            counts[span.outcome] = counts.get(span.outcome, 0) + 1
        return counts

    def interruption_counts(self) -> Dict[str, int]:
        """Interrupted-attempt count per change kind over the view."""
        counts: Dict[str, int] = {}
        for span in self.spans.attempts:
            if span.interrupted_by is not None:
                counts[span.interrupted_by] = (
                    counts.get(span.interrupted_by, 0) + 1
                )
        return counts

    def blame_totals(self) -> Dict[str, int]:
        """Lost rounds per blame category over the view's runs."""
        return self.spans.blame_totals()

    def describe(self) -> str:
        """One line: view size and outcome mix."""
        outcomes = ", ".join(
            f"{outcome}={count}"
            for outcome, count in sorted(self.outcome_counts().items())
        )
        label = " ".join(f"{k}={v}" for k, v in sorted(self.labels.items()))
        prefix = f"[{label}] " if label else ""
        return (
            f"{prefix}{len(self.spans.attempts)} attempts, "
            f"{len(self.spans.primaries)} primaries, "
            f"{len(self.spans.runs)} runs"
            + (f" ({outcomes})" if outcomes else "")
        )
