"""repro.obs.causal: causal attempt tracing and availability forensics.

The layer that turns a flat trace into an explanation.  Every lost
round of a run is attributed to exactly one blame category, every
agreement attempt and primary lifetime becomes a span with causal
links back to the trace events that opened, advanced, and closed it:

* **span model** (`spans`) — :class:`AttemptSpan`, :class:`PrimarySpan`,
  :class:`RunSpan`, :class:`CausalLink`, :class:`SpanSet`;
* **reconstruction** (`builder`, `observer`) — one
  :class:`SpanBuilder` state machine fed either live
  (:class:`CausalObserver` on the event bus) or offline
  (:func:`spans_from_recorder` / :func:`spans_from_jsonl`), the two
  proven byte-identical; :class:`CausalMetrics` folds spans into a
  :class:`~repro.obs.MetricsRegistry` for deterministic shard merge;
* **query + report** (`index`, `report`) — :class:`SpanIndex`
  composable filters, canonical span JSONL, a terminal report and a
  self-contained HTML report.

See ``docs/forensics.md`` for the model and a walkthrough of the
``repro-experiments explain`` CLI built on this package.
"""

from repro.obs.causal.builder import (
    SpanBuilder,
    spans_from_dicts,
    spans_from_events,
    spans_from_jsonl,
    spans_from_recorder,
)
from repro.obs.causal.gcs import (
    VIEW_AGREED,
    VIEW_PENDING,
    VIEW_SUPERSEDED,
    GCSViewSpans,
    ViewSpan,
)
from repro.obs.causal.index import SpanIndex
from repro.obs.causal.observer import SPAN_BUCKETS, CausalMetrics, CausalObserver
from repro.obs.causal.report import (
    attempt_rounds_histogram,
    render_forensics_report,
    render_html_report,
    spans_to_jsonl,
    write_html_report,
    write_spans_jsonl,
)
from repro.obs.causal.spans import (
    ATTEMPT_OUTCOMES,
    BLAME_AMBIGUOUS,
    BLAME_CATEGORIES,
    BLAME_IDLE,
    BLAME_IN_FLIGHT,
    BLAME_NO_QUORUM,
    SPAN_KIND,
    AttemptSpan,
    CausalLink,
    PrimarySpan,
    RunSpan,
    SpanSet,
)

__all__ = [
    "ATTEMPT_OUTCOMES",
    "AttemptSpan",
    "BLAME_AMBIGUOUS",
    "BLAME_CATEGORIES",
    "BLAME_IDLE",
    "BLAME_IN_FLIGHT",
    "BLAME_NO_QUORUM",
    "CausalLink",
    "CausalMetrics",
    "CausalObserver",
    "GCSViewSpans",
    "PrimarySpan",
    "RunSpan",
    "VIEW_AGREED",
    "VIEW_PENDING",
    "VIEW_SUPERSEDED",
    "ViewSpan",
    "SPAN_BUCKETS",
    "SPAN_KIND",
    "SpanBuilder",
    "SpanIndex",
    "SpanSet",
    "attempt_rounds_histogram",
    "render_forensics_report",
    "render_html_report",
    "spans_from_dicts",
    "spans_from_events",
    "spans_from_jsonl",
    "spans_from_recorder",
    "spans_to_jsonl",
    "write_html_report",
    "write_spans_jsonl",
]
