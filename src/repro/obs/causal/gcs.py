"""Causal view-agreement spans for the group communication cluster.

The partitionable-GCS stack (:mod:`repro.gcs`) installs views
asymmetrically: each process adopts a view the moment its membership
agent decides, so a single connectivity change fans out into a window
of ticks during which some members run the new view and others still
the old one.  :class:`GCSViewSpans` subscribes to the cluster's
``on_gcs_event``/``on_gcs_tick`` hooks and turns each distinct view
into a span over that window:

* **opened** at the tick its first member installs it;
* **agreed** at the tick every live member of the view has installed
  it — the agreement latency is ``close_tick - open_tick`` ticks;
* **superseded** when one of its members installs a different, newer
  view first (the GCS analogue of an interrupted attempt).

This is the same explanatory move :class:`~repro.obs.causal.SpanBuilder`
makes for the voting simulator — don't just count how often views
agree, show which change windows they spent disagreeing in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from repro.obs.bus import Subscriber

#: View-span outcomes.
VIEW_AGREED = "agreed"
VIEW_SUPERSEDED = "superseded"
VIEW_PENDING = "pending"


@dataclass(frozen=True)
class ViewSpan:
    """One view's agreement window across the cluster."""

    view_id: Tuple[int, int]
    members: Tuple[int, ...]
    open_tick: int
    close_tick: int
    outcome: str
    #: Processes that had installed the view when it closed.
    installed: Tuple[int, ...]

    @property
    def ticks(self) -> int:
        """Agreement latency: ticks from first install to close."""
        return self.close_tick - self.open_tick

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dict form, tagged ``repro.obs/gcs_view_span``."""
        return {
            "kind": "repro.obs/gcs_view_span",
            "view_id": list(self.view_id),
            "members": list(self.members),
            "open_tick": self.open_tick,
            "close_tick": self.close_tick,
            "outcome": self.outcome,
            "installed": list(self.installed),
        }


class _OpenView:
    __slots__ = ("view_id", "members", "open_tick", "installed")

    def __init__(self, view_id, members, open_tick: int) -> None:
        self.view_id = view_id
        self.members = frozenset(members)
        self.open_tick = open_tick
        self.installed: set = set()


class GCSViewSpans(Subscriber):
    """Attach via ``GCSCluster(observers=[...])``; read :meth:`finalize`."""

    def __init__(self) -> None:
        self._open: Dict[Any, _OpenView] = {}
        self._current: Dict[int, Any] = {}
        self.spans: List[ViewSpan] = []

    def on_gcs_event(self, cluster: Any, pid: int, event: Any) -> None:
        view_id = getattr(event, "view_id", None)
        members = getattr(event, "members", None)
        if view_id is None or members is None:
            return  # a delivery, not a view installation
        tick = cluster.ticks
        view = self._open.get(view_id)
        if view is None and not self._is_closed(view_id):
            view = _OpenView(view_id, members, tick)
            self._open[view_id] = view
        previous = self._current.get(pid)
        if previous is not None and previous != view_id:
            self._supersede(previous, pid, tick)
        self._current[pid] = view_id
        if view is not None:
            view.installed.add(pid)
            live = {
                member
                for member in view.members
                if not cluster.topology.is_crashed(member)
            }
            if live and live <= view.installed:
                self._close(view_id, VIEW_AGREED, tick)

    def _is_closed(self, view_id: Any) -> bool:
        return any(span.view_id == tuple(view_id) for span in self.spans)

    def _supersede(self, view_id: Any, pid: int, tick: int) -> None:
        view = self._open.get(view_id)
        if view is not None and pid in view.members:
            self._close(view_id, VIEW_SUPERSEDED, tick)

    def _close(self, view_id: Any, outcome: str, tick: int) -> None:
        view = self._open.pop(view_id, None)
        if view is None:
            return
        self.spans.append(
            ViewSpan(
                view_id=tuple(view_id),
                members=tuple(sorted(view.members)),
                open_tick=view.open_tick,
                close_tick=tick,
                outcome=outcome,
                installed=tuple(sorted(view.installed)),
            )
        )

    def open_views(self) -> List[Dict[str, Any]]:
        """The in-progress agreement windows, as JSON-ready dicts.

        This is the *live* face of the span model: while a view is
        still being installed member by member, the service ops view
        can show which window the cluster is inside and who has (and
        has not) installed it yet — an in-progress outage explained
        while it happens, before :meth:`finalize` ever runs.
        """
        return [
            {
                "view_id": list(tuple(view.view_id)),
                "members": sorted(view.members),
                "open_tick": view.open_tick,
                "installed": sorted(view.installed),
            }
            for _, view in sorted(
                self._open.items(), key=lambda item: tuple(item[0])
            )
        ]

    def finalize(self, at_tick: int = -1) -> List[ViewSpan]:
        """Close still-open views as pending and return every span.

        ``at_tick`` stamps the close of pending views (default: each
        view's own open tick, i.e. zero elapsed agreement time known).
        """
        for view_id in sorted(self._open, key=lambda v: tuple(v)):
            view = self._open[view_id]
            close = at_tick if at_tick >= 0 else view.open_tick
            self._open.pop(view_id)
            self.spans.append(
                ViewSpan(
                    view_id=tuple(view_id),
                    members=tuple(sorted(view.members)),
                    open_tick=view.open_tick,
                    close_tick=max(close, view.open_tick),
                    outcome=VIEW_PENDING,
                    installed=tuple(sorted(view.installed)),
                )
            )
        return list(self.spans)

    def describe(self) -> str:
        """One line per span, in close order."""
        return "\n".join(
            f"view{list(span.view_id)} {{{','.join(map(str, span.members))}}} "
            f"t{span.open_tick}..t{span.close_tick} {span.outcome} "
            f"({len(span.installed)}/{len(span.members)} installed)"
            for span in self.spans
        )
