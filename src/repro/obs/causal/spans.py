"""The span model: attempts, primaries, runs, and their causal links.

A recorded trace is a flat event stream; the forensics layer lifts it
into three kinds of *spans* — intervals with a beginning, an end, an
outcome, and links back to the exact events that caused each:

* :class:`AttemptSpan` — one agreement attempt: a component starts
  exchanging state after a view installation, advances through message
  rounds, and ends **resolved** (a primary formed), **interrupted** (a
  connectivity change broke the component mid-attempt — Fig. 3-1's
  scenario), **no_quorum** (the component quiesced but could never have
  formed a primary), or **ambiguous** (the component was
  quorum-capable yet quiesced without forming — blocked on ambiguous
  pending sessions, thesis §4).
* :class:`PrimarySpan` — one primary component's lifetime, from
  formation to dissolution (or survival to the end of the run).
* :class:`RunSpan` — one measured run, carrying the per-round **blame
  breakdown**: every non-primary round is assigned exactly one of the
  :data:`BLAME_CATEGORIES`.

Every span carries :class:`CausalLink` references — (stream index,
kind, round) of the trace events that opened, advanced, and closed it —
so a report can always answer "*which* change cost us *this* primary".
All fields are plain integers/strings/tuples and every ``to_dict`` is
canonically ordered, which is what makes the JSONL export byte-stable
and the live-vs-offline differential test meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

#: The four blame categories, in classification priority order: a
#: non-primary round is tested against each in turn and lands in the
#: first that applies (see ``repro.obs.causal.builder``).
BLAME_NO_QUORUM = "no_quorum_possible"
BLAME_IN_FLIGHT = "attempt_in_flight"
BLAME_AMBIGUOUS = "ambiguous_blocked"
BLAME_IDLE = "algorithm_idle"
BLAME_CATEGORIES: Tuple[str, ...] = (
    BLAME_NO_QUORUM,
    BLAME_IN_FLIGHT,
    BLAME_AMBIGUOUS,
    BLAME_IDLE,
)

#: Attempt outcomes.
OUTCOME_RESOLVED = "resolved"
OUTCOME_INTERRUPTED = "interrupted"
OUTCOME_NO_QUORUM = "no_quorum"
OUTCOME_AMBIGUOUS = "ambiguous"
ATTEMPT_OUTCOMES: Tuple[str, ...] = (
    OUTCOME_RESOLVED,
    OUTCOME_INTERRUPTED,
    OUTCOME_NO_QUORUM,
    OUTCOME_AMBIGUOUS,
)

#: Envelope stamp on every exported span line.
SPAN_KIND = "repro.obs/span"


@dataclass(frozen=True)
class CausalLink:
    """A reference to one trace event: (stream index, kind, round).

    The index is the event's position in the observed stream — the
    same position it has in ``TraceRecorder.events`` and in the trace
    JSONL — so a link can always be dereferenced back to the full
    event.
    """

    index: int
    kind: str
    round_index: int

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dict form (``index``/``kind``/``round``)."""
        return {"index": self.index, "kind": self.kind, "round": self.round_index}

    def describe(self) -> str:
        """Compact one-token rendering: ``kind@r<round>#<index>``."""
        return f"{self.kind}@r{self.round_index}#{self.index}"


@dataclass(frozen=True)
class AttemptSpan:
    """One agreement attempt of one component."""

    run_index: int
    members: Tuple[int, ...]
    open_round: int
    close_round: Optional[int]
    outcome: str
    opened_by: CausalLink
    advanced_by: Tuple[CausalLink, ...]
    closed_by: Optional[CausalLink]
    #: Rounds in which members of this attempt actually broadcast.
    message_rounds: int
    #: Change kind (``partition``/``merge``/``crash``/``recover``) when
    #: the outcome is ``interrupted``, else None.
    interrupted_by: Optional[str] = None

    @property
    def rounds(self) -> int:
        """Open-to-close extent in rounds (0 for same-round spans)."""
        if self.close_round is None:
            return 0
        return self.close_round - self.open_round

    def describe(self) -> str:
        """One line: members, round extent, outcome and cause."""
        inner = ",".join(map(str, self.members))
        closing = (
            f"r{self.close_round}" if self.close_round is not None else "open"
        )
        cause = f" by {self.interrupted_by}" if self.interrupted_by else ""
        return (
            f"attempt {{{inner}}} r{self.open_round}→{closing}: "
            f"{self.outcome}{cause}"
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dict form, tagged ``span: attempt``."""
        return {
            "kind": SPAN_KIND,
            "span": "attempt",
            "run": self.run_index,
            "members": list(self.members),
            "open_round": self.open_round,
            "close_round": self.close_round,
            "outcome": self.outcome,
            "opened_by": self.opened_by.to_dict(),
            "advanced_by": [link.to_dict() for link in self.advanced_by],
            "closed_by": (
                self.closed_by.to_dict() if self.closed_by is not None else None
            ),
            "message_rounds": self.message_rounds,
            "interrupted_by": self.interrupted_by,
        }


@dataclass(frozen=True)
class PrimarySpan:
    """One primary component's lifetime."""

    run_index: int
    members: Tuple[int, ...]
    formed_round: int
    lost_round: Optional[int]
    outcome: str  # "lost" | "survived"
    formed_by: CausalLink
    lost_by: Optional[CausalLink]

    @property
    def rounds(self) -> int:
        """Formation-to-loss extent in rounds (0 while/when surviving)."""
        if self.lost_round is None:
            return 0
        return self.lost_round - self.formed_round

    def describe(self) -> str:
        """One line: members, formation-to-loss extent and outcome."""
        inner = ",".join(map(str, self.members))
        closing = f"r{self.lost_round}" if self.lost_round is not None else "end"
        return (
            f"primary {{{inner}}} r{self.formed_round}→{closing}: {self.outcome}"
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dict form, tagged ``span: primary``."""
        return {
            "kind": SPAN_KIND,
            "span": "primary",
            "run": self.run_index,
            "members": list(self.members),
            "formed_round": self.formed_round,
            "lost_round": self.lost_round,
            "outcome": self.outcome,
            "formed_by": self.formed_by.to_dict(),
            "lost_by": (
                self.lost_by.to_dict() if self.lost_by is not None else None
            ),
        }


@dataclass(frozen=True)
class RunSpan:
    """One measured run with its per-round blame breakdown."""

    run_index: int
    start_round: int
    end_round: int
    available: Optional[bool]
    primary_rounds: int
    blame: Tuple[Tuple[str, int], ...]  # (category, rounds), fixed order
    fresh: bool

    @property
    def rounds(self) -> int:
        """Rounds executed by this run."""
        return self.end_round - self.start_round

    @property
    def nonprimary_rounds(self) -> int:
        """Rounds without a live primary — exactly the blamed rounds."""
        return self.rounds - self.primary_rounds

    def blame_dict(self) -> Dict[str, int]:
        """The blame breakdown as a plain ``{category: rounds}`` dict."""
        return dict(self.blame)

    def describe(self) -> str:
        """One line: round extent, verdict and nonzero blame."""
        verdict = (
            "available" if self.available
            else "?" if self.available is None
            else "NO primary"
        )
        blamed = ", ".join(
            f"{category}={count}" for category, count in self.blame if count
        )
        return (
            f"run {self.run_index} r{self.start_round}→r{self.end_round} "
            f"({verdict}): {self.primary_rounds} primary rounds"
            + (f"; lost to {blamed}" if blamed else "")
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dict form, tagged ``span: run``."""
        return {
            "kind": SPAN_KIND,
            "span": "run",
            "run": self.run_index,
            "start_round": self.start_round,
            "end_round": self.end_round,
            "available": self.available,
            "primary_rounds": self.primary_rounds,
            "blame": {category: count for category, count in self.blame},
            "fresh": self.fresh,
        }


@dataclass(frozen=True)
class SpanSet:
    """The complete reconstruction of one trace: all spans, all runs.

    The finalized output of :class:`repro.obs.causal.SpanBuilder`.
    Spans appear in completion (close) order, runs in execution order —
    both fully determined by the event stream, so equal traces yield
    byte-identical span sets.
    """

    attempts: Tuple[AttemptSpan, ...]
    primaries: Tuple[PrimarySpan, ...]
    runs: Tuple[RunSpan, ...]
    truncated: bool = False

    # ------------------------------------------------------------------
    # Aggregates.
    # ------------------------------------------------------------------

    def blame_totals(self) -> Dict[str, int]:
        """Rounds lost per category, summed over every run (fixed order)."""
        totals = {category: 0 for category in BLAME_CATEGORIES}
        for run in self.runs:
            for category, count in run.blame:
                totals[category] += count
        return totals

    def outcome_counts(self) -> Dict[str, int]:
        """Attempts per outcome (only outcomes that occurred)."""
        counts: Dict[str, int] = {}
        for span in self.attempts:
            counts[span.outcome] = counts.get(span.outcome, 0) + 1
        return counts

    def interruption_counts(self) -> Dict[str, int]:
        """Interrupted attempts per interrupting change kind."""
        counts: Dict[str, int] = {}
        for span in self.attempts:
            if span.interrupted_by is not None:
                counts[span.interrupted_by] = (
                    counts.get(span.interrupted_by, 0) + 1
                )
        return counts

    @property
    def total_rounds(self) -> int:
        return sum(run.rounds for run in self.runs)

    @property
    def primary_rounds(self) -> int:
        return sum(run.primary_rounds for run in self.runs)

    @property
    def nonprimary_rounds(self) -> int:
        return sum(run.nonprimary_rounds for run in self.runs)

    def to_dicts(self) -> list:
        """JSON-ready form: runs, then attempts, then primaries."""
        return (
            [run.to_dict() for run in self.runs]
            + [span.to_dict() for span in self.attempts]
            + [span.to_dict() for span in self.primaries]
        )
