"""Live span reconstruction: subscribers that feed the builder.

:class:`CausalObserver` is the live half of the differential pair: it
subclasses :class:`~repro.sim.trace.TraceRecorder` and overrides only
its append point (the :class:`~repro.sim.trace.TraceDigester` trick),
so it observes *exactly* the events a trace recorder would record —
same hooks, same order, same dicts — and feeds each one to a
:class:`~repro.obs.causal.SpanBuilder` instead of storing it.  Offline
reconstruction of a recorded trace therefore replays the identical
dict stream through the identical state machine; the byte-identity of
the two paths is pinned by ``tests/test_causal.py``.

:class:`CausalMetrics` folds the completed spans into a
:class:`~repro.obs.MetricsRegistry` as integer series (see the table
in its docstring), labelled with the case identity exactly like
:class:`~repro.obs.CampaignMetrics` — which is what makes per-shard
registries merge bit-identically in shard order across
``run_cases_parallel`` workers.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.obs.causal.builder import SpanBuilder
from repro.obs.causal.spans import (
    BLAME_CATEGORIES,
    AttemptSpan,
    PrimarySpan,
    RunSpan,
    SpanSet,
)
from repro.obs.metrics import Counter, Histogram, MetricsRegistry
from repro.sim.trace import TraceEvent, TraceRecorder

#: Buckets for span-extent histograms: attempts settle within a few
#: rounds, primary lifetimes run to the length of a run.
SPAN_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256)


class CausalObserver(TraceRecorder):
    """A trace observer that builds spans instead of storing events.

    Attach anywhere a :class:`~repro.sim.trace.TraceRecorder` goes —
    ``DriverLoop(observers=[...])``, ``run_case(observers=[...])`` —
    then call :meth:`finalize` for the reconstructed
    :class:`~repro.obs.causal.SpanSet`.
    """

    def __init__(self, builder: Optional[SpanBuilder] = None) -> None:
        super().__init__(max_events=1)
        self.builder = builder if builder is not None else SpanBuilder()
        self.event_count = 0

    def _append(self, event: TraceEvent) -> None:
        self.builder.ingest(event.to_dict())
        self.event_count += 1

    def finalize(self) -> SpanSet:
        """The completed span set (idempotent; closes dangling state)."""
        return self.builder.finalize()


class CausalMetrics(CausalObserver):
    """Fold blame and span statistics into a metrics registry.

    ==============================  =========  ===========================
    series                          type       meaning
    ==============================  =========  ===========================
    ``blame_rounds_total``          counter    non-primary rounds per
                                               category (label ``category``)
    ``primary_rounds_total``        counter    rounds with a live primary
    ``nonprimary_rounds_total``     counter    rounds without one
    ``attempts_total``              counter    attempts per outcome
                                               (label ``outcome``)
    ``attempts_interrupted``        counter    interrupted attempts per
                                               change kind (label ``change``)
    ``attempt_rounds``              histogram  open-to-close extent per
                                               outcome (label ``outcome``)
    ``primary_span_rounds``         histogram  primary lifetimes that ended
    ==============================  =========  ===========================

    All observations are integers, so shard registries merged in shard
    order are bit-identical to the serial registry — the same contract
    :class:`~repro.obs.CampaignMetrics` satisfies.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        labels: Optional[Dict[str, Any]] = None,
    ) -> None:
        super().__init__(
            builder=SpanBuilder(
                store=False,
                attempt_sink=self._fold_attempt,
                primary_sink=self._fold_primary,
                run_sink=self._fold_run,
            )
        )
        self.registry = registry if registry is not None else MetricsRegistry()
        self._extra_labels = dict(labels or {})
        self._labels: Optional[Dict[str, str]] = None
        self._bound_for: Optional[Dict[str, str]] = None
        self._blame: Dict[str, Counter] = {}
        self._primary_rounds: Counter
        self._nonprimary_rounds: Counter
        self._attempts: Dict[str, Counter] = {}
        self._interrupted: Dict[str, Counter] = {}
        self._attempt_rounds: Dict[str, Histogram] = {}
        self._primary_span_rounds: Histogram

    # ------------------------------------------------------------------
    # Label binding (same protocol as CampaignMetrics).
    # ------------------------------------------------------------------

    def on_case_start(self, config: Any) -> None:
        """Adopt the case's identity as the label set for every series."""
        self._labels = {
            "algorithm": str(config.algorithm),
            "mode": str(config.mode),
            "processes": str(config.n_processes),
            "changes": str(config.n_changes),
            "rate": str(config.mean_rounds_between_changes),
            **{str(k): str(v) for k, v in self._extra_labels.items()},
        }

    def on_case_end(self, result: Any) -> None:
        """Settle dangling spans so the registry covers the whole case."""
        self.finalize()

    def _bind(self, driver: Any) -> None:
        labels = self._labels
        if labels is None:
            labels = {
                "algorithm": str(driver.algorithm_name),
                **{str(k): str(v) for k, v in self._extra_labels.items()},
            }
        self._bind_labels(labels)

    def _bind_fallback(self) -> None:
        """Bind with whatever labels exist (offline replay has no driver)."""
        self._bind_labels(
            self._labels
            or {str(k): str(v) for k, v in self._extra_labels.items()}
        )

    def _bind_labels(self, labels: Dict[str, str]) -> None:
        if self._bound_for == labels:
            return
        registry = self.registry
        self._blame = {
            category: registry.counter(
                "blame_rounds_total", category=category, **labels
            )
            for category in BLAME_CATEGORIES
        }
        self._primary_rounds = registry.counter(
            "primary_rounds_total", **labels
        )
        self._nonprimary_rounds = registry.counter(
            "nonprimary_rounds_total", **labels
        )
        self._attempts = {}
        self._interrupted = {}
        self._attempt_rounds = {}
        self._primary_span_rounds = registry.histogram(
            "primary_span_rounds", buckets=SPAN_BUCKETS, **labels
        )
        self._bound_for = dict(labels)

    def on_run_start(self, driver: Any) -> None:
        """Bind label values from the driver, then delegate to the base."""
        self._bind(driver)
        super().on_run_start(driver)

    # ------------------------------------------------------------------
    # Builder sinks.
    # ------------------------------------------------------------------

    def _fold_run(self, run: RunSpan) -> None:
        if self._bound_for is None:  # driverless replay: bind bare labels
            self._bind_fallback()
        self._primary_rounds.value += run.primary_rounds
        self._nonprimary_rounds.value += run.nonprimary_rounds
        for category, count in run.blame:
            self._blame[category].value += count

    def _fold_attempt(self, span: AttemptSpan) -> None:
        if self._bound_for is None:
            self._bind_fallback()
        labels = dict(self._bound_for or {})
        counter = self._attempts.get(span.outcome)
        if counter is None:
            counter = self.registry.counter(
                "attempts_total", outcome=span.outcome, **labels
            )
            self._attempts[span.outcome] = counter
        counter.value += 1
        histogram = self._attempt_rounds.get(span.outcome)
        if histogram is None:
            histogram = self.registry.histogram(
                "attempt_rounds",
                buckets=SPAN_BUCKETS,
                outcome=span.outcome,
                **labels,
            )
            self._attempt_rounds[span.outcome] = histogram
        histogram.observe(span.rounds)
        if span.interrupted_by is not None:
            interrupted = self._interrupted.get(span.interrupted_by)
            if interrupted is None:
                interrupted = self.registry.counter(
                    "attempts_interrupted",
                    change=span.interrupted_by,
                    **labels,
                )
                self._interrupted[span.interrupted_by] = interrupted
            interrupted.value += 1

    def _fold_primary(self, span: PrimarySpan) -> None:
        if self._bound_for is None:
            self._bind_fallback()
        if span.lost_round is not None:
            self._primary_span_rounds.observe(span.rounds)
