"""Span reconstruction: one state machine, fed live or offline.

:class:`SpanBuilder` consumes the *dict form* of trace events — exactly
what :meth:`repro.sim.trace.TraceEvent.to_dict` produces and what a
trace JSONL line parses to — and reconstructs attempt/primary/run
spans plus the per-round blame breakdown.  Feeding it live (via
:class:`repro.obs.causal.CausalObserver`, which overrides the trace
recorder's append point) and feeding it a recorded trace offline run
the *same* code over the *same* dicts, which is why the two paths are
byte-identical by construction — and why the differential test in
``tests/test_causal.py`` pinning that identity is a real check on the
recording pipeline, not a tautology about this module.

Blame classification (thesis §3–§4, after the decomposition in Ingols
& Keidar's availability study): every round of a run without a live
primary is assigned the **first** matching category of

1. ``no_quorum_possible`` — no current component is a SUBQUORUM of the
   quorum base (the last formed primary's membership; the full process
   universe before any primary formed).  No algorithm could form a
   primary here; the blame lies with the partition itself.
2. ``attempt_in_flight`` — members broadcast this round: an agreement
   attempt is making progress and has simply not concluded yet.  These
   are the rounds the thesis' round-count analysis (§3.2) charges to
   protocol latency.
3. ``ambiguous_blocked`` — a quorum-capable component has an attempt
   open but silent: it quiesced without forming a primary, the
   signature of blocking on ambiguous pending sessions (§4).
4. ``algorithm_idle`` — everything else: no attempt in progress and
   none blocked (view-installation latency, or a settled non-primary
   component waiting for connectivity to improve).

The categories are exhaustive by construction — category 4 is the
complement of the first three — so the per-run counts always sum to
the run's non-primary rounds (asserted in the tier-1 tests).
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Tuple,
)

from repro.core.quorum import is_subquorum
from repro.obs.causal.spans import (
    BLAME_AMBIGUOUS,
    BLAME_CATEGORIES,
    BLAME_IDLE,
    BLAME_IN_FLIGHT,
    BLAME_NO_QUORUM,
    OUTCOME_AMBIGUOUS,
    OUTCOME_INTERRUPTED,
    OUTCOME_NO_QUORUM,
    OUTCOME_RESOLVED,
    AttemptSpan,
    CausalLink,
    PrimarySpan,
    RunSpan,
    SpanSet,
)


class _OpenAttempt:
    """Mutable record of one in-progress agreement attempt."""

    __slots__ = (
        "run_index",
        "members",
        "open_round",
        "opened_by",
        "advanced",
        "message_rounds",
        "last_message_round",
    )

    def __init__(
        self,
        run_index: int,
        members: FrozenSet[int],
        open_round: int,
        opened_by: CausalLink,
    ) -> None:
        self.run_index = run_index
        self.members = members
        self.open_round = open_round
        self.opened_by = opened_by
        self.advanced: List[CausalLink] = []
        self.message_rounds = 0
        self.last_message_round: Optional[int] = None

    def advance(self, link: CausalLink, is_message: bool) -> None:
        self.advanced.append(link)
        if is_message and link.round_index != self.last_message_round:
            self.message_rounds += 1
            self.last_message_round = link.round_index

    def close(
        self,
        close_round: Optional[int],
        outcome: str,
        closed_by: Optional[CausalLink],
        interrupted_by: Optional[str] = None,
    ) -> AttemptSpan:
        return AttemptSpan(
            run_index=self.run_index,
            members=tuple(sorted(self.members)),
            open_round=self.open_round,
            close_round=close_round,
            outcome=outcome,
            opened_by=self.opened_by,
            advanced_by=tuple(self.advanced),
            closed_by=closed_by,
            message_rounds=self.message_rounds,
            interrupted_by=interrupted_by,
        )


class _OpenPrimary:
    """Mutable record of one live primary component."""

    __slots__ = ("run_index", "members", "formed_round", "formed_by")

    def __init__(
        self,
        run_index: int,
        members: Tuple[int, ...],
        formed_round: int,
        formed_by: CausalLink,
    ) -> None:
        self.run_index = run_index
        self.members = members
        self.formed_round = formed_round
        self.formed_by = formed_by

    def close(
        self,
        lost_round: Optional[int],
        outcome: str,
        lost_by: Optional[CausalLink],
    ) -> PrimarySpan:
        return PrimarySpan(
            run_index=self.run_index,
            members=self.members,
            formed_round=self.formed_round,
            lost_round=lost_round,
            outcome=outcome,
            formed_by=self.formed_by,
            lost_by=lost_by,
        )


Sink = Callable[[Any], None]


class SpanBuilder:
    """Reconstruct spans and blame from a stream of trace event dicts.

    Feed :meth:`ingest` every event dict in stream order (live hooks
    and offline replay both do exactly this), then call
    :meth:`finalize` for the completed :class:`SpanSet`.  With
    ``store=False`` completed spans are only handed to the sinks (for
    O(1)-memory metrics collection over huge campaigns); the returned
    span set is then empty of spans but still carries the totals.
    """

    def __init__(
        self,
        store: bool = True,
        attempt_sink: Optional[Sink] = None,
        primary_sink: Optional[Sink] = None,
        run_sink: Optional[Sink] = None,
    ) -> None:
        self.store = store
        self._attempt_sink = attempt_sink
        self._primary_sink = primary_sink
        self._run_sink = run_sink
        # Stream position.
        self._index = 0
        self.truncated = False
        # Completed spans (when storing).
        self._attempts: List[AttemptSpan] = []
        self._primaries: List[PrimarySpan] = []
        self._runs: List[RunSpan] = []
        # Persistent reconstruction state (survives cascading runs).
        self._universe: set = set()
        self._components: Optional[Tuple[FrozenSet[int], ...]] = None
        self._quorum_base: Optional[FrozenSet[int]] = None
        self._open_attempts: Dict[FrozenSet[int], _OpenAttempt] = {}
        self._primary: Optional[_OpenPrimary] = None
        # Current-run framing.
        self._run_active = False
        self._run_index = 0
        self._run_start_round = 0
        self._run_events: List[Tuple[int, Mapping[str, Any]]] = []
        self._last_round = 0
        self._last_end_link: Optional[CausalLink] = None
        self._finalized: Optional[SpanSet] = None

    # ------------------------------------------------------------------
    # Ingest.
    # ------------------------------------------------------------------

    def ingest(self, data: Mapping[str, Any]) -> None:
        """Consume one trace event dict (in stream order)."""
        kind = data.get("kind")
        if kind == "truncation":
            self.truncated = True
            return
        index = self._index
        self._index += 1
        round_index = int(data["round"])
        self._last_round = max(self._last_round, round_index)
        if kind == "runboundary":
            if data["boundary"] == "start":
                self._begin_run(int(data["run_index"]), round_index, index)
            else:
                self._run_events.append((index, data))
                self._end_run(
                    round_index,
                    data.get("available"),
                    CausalLink(index, "runboundary", round_index),
                )
            return
        if not self._run_active:
            # Events outside explicit run boundaries (a bare driver
            # exercised round by round): frame them as an implicit run
            # starting just before the first event.
            self._run_active = True
            self._run_start_round = round_index - 1
            self._run_events = []
        self._run_events.append((index, data))

    def _begin_run(self, run_index: int, round_index: int, index: int) -> None:
        if self._run_active:
            # A start without a preceding end: close the dangling run.
            self._end_run(self._last_round, None, None)
        # A start at round 0 is a fresh driver (fresh-mode campaigns
        # build a new system per run): everything carried over belongs
        # to the previous system and is closed out here.
        if round_index == 0:
            self._reset_fresh(
                CausalLink(index, "runboundary", round_index), run_index
            )
        self._run_active = True
        self._run_index = run_index
        self._run_start_round = round_index
        self._run_events = []

    def _reset_fresh(
        self, start_link: CausalLink, run_index: int
    ) -> None:
        """Close carried state at a fresh-system boundary.

        Attempts belong to the system that opened them and close here.
        The live primary needs the trace recorder's exact semantics:
        the recorder carries its last-seen primary across runs and only
        emits formation/loss events on *change*, so a fresh run whose
        initial primary equals the previous run's final one produces no
        event at all.  Mirroring that, the carried primary's span
        closes (it survived its run) and a new span opens for the new
        system, caused by the run-start boundary.  Whenever the carry
        is wrong, the recorder emits the correcting lost/formed events
        in the run's first round and the state machine re-converges
        before any round is classified.
        """
        self._close_open_attempts(self._last_end_link)
        if self._primary is not None:
            members = self._primary.members
            self._emit_primary(self._primary.close(None, "survived", None))
            self._primary = _OpenPrimary(run_index, members, 0, start_link)
        # The universe persists (membership identity is global); the
        # connectivity and quorum base belong to the dead system.
        self._components = None
        self._quorum_base = None

    def _close_open_attempts(self, closed_by: Optional[CausalLink]) -> None:
        close_round = closed_by.round_index if closed_by is not None else (
            self._last_round or None
        )
        for members in list(self._open_attempts):
            record = self._open_attempts.pop(members)
            base = self._quorum_base or frozenset(self._universe)
            if base and is_subquorum(members, base):
                outcome = OUTCOME_AMBIGUOUS
            else:
                outcome = OUTCOME_NO_QUORUM
            self._emit_attempt(record.close(close_round, outcome, closed_by))

    def _close_leftovers(self, closed_by: Optional[CausalLink]) -> None:
        self._close_open_attempts(closed_by)
        if self._primary is not None:
            self._emit_primary(self._primary.close(None, "survived", None))
            self._primary = None

    # ------------------------------------------------------------------
    # Per-run processing (runs are walked at their end boundary).
    # ------------------------------------------------------------------

    def _end_run(
        self,
        end_round: int,
        available: Optional[bool],
        end_link: Optional[CausalLink],
    ) -> None:
        by_round: Dict[int, List[Tuple[int, Mapping[str, Any]]]] = {}
        for index, data in self._run_events:
            by_round.setdefault(int(data["round"]), []).append((index, data))
        blame = dict.fromkeys(BLAME_CATEGORIES, 0)
        primary_rounds = 0
        run_had_broadcast = False
        fresh = self._run_start_round == 0 and self._components is None
        for current_round in range(self._run_start_round + 1, end_round + 1):
            had_broadcast = False
            for index, data in by_round.get(current_round, ()):
                kind = data["kind"]
                if kind == "broadcast":
                    had_broadcast = True
                    run_had_broadcast = True
                    self._on_broadcast(index, current_round, data)
                elif kind == "change":
                    self._on_change(index, current_round, data)
                elif kind == "view":
                    self._on_view(index, current_round, data)
                elif kind == "primaryformed":
                    self._on_formed(
                        index, current_round, data, run_had_broadcast
                    )
                elif kind == "primarylost":
                    self._on_lost(index, current_round, data)
                # runboundary entries carry no state.
            if self._primary is not None:
                primary_rounds += 1
            else:
                blame[self._classify(had_broadcast)] += 1
        self._emit_run(
            RunSpan(
                run_index=self._run_index,
                start_round=self._run_start_round,
                end_round=end_round,
                available=available,
                primary_rounds=primary_rounds,
                blame=tuple((c, blame[c]) for c in BLAME_CATEGORIES),
                fresh=fresh,
            )
        )
        self._run_active = False
        self._run_events = []
        self._last_end_link = end_link
        self._run_index += 1

    # Event handlers — all mutate the persistent reconstruction state.

    def _on_broadcast(
        self, index: int, round_index: int, data: Mapping[str, Any]
    ) -> None:
        sender = int(data["sender"])
        self._universe.add(sender)
        link = CausalLink(index, "broadcast", round_index)
        for members, record in self._open_attempts.items():
            if sender in members:
                record.advance(link, is_message=True)
                return
        # A broadcast with no covering attempt: open an implicit one
        # for the sender's current component, when we know it.
        if self._components is not None:
            for component in self._components:
                if sender in component:
                    record = _OpenAttempt(
                        self._run_index, component, round_index, link
                    )
                    record.advance(link, is_message=True)
                    self._open_attempts[component] = record
                    return

    def _on_change(
        self, index: int, round_index: int, data: Mapping[str, Any]
    ) -> None:
        link = CausalLink(index, "change", round_index)
        components = tuple(
            frozenset(int(p) for p in component)
            for component in data["components_after"]
        )
        for component in components:
            self._universe |= component
        surviving = set(components)
        change_kind = str(data["change"]).split("(", 1)[0]
        for members in list(self._open_attempts):
            if members not in surviving:
                record = self._open_attempts.pop(members)
                self._emit_attempt(
                    record.close(
                        round_index,
                        OUTCOME_INTERRUPTED,
                        link,
                        interrupted_by=change_kind,
                    )
                )
        self._components = components

    def _on_view(
        self, index: int, round_index: int, data: Mapping[str, Any]
    ) -> None:
        members = frozenset(int(p) for p in data["members"])
        self._universe |= members
        link = CausalLink(index, "view", round_index)
        record = self._open_attempts.get(members)
        if record is not None:
            record.advance(link, is_message=False)
        else:
            self._open_attempts[members] = _OpenAttempt(
                self._run_index, members, round_index, link
            )

    def _on_formed(
        self,
        index: int,
        round_index: int,
        data: Mapping[str, Any],
        run_had_broadcast: bool,
    ) -> None:
        members = tuple(int(p) for p in data["members"])
        key = frozenset(members)
        self._universe |= key
        link = CausalLink(index, "primaryformed", round_index)
        record = self._open_attempts.pop(key, None)
        if record is not None:
            self._emit_attempt(record.close(round_index, OUTCOME_RESOLVED, link))
        elif run_had_broadcast:
            # An attempt we never saw open (no prior view for this
            # exact set) still resolved — synthesize its span so every
            # formation has a cause.  The silent initial declaration of
            # a fresh run (no messages yet) is not an attempt.
            synthetic = _OpenAttempt(self._run_index, key, round_index, link)
            self._emit_attempt(synthetic.close(round_index, OUTCOME_RESOLVED, link))
        if self._primary is not None:
            self._emit_primary(self._primary.close(round_index, "lost", link))
        self._primary = _OpenPrimary(self._run_index, members, round_index, link)
        self._quorum_base = key

    def _on_lost(
        self, index: int, round_index: int, data: Mapping[str, Any]
    ) -> None:
        if self._primary is None:
            return
        link = CausalLink(index, "primarylost", round_index)
        self._emit_primary(self._primary.close(round_index, "lost", link))
        self._primary = None

    # ------------------------------------------------------------------
    # Classification.
    # ------------------------------------------------------------------

    def _classify(self, had_broadcast: bool) -> str:
        """The blame category of one non-primary round (priority order)."""
        base = self._quorum_base or frozenset(self._universe)
        components = self._components
        if components is None and self._universe:
            components = (frozenset(self._universe),)
        if components and base:
            if not any(
                is_subquorum(component, base) for component in components
            ):
                return BLAME_NO_QUORUM
        if had_broadcast:
            return BLAME_IN_FLIGHT
        if base and any(
            is_subquorum(members, base) for members in self._open_attempts
        ):
            return BLAME_AMBIGUOUS
        return BLAME_IDLE

    # ------------------------------------------------------------------
    # Emission and finalization.
    # ------------------------------------------------------------------

    def _emit_attempt(self, span: AttemptSpan) -> None:
        if self.store:
            self._attempts.append(span)
        if self._attempt_sink is not None:
            self._attempt_sink(span)

    def _emit_primary(self, span: PrimarySpan) -> None:
        if self.store:
            self._primaries.append(span)
        if self._primary_sink is not None:
            self._primary_sink(span)

    def _emit_run(self, span: RunSpan) -> None:
        if self.store:
            self._runs.append(span)
        if self._run_sink is not None:
            self._run_sink(span)

    def finalize(self) -> SpanSet:
        """Close any dangling state and return the completed span set.

        Idempotent: the first call settles everything and later calls
        return the same object.
        """
        if self._finalized is not None:
            return self._finalized
        if self._run_active:
            self._end_run(self._last_round, None, None)
        self._close_leftovers(self._last_end_link)
        self._finalized = SpanSet(
            attempts=tuple(self._attempts),
            primaries=tuple(self._primaries),
            runs=tuple(self._runs),
            truncated=self.truncated,
        )
        return self._finalized


# ----------------------------------------------------------------------
# Offline reconstruction entry points.
# ----------------------------------------------------------------------


def spans_from_dicts(dicts: Iterable[Mapping[str, Any]]) -> SpanSet:
    """Reconstruct spans from trace event dicts (JSONL-parsed or live)."""
    builder = SpanBuilder()
    for data in dicts:
        builder.ingest(data)
    return builder.finalize()


def spans_from_events(events: Iterable[Any]) -> SpanSet:
    """Reconstruct spans from recorded :class:`~repro.sim.trace.TraceEvent`s.

    Goes through each event's ``to_dict()`` — the same dicts the live
    observer feeds — so offline reconstruction of a recorded trace is
    byte-identical to having watched the run live.
    """
    return spans_from_dicts(event.to_dict() for event in events)


def spans_from_recorder(recorder: Any) -> SpanSet:
    """Reconstruct spans from a whole :class:`~repro.sim.trace.TraceRecorder`.

    Consumes ``to_dicts()``, so a truncated recording propagates its
    explicit truncation marker into :attr:`SpanSet.truncated`.
    """
    return spans_from_dicts(recorder.to_dicts())


def spans_from_jsonl(text: str) -> SpanSet:
    """Reconstruct spans from canonical trace JSONL text."""
    import json

    builder = SpanBuilder()
    for line in text.splitlines():
        if line.strip():
            builder.ingest(json.loads(line))
    return builder.finalize()
