"""Forensics reports: canonical JSONL, plain text, self-contained HTML.

Three renderings of one :class:`~repro.obs.causal.SpanSet`:

* :func:`spans_to_jsonl` — the canonical interchange form, framed by
  the shared :mod:`repro.obs.canonical` encoder.  Equal span sets
  serialize to byte-identical text, which is what the live-vs-offline
  differential test compares.
* :func:`render_forensics_report` — the terminal report: availability,
  the blame breakdown, attempt outcomes, interruption causes, and the
  attempt round distribution (percentiles via
  :meth:`~repro.obs.metrics.Histogram.percentile`).
* :func:`render_html_report` — a single self-contained HTML file
  (stdlib only, inline CSS, no external assets) with the same tables
  plus an embedded timeline, suitable for CI artifacts.
"""

from __future__ import annotations

import html
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.obs.canonical import canonical_jsonl
from repro.obs.causal.spans import (
    ATTEMPT_OUTCOMES,
    BLAME_CATEGORIES,
    SpanSet,
)
from repro.obs.metrics import Histogram

#: Buckets of the report-side attempt-extent distribution (mirrors
#: ``repro.obs.causal.observer.SPAN_BUCKETS``).
REPORT_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256)


def spans_to_jsonl(spans: SpanSet) -> str:
    """The whole span set as canonical JSON lines."""
    return canonical_jsonl(spans.to_dicts())


def write_spans_jsonl(spans: SpanSet, path: Union[str, Path]) -> Path:
    """Write the canonical span JSONL; returns the written path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(spans_to_jsonl(spans), encoding="utf-8")
    return path


def attempt_rounds_histogram(
    spans: SpanSet, outcome: Optional[str] = None
) -> Histogram:
    """Open-to-close extents of (optionally one outcome's) attempts."""
    label = outcome if outcome is not None else "all"
    histogram = Histogram(
        "attempt_rounds", (("outcome", label),), REPORT_BUCKETS
    )
    for span in spans.attempts:
        if outcome is None or span.outcome == outcome:
            histogram.observe(span.rounds)
    return histogram


# ----------------------------------------------------------------------
# Text report.
# ----------------------------------------------------------------------


def render_forensics_report(
    spans: SpanSet, labels: Optional[Mapping[str, Any]] = None
) -> str:
    """The terminal forensics report of one span set."""
    lines: List[str] = []
    header = "availability forensics"
    if labels:
        tagged = " ".join(f"{k}={v}" for k, v in sorted(labels.items()))
        header = f"{header} — {tagged}"
    lines.append(header)
    lines.append("=" * len(header))

    runs = spans.runs
    available = sum(1 for run in runs if run.available)
    decided = sum(1 for run in runs if run.available is not None)
    total = spans.total_rounds
    lines.append(
        f"runs: {len(runs)} ({available}/{decided} available)"
        if decided
        else f"runs: {len(runs)}"
    )
    lines.append(
        f"rounds: {total} total, {spans.primary_rounds} with a primary, "
        f"{spans.nonprimary_rounds} without"
    )
    if spans.truncated:
        lines.append("WARNING: trace was truncated — spans are incomplete")

    lines.append("")
    lines.append("blame for rounds without a primary:")
    totals = spans.blame_totals()
    nonprimary = spans.nonprimary_rounds
    for category in BLAME_CATEGORIES:
        count = totals[category]
        share = (100.0 * count / nonprimary) if nonprimary else 0.0
        lines.append(f"  {category:<22} {count:>8}  ({share:5.1f}%)")

    lines.append("")
    lines.append("agreement attempts:")
    outcomes = spans.outcome_counts()
    for outcome in ATTEMPT_OUTCOMES:
        if outcome in outcomes:
            lines.append(f"  {outcome:<22} {outcomes[outcome]:>8}")
    for outcome in sorted(set(outcomes) - set(ATTEMPT_OUTCOMES)):
        lines.append(f"  {outcome:<22} {outcomes[outcome]:>8}")

    interruptions = spans.interruption_counts()
    if interruptions:
        lines.append("")
        lines.append("interrupted by:")
        for kind in sorted(interruptions):
            lines.append(f"  {kind:<22} {interruptions[kind]:>8}")

    histogram = attempt_rounds_histogram(spans)
    if histogram.count:
        summary = histogram.summary()
        lines.append("")
        lines.append(
            "attempt extent (rounds): "
            f"p50={summary['p50']} p90={summary['p90']} "
            f"p99={summary['p99']} max={summary['max']}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# HTML report (stdlib only, fully self-contained).
# ----------------------------------------------------------------------

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 60rem; color: #1c2733; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
table { border-collapse: collapse; width: 100%; margin: .5rem 0; }
th, td { text-align: left; padding: .25rem .6rem;
         border-bottom: 1px solid #dde3ea; font-size: .9rem; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
.bar { background: #4a90d9; height: .7rem; display: inline-block; }
.bar.no_quorum_possible { background: #c0504d; }
.bar.attempt_in_flight { background: #f0ad4e; }
.bar.ambiguous_blocked { background: #8064a2; }
.bar.algorithm_idle { background: #9aa5b1; }
pre.timeline { background: #f6f8fa; padding: 1rem; overflow-x: auto;
               font-size: .8rem; line-height: 1.35; }
.warn { color: #b3261e; font-weight: 600; }
.tag { background: #eef2f6; border-radius: .3rem; padding: .1rem .4rem;
       margin-right: .3rem; font-size: .8rem; }
"""


def _row(cells: List[str], tag: str = "td") -> str:
    return "<tr>" + "".join(f"<{tag}>{c}</{tag}>" for c in cells) + "</tr>"


def _num(value: Any) -> str:
    return f'<td class="num">{html.escape(str(value))}</td>'


def render_html_report(
    spans: SpanSet,
    title: str = "Availability forensics",
    labels: Optional[Mapping[str, Any]] = None,
    timeline: Optional[str] = None,
    max_attempt_rows: int = 200,
) -> str:
    """One self-contained HTML page for a span set.

    ``timeline`` takes pre-rendered text (e.g. from
    :func:`repro.sim.trace.render_timeline` with spans woven in) and is
    embedded verbatim in a ``<pre>`` block.  ``max_attempt_rows`` caps
    the attempts table; the cap is stated explicitly in the page when
    it bites, never silently.
    """
    parts: List[str] = []
    parts.append("<!doctype html><html><head><meta charset='utf-8'>")
    parts.append(f"<title>{html.escape(title)}</title>")
    parts.append(f"<style>{_CSS}</style></head><body>")
    parts.append(f"<h1>{html.escape(title)}</h1>")
    if labels:
        tags = "".join(
            f"<span class='tag'>{html.escape(str(k))}="
            f"{html.escape(str(v))}</span>"
            for k, v in sorted(labels.items())
        )
        parts.append(f"<p>{tags}</p>")
    if spans.truncated:
        parts.append(
            "<p class='warn'>Trace was truncated — spans are incomplete.</p>"
        )

    runs = spans.runs
    available = sum(1 for run in runs if run.available)
    decided = sum(1 for run in runs if run.available is not None)
    parts.append("<h2>Summary</h2><table>")
    parts.append(_row(["runs", "available", "rounds", "primary rounds",
                       "non-primary rounds"], tag="th"))
    parts.append(
        "<tr>"
        + _num(len(runs))
        + _num(f"{available}/{decided}" if decided else "—")
        + _num(spans.total_rounds)
        + _num(spans.primary_rounds)
        + _num(spans.nonprimary_rounds)
        + "</tr>"
    )
    parts.append("</table>")

    parts.append("<h2>Blame breakdown (rounds without a primary)</h2>")
    parts.append("<table>")
    parts.append(_row(["category", "rounds", "share", ""], tag="th"))
    totals = spans.blame_totals()
    nonprimary = spans.nonprimary_rounds
    for category in BLAME_CATEGORIES:
        count = totals[category]
        share = (100.0 * count / nonprimary) if nonprimary else 0.0
        bar = (
            f"<span class='bar {category}' "
            f"style='width:{share * 3:.0f}px'></span>"
        )
        parts.append(
            "<tr><td>" + html.escape(category) + "</td>"
            + _num(count) + _num(f"{share:.1f}%")
            + f"<td>{bar}</td></tr>"
        )
    parts.append("</table>")

    parts.append("<h2>Attempt outcomes</h2><table>")
    parts.append(_row(["outcome", "attempts", "p50 rounds", "p90 rounds",
                       "p99 rounds", "max"], tag="th"))
    outcomes = spans.outcome_counts()
    ordered = [o for o in ATTEMPT_OUTCOMES if o in outcomes] + sorted(
        set(outcomes) - set(ATTEMPT_OUTCOMES)
    )
    for outcome in ordered:
        summary = attempt_rounds_histogram(spans, outcome).summary()
        parts.append(
            "<tr><td>" + html.escape(outcome) + "</td>"
            + _num(outcomes[outcome])
            + _num(summary["p50"]) + _num(summary["p90"])
            + _num(summary["p99"]) + _num(summary["max"]) + "</tr>"
        )
    parts.append("</table>")

    interruptions = spans.interruption_counts()
    if interruptions:
        parts.append("<h2>Interruption causes</h2><table>")
        parts.append(_row(["change kind", "attempts interrupted"], tag="th"))
        for kind in sorted(interruptions):
            parts.append(
                "<tr><td>" + html.escape(kind) + "</td>"
                + _num(interruptions[kind]) + "</tr>"
            )
        parts.append("</table>")

    parts.append("<h2>Attempts</h2><table>")
    parts.append(_row(["run", "members", "opened", "closed", "outcome",
                       "message rounds", "cause"], tag="th"))
    for span in spans.attempts[:max_attempt_rows]:
        parts.append(
            "<tr>" + _num(span.run_index)
            + "<td>{" + html.escape(",".join(map(str, span.members))) + "}</td>"
            + _num(f"r{span.open_round}")
            + _num("open" if span.close_round is None else f"r{span.close_round}")
            + "<td>" + html.escape(span.outcome) + "</td>"
            + _num(span.message_rounds)
            + "<td>" + html.escape(span.interrupted_by or "") + "</td></tr>"
        )
    parts.append("</table>")
    if len(spans.attempts) > max_attempt_rows:
        parts.append(
            f"<p>Showing {max_attempt_rows} of {len(spans.attempts)} "
            "attempts.</p>"
        )

    if timeline:
        parts.append("<h2>Timeline</h2>")
        parts.append(f"<pre class='timeline'>{html.escape(timeline)}</pre>")

    parts.append("</body></html>")
    return "\n".join(parts)


def write_html_report(
    spans: SpanSet,
    path: Union[str, Path],
    **kwargs: Any,
) -> Path:
    """Write the HTML report; returns the written path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_html_report(spans, **kwargs), encoding="utf-8")
    return path
