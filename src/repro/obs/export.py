"""Canonical metrics export: JSONL (round-trippable) and CSV.

The JSONL form is the interchange format: one canonical JSON object
per line (sorted keys, no whitespace variance), one line per series,
lines ordered by the registry's canonical (name, labels) order.  Equal
registries therefore serialize to byte-identical text — the property
the parallel-merge determinism tests pin — and
:func:`registry_from_jsonl` reconstructs an equal registry from the
text (property-tested round trip in ``tests/test_obs_export.py``).

The CSV form is a flat convenience view for spreadsheets: one row per
series with the labels folded into a single column; histograms carry
their buckets as ``bound:count`` pairs.  CSV is export-only.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.obs.canonical import canonical_jsonl
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricSeries,
    MetricsRegistry,
)

#: Envelope stamp on every exported line.
METRICS_KIND = "repro.obs/metric"


def series_to_dict(series: MetricSeries) -> Dict[str, Any]:
    """JSON-compatible form of one series (kind, name, labels, values)."""
    data: Dict[str, Any] = {
        "kind": METRICS_KIND,
        "type": series.kind,
        "name": series.name,
        "labels": dict(series.labels),
    }
    data.update(series.value_dict())
    return data


def registry_to_jsonl(registry: MetricsRegistry) -> str:
    """The whole registry as canonical JSON lines (sorted keys/series).

    Framed by the shared :mod:`repro.obs.canonical` encoder — the same
    one the trace and span exporters use — so all three line formats
    are pinned by one definition (and one golden test).
    """
    return canonical_jsonl(
        series_to_dict(series) for series in registry.series()
    )


def write_metrics_jsonl(
    registry: MetricsRegistry, path: Union[str, Path]
) -> Path:
    """Write the canonical JSONL export; returns the written path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(registry_to_jsonl(registry), encoding="utf-8")
    return path


def _series_from_dict(data: Dict[str, Any]) -> MetricSeries:
    """Rebuild one series from its exported dict."""
    if data.get("kind") != METRICS_KIND:
        raise ValueError(
            f"not a metrics line (kind={data.get('kind')!r})"
        )
    name = data["name"]
    labels = tuple(sorted((str(k), str(v)) for k, v in data["labels"].items()))
    metric_type = data.get("type")
    if metric_type == "counter":
        counter = Counter(name, labels)
        counter.value = data["value"]
        return counter
    if metric_type == "gauge":
        gauge = Gauge(name, labels)
        gauge.value = data["value"]
        gauge.written = bool(data.get("written", True))
        return gauge
    if metric_type == "histogram":
        histogram = Histogram(name, labels, tuple(data["bounds"]))
        histogram.bucket_counts = list(data["buckets"])
        histogram.count = data["count"]
        histogram.sum = data["sum"]
        histogram.min = data["min"]
        histogram.max = data["max"]
        return histogram
    raise ValueError(f"unknown metric type {metric_type!r}")


def registry_from_jsonl(text: str) -> MetricsRegistry:
    """Rebuild a registry from :func:`registry_to_jsonl` output."""
    registry = MetricsRegistry()
    for line_number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as error:
            raise ValueError(
                f"metrics line {line_number}: not valid JSON ({error})"
            ) from error
        series = _series_from_dict(data)
        existing = registry.get(series.name, dict(series.labels))
        if existing is not None:
            raise ValueError(
                f"metrics line {line_number}: duplicate series "
                f"{series.name!r}{dict(series.labels)}"
            )
        registry._series[(series.name, series.labels)] = series
    return registry


def load_metrics_jsonl(path: Union[str, Path]) -> MetricsRegistry:
    """Read one JSONL metrics file back into a registry."""
    return registry_from_jsonl(Path(path).read_text(encoding="utf-8"))


# ----------------------------------------------------------------------
# CSV (export-only flat view).
# ----------------------------------------------------------------------

#: Column layout of the CSV export, fixed for diffability.
CSV_COLUMNS = (
    "name", "type", "labels", "value", "count", "sum", "min", "max", "buckets",
)


def _labels_column(series: MetricSeries) -> str:
    return ";".join(f"{k}={v}" for k, v in series.labels)


def registry_to_csv(registry: MetricsRegistry) -> str:
    """The registry as a flat CSV table (one row per series)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(CSV_COLUMNS)
    for series in registry.series():
        row: List[Any] = [series.name, series.kind, _labels_column(series)]
        if isinstance(series, (Counter, Gauge)):
            row += [series.value, "", "", "", "", ""]
        elif isinstance(series, Histogram):
            buckets = ";".join(
                f"{bound}:{count}"
                for bound, count in zip(series.bounds, series.bucket_counts)
            ) + f";inf:{series.bucket_counts[-1]}"
            row += ["", series.count, series.sum, series.min, series.max, buckets]
        else:  # pragma: no cover - exhaustive over the series types
            raise TypeError(f"unknown series type {type(series).__name__}")
        writer.writerow(row)
    return buffer.getvalue()


def write_metrics_csv(
    registry: MetricsRegistry, path: Union[str, Path]
) -> Path:
    """Write the CSV export; returns the written path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(registry_to_csv(registry), encoding="utf-8")
    return path
