"""Live campaign progress reporting.

A :class:`ProgressReporter` is a subscriber that narrates a campaign
while it runs — run counts, throughput, rounds executed — to any text
stream.  On a TTY it redraws one sticky status line (carriage-return
style); on a plain stream (CI logs, files) it emits one line per
reporting interval instead, so logs stay readable.

The reporter writes to the stream only, never into the measured
results, so attaching one cannot perturb byte-identity guarantees.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Optional, TextIO

from repro.obs.bus import Subscriber


class ProgressReporter(Subscriber):
    """Report live campaign progress to a text stream.

    ``every`` sets the reporting interval in completed runs; the final
    run of a case always reports.  Without a surrounding case (bare
    driver usage) the reporter counts runs without a known total.
    """

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        every: int = 25,
        label: Optional[str] = None,
    ) -> None:
        if every < 1:
            raise ValueError("reporting interval must be at least 1 run")
        self.stream = stream if stream is not None else sys.stderr
        self.every = every
        self.label = label
        self._total: Optional[int] = None
        self._completed = 0
        self._rounds = 0
        self._started = time.perf_counter()
        self._sticky = bool(getattr(self.stream, "isatty", lambda: False)())

    # ------------------------------------------------------------------
    # Subscriber hooks.
    # ------------------------------------------------------------------

    def on_case_start(self, config: Any) -> None:
        """Reset counters for a new case and adopt its identity."""
        self._total = config.runs
        self._completed = 0
        self._rounds = 0
        self._started = time.perf_counter()
        if self.label is None:
            self.label = str(config.algorithm)

    def on_round(self, driver: Any) -> None:
        """Track rounds for the throughput line."""
        self._rounds += 1

    def on_run_end(self, driver: Any) -> None:
        """Report at every interval boundary and on the final run."""
        self._completed += 1
        if (
            self._completed % self.every == 0
            or self._completed == self._total
        ):
            self._emit(final=self._completed == self._total)

    def on_case_end(self, result: Any) -> None:
        """Finish the sticky line so later output starts clean."""
        if self._sticky:
            self.stream.write("\n")
            self.stream.flush()

    # ------------------------------------------------------------------
    # Rendering.
    # ------------------------------------------------------------------

    def _emit(self, final: bool) -> None:
        elapsed = time.perf_counter() - self._started
        rate = self._rounds / elapsed if elapsed > 0 else 0.0
        total = f"/{self._total}" if self._total is not None else ""
        label = f"{self.label}: " if self.label else ""
        text = (
            f"{label}run {self._completed}{total}  "
            f"{self._rounds} rounds  {rate:,.0f} rounds/s"
        )
        if self._sticky:
            self.stream.write("\r" + text.ljust(60))
        else:
            self.stream.write(text + "\n")
        self.stream.flush()


class ExploreProgress(Subscriber):
    """Narrate a running exhaustive exploration to a text stream.

    The explorer's counterpart to :class:`ProgressReporter`: one line at
    start, one per progress event (scenario count, states visited,
    dedup hits, rounds executed, throughput), one at the end.  Progress
    events fire only in serial explorations — with worker sharding only
    the start/end lines appear.  Writes to the stream only, so
    attaching one cannot perturb the exploration's result.
    """

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self._started = time.perf_counter()
        self._sticky = bool(getattr(self.stream, "isatty", lambda: False)())

    def on_explore_start(self, result: Any) -> None:
        """Announce the bound being explored."""
        self._started = time.perf_counter()
        self.stream.write(
            f"explore {result.algorithm}: n={result.n_processes} "
            f"depth={result.depth} gaps={list(result.gap_options)}\n"
        )
        self.stream.flush()

    def on_explore_progress(self, result: Any, stats: Any) -> None:
        """One periodic status line (sticky on a TTY)."""
        elapsed = time.perf_counter() - self._started
        rate = result.scenarios / elapsed if elapsed > 0 else 0.0
        text = (
            f"{result.algorithm}: {result.scenarios} scenarios  "
            f"{stats.nodes} states  {stats.dedup_hits} dedup  "
            f"{stats.rounds} rounds  {rate:,.0f} scen/s"
        )
        if self._sticky:
            self.stream.write("\r" + text.ljust(78))
        else:
            self.stream.write(text + "\n")
        self.stream.flush()

    def on_explore_end(self, result: Any) -> None:
        """Close out with the verdict line."""
        if self._sticky:
            self.stream.write("\n")
        elapsed = time.perf_counter() - self._started
        verdict = "PASS" if result.passed else f"{len(result.violations)} violations"
        self.stream.write(
            f"{result.algorithm}: {result.scenarios} scenarios in "
            f"{elapsed:.1f}s — {verdict}\n"
        )
        self.stream.flush()
