"""repro.obs: the unified observability layer.

One substrate for everything the simulator can report, in three parts:

* **event bus** (`repro.obs.bus`) — the :class:`Subscriber` protocol
  and its pay-for-what-you-use dispatch.  The driver loop, campaigns
  and the GCS cluster publish; statistics collectors, trace recorders
  and invariant checkers subscribe.  Attach any subscriber through the
  single ``observers=[...]`` parameter of the publisher you care about.
* **metrics** (`repro.obs.metrics`, `repro.obs.collect`,
  `repro.obs.export`) — labelled counters/gauges/histograms with
  deterministic merge, the :class:`CampaignMetrics` subscriber that
  fills a registry from campaign events, and canonical JSONL/CSV
  exporters (JSONL round-trips).
* **profiling & progress** (`repro.obs.profile`,
  `repro.obs.progress`) — per-phase wall/CPU timing of the driver's
  round, and live progress reporting for long campaigns.

See ``docs/observability.md`` for the architecture and a subscriber
how-to, and ``examples/custom_subscriber.py`` for a worked example.
"""

from repro.obs.bus import EventBus, HOOK_NAMES, Subscriber, overrides_hook
from repro.obs.canonical import (
    canonical_digest,
    canonical_json,
    canonical_jsonl,
    canonical_line,
)
from repro.obs.collect import CampaignMetrics, ExploreMetrics
from repro.obs.export import (
    METRICS_KIND,
    load_metrics_jsonl,
    registry_from_jsonl,
    registry_to_csv,
    registry_to_jsonl,
    series_to_dict,
    write_metrics_csv,
    write_metrics_jsonl,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricSeries,
    MetricsRegistry,
    canonical_labels,
    merge_registries,
)
from repro.obs.profile import DRIVER_PHASES, PhaseProfiler, PhaseStat
from repro.obs.progress import ExploreProgress, ProgressReporter

#: Names re-exported lazily from ``repro.obs.causal``.  The causal
#: package's live observer subclasses the trace recorder, so importing
#: it here eagerly would close an import cycle
#: (``repro.sim.stats`` → ``repro.obs`` → causal → ``repro.sim.trace``
#: → ``repro.sim.stats``); PEP 562 lazy loading breaks it while keeping
#: ``from repro.obs import CausalObserver`` working.
_CAUSAL_EXPORTS = frozenset(
    {
        "ATTEMPT_OUTCOMES",
        "AttemptSpan",
        "BLAME_CATEGORIES",
        "CausalLink",
        "CausalMetrics",
        "CausalObserver",
        "GCSViewSpans",
        "PrimarySpan",
        "ViewSpan",
        "RunSpan",
        "SpanBuilder",
        "SpanIndex",
        "SpanSet",
        "render_forensics_report",
        "render_html_report",
        "spans_from_events",
        "spans_from_jsonl",
        "spans_from_recorder",
        "spans_to_jsonl",
        "write_html_report",
        "write_spans_jsonl",
    }
)


#: Names re-exported lazily from ``repro.obs.telemetry`` for the same
#: reason: trace minting pulls in ``repro.sim.rng``, which must not be
#: imported while this package is still initializing.
_TELEMETRY_EXPORTS = frozenset(
    {
        "FLIGHT_HEADER_KIND",
        "FLIGHT_KIND",
        "FlightRecorder",
        "TRACE_HEADER",
        "TelemetryCollector",
        "crash_dump_path",
        "load_flight_dump",
        "mint_trace_id",
        "parse_flight_jsonl",
        "render_prometheus",
        "write_crash_dump",
    }
)


def __getattr__(name: str):
    if name in _CAUSAL_EXPORTS:
        from repro.obs import causal

        return getattr(causal, name)
    if name in _TELEMETRY_EXPORTS:
        from repro.obs import telemetry

        return getattr(telemetry, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "CampaignMetrics",
    "Counter",
    "ExploreMetrics",
    "ExploreProgress",
    "DEFAULT_BUCKETS",
    "DRIVER_PHASES",
    "EventBus",
    "Gauge",
    "HOOK_NAMES",
    "Histogram",
    "METRICS_KIND",
    "MetricSeries",
    "MetricsRegistry",
    "PhaseProfiler",
    "PhaseStat",
    "ProgressReporter",
    "Subscriber",
    "canonical_digest",
    "canonical_json",
    "canonical_jsonl",
    "canonical_labels",
    "canonical_line",
    "load_metrics_jsonl",
    "merge_registries",
    "overrides_hook",
    "registry_from_jsonl",
    "registry_to_csv",
    "registry_to_jsonl",
    "series_to_dict",
    "write_metrics_csv",
    "write_metrics_jsonl",
    *sorted(_CAUSAL_EXPORTS),
    *sorted(_TELEMETRY_EXPORTS),
]
