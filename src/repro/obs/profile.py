"""Per-phase profiling of the simulation hot path.

A :class:`PhaseProfiler` is a subscriber the driver loop additionally
recognizes: when one is attached via ``observers=[...]`` the driver
brackets each phase of every round — polling, the mid-round cut,
delivery, view installation, and the observation pass — with
wall-clock (``perf_counter``) and CPU (``process_time``) timestamps,
and the profiler accumulates the deltas.  Nothing is recorded per
round beyond a few float additions, so profiling a 10k-round campaign
is routine; with no profiler attached the driver's only cost is one
``is None`` test per phase boundary.

The accumulated table answers the question every optimization PR asks
first: *where do the rounds actually spend their time?*  Render it
with :meth:`PhaseProfiler.describe`, export it via
:meth:`PhaseProfiler.to_registry`, or drive everything from the CLI::

    repro-experiments profile ykd --processes 16 --runs 200
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.bus import Subscriber
from repro.obs.metrics import MetricsRegistry


class PhaseStat:
    """Accumulated wall/CPU time and call count of one phase."""

    __slots__ = ("phase", "wall_seconds", "cpu_seconds", "calls")

    def __init__(self, phase: str) -> None:
        self.phase = phase
        self.wall_seconds = 0.0
        self.cpu_seconds = 0.0
        self.calls = 0


#: The driver's phase names, in execution order within a round.
DRIVER_PHASES: Tuple[str, ...] = ("poll", "cut", "deliver", "views", "observe")


class PhaseProfiler(Subscriber):
    """Accumulate per-phase timings published by an instrumented driver.

    The driver calls :meth:`lap` at each phase boundary; everything
    else (`runs`, `rounds`) arrives through the ordinary subscriber
    hooks, so the profiler also works — degraded to run/round counting
    — on publishers that do not expose phases.
    """

    def __init__(self) -> None:
        self._stats: Dict[str, PhaseStat] = {
            phase: PhaseStat(phase) for phase in DRIVER_PHASES
        }
        self.runs = 0
        self.rounds = 0

    # ------------------------------------------------------------------
    # Driver-facing API.
    # ------------------------------------------------------------------

    def lap(
        self, phase: str, wall_start: float, cpu_start: float
    ) -> Tuple[float, float]:
        """Close one phase bracket; returns the next bracket's start.

        ``wall_start``/``cpu_start`` are the timestamps the previous
        bracket returned (or the round's opening timestamps); the
        return value feeds straight into the next :meth:`lap` call, so
        a round's phases tile its duration exactly.
        """
        wall = time.perf_counter()
        cpu = time.process_time()
        stat = self._stats.get(phase)
        if stat is None:
            stat = self._stats[phase] = PhaseStat(phase)
        stat.wall_seconds += wall - wall_start
        stat.cpu_seconds += cpu - cpu_start
        stat.calls += 1
        return wall, cpu

    def open_round(self) -> Tuple[float, float]:
        """The opening timestamps of a round's first phase bracket."""
        return time.perf_counter(), time.process_time()

    # ------------------------------------------------------------------
    # Subscriber hooks.
    # ------------------------------------------------------------------

    def on_round(self, driver: Any) -> None:
        """Count one completed round."""
        self.rounds += 1

    def on_run_end(self, driver: Any) -> None:
        """Count one completed run."""
        self.runs += 1

    # ------------------------------------------------------------------
    # Results.
    # ------------------------------------------------------------------

    @property
    def total_wall_seconds(self) -> float:
        """Wall time accumulated across all phases."""
        return sum(stat.wall_seconds for stat in self._stats.values())

    def stats(self) -> List[PhaseStat]:
        """Phase stats in execution order (extra phases trail, sorted)."""
        known = [self._stats[p] for p in DRIVER_PHASES if p in self._stats]
        extra = sorted(
            (s for name, s in self._stats.items() if name not in DRIVER_PHASES),
            key=lambda s: s.phase,
        )
        return known + extra

    def to_registry(
        self, registry: Optional[MetricsRegistry] = None, **labels: Any
    ) -> MetricsRegistry:
        """Export the profile as metric series (microsecond counters).

        Times are recorded as integer microsecond counters so profile
        registries obey the same exact-merge rules as every other
        campaign metric.
        """
        registry = registry if registry is not None else MetricsRegistry()
        for stat in self.stats():
            registry.counter(
                "phase_wall_us", phase=stat.phase, **labels
            ).inc(int(stat.wall_seconds * 1e6))
            registry.counter(
                "phase_cpu_us", phase=stat.phase, **labels
            ).inc(int(stat.cpu_seconds * 1e6))
            registry.counter(
                "phase_calls", phase=stat.phase, **labels
            ).inc(stat.calls)
        registry.counter("profiled_rounds", **labels).inc(self.rounds)
        registry.counter("profiled_runs", **labels).inc(self.runs)
        return registry

    def describe(self) -> str:
        """An aligned per-phase table for terminal output."""
        total = self.total_wall_seconds
        lines = [
            f"{'phase':<10} {'wall s':>9} {'%':>6} {'cpu s':>9} "
            f"{'calls':>9} {'us/call':>9}"
        ]
        for stat in self.stats():
            share = 100.0 * stat.wall_seconds / total if total else 0.0
            per_call = (
                1e6 * stat.wall_seconds / stat.calls if stat.calls else 0.0
            )
            lines.append(
                f"{stat.phase:<10} {stat.wall_seconds:>9.4f} {share:>5.1f}% "
                f"{stat.cpu_seconds:>9.4f} {stat.calls:>9} {per_call:>9.1f}"
            )
        lines.append(
            f"{'total':<10} {total:>9.4f} {'100.0%':>6} "
            f"{sum(s.cpu_seconds for s in self._stats.values()):>9.4f} "
            f"{self.rounds:>9} rounds / {self.runs} runs"
        )
        return "\n".join(lines)
