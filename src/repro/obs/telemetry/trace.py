"""Cross-process trace ids: pure hashes, carried in one HTTP header.

A trace id names one client request across every hop it touches — the
load generator that minted it, the frontend that accepted it, the
store replica that served (or refused) it, and the GCS node whose tick
loop moved the write.  Like every other draw in this repository it is
a *pure hash* — :func:`~repro.sim.rng.derive_seed` over ``(seed,
client, tick)`` under its own namespace — so replaying ``load --seed
N`` reproduces the identical trace ids, and two flight-recorder dumps
of the same seeded scenario join line-for-line.

The id is deliberately *not* part of :class:`~repro.service.load
.ClientOp` — the op stream's canonical digest predates tracing and
must not shift under existing seeds.  Minting is a separate pure
function of the same inputs, which is equivalent and compatible.
"""

from __future__ import annotations

from repro.sim.rng import derive_seed

#: The header that carries a trace id into a frontend.  Anything the
#: frontend reads here is propagated as-is; absent means untraced.
TRACE_HEADER = "X-Repro-Trace"

#: Namespace label separating trace draws from every other consumer.
TRACE_NS = "service.trace"


def mint_trace_id(seed: int, client: int, tick: int) -> str:
    """The trace id of one ``(seed, client, tick)`` request: 16 hex."""
    return format(derive_seed(seed, TRACE_NS, client, tick), "016x")
