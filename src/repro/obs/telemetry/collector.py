"""The scrape-plane collector: per-node streams → one deterministic view.

A :class:`TelemetryCollector` gathers the flight-recorder streams of a
whole cluster — in-process from a
:class:`~repro.service.cluster.StoreCluster`, over the controller pipe
from a :class:`~repro.gcs.proc.controller.ProcCluster` — plus whatever
scenario-level series the caller notes directly, and presents both
deterministically:

* :meth:`aggregated_jsonl` — every node's header and events as one
  canonical JSONL document, nodes in a fixed order, events in recorded
  order.  For the deterministic substrates this text is **byte
  identical across replays** (the acceptance criterion the telemetry
  scenario test pins);
* :meth:`fold` — the streams reduced into a
  :class:`~repro.obs.metrics.MetricsRegistry` (event counts per node
  and kind, drop counts) merged with the noted series, in the same
  fixed node order — the merge discipline of
  :func:`repro.obs.metrics.merge_registries`, so shard order can never
  leak into the output.

The noted series use :meth:`note_request` / :meth:`note_tick` /
:meth:`note_availability`, which is what
:func:`repro.service.scenario.run_scenario` calls while routing; the
latency/availability distributions come back out through
:meth:`~repro.obs.metrics.Histogram.percentile` in :meth:`describe`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple, Union

from repro.obs.canonical import canonical_digest, canonical_jsonl
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry.recorder import (
    FLIGHT_HEADER_KIND,
    FlightRecorder,
)

NodeName = Union[int, str]


def _node_order(node: NodeName) -> Tuple[int, Union[int, str]]:
    """Fixed node ordering: integer pids first, then named streams."""
    if isinstance(node, int):
        return (0, node)
    return (1, str(node))


def fold_flight_streams(
    streams: List[Dict[str, Any]],
    into: Optional[MetricsRegistry] = None,
) -> MetricsRegistry:
    """Reduce stream snapshots to flight counters, in the given order."""
    registry = into if into is not None else MetricsRegistry()
    for stream in streams:
        node = stream["node"]
        registry.counter("telemetry.flight.recorded", node=node).inc(
            stream.get("recorded", len(stream["events"]))
        )
        registry.counter("telemetry.flight.dropped", node=node).inc(
            stream.get("dropped", 0)
        )
        for event in stream["events"]:
            registry.counter(
                "telemetry.flight.events", node=node, event=event["event"]
            ).inc()
    return registry


class TelemetryCollector:
    """Pulls per-node flight streams and folds them deterministically."""

    def __init__(self) -> None:
        self._streams: Dict[NodeName, Dict[str, Any]] = {}
        #: Scenario-noted series (requests, blame, per-tick histograms).
        self.registry = MetricsRegistry()

    # ------------------------------------------------------------------
    # Stream intake.
    # ------------------------------------------------------------------

    def add_snapshot(self, snapshot: Dict[str, Any]) -> None:
        """Install one node's stream snapshot (last write wins)."""
        self._streams[snapshot["node"]] = {
            "node": snapshot["node"],
            "capacity": snapshot.get("capacity"),
            "recorded": snapshot.get("recorded", len(snapshot["events"])),
            "dropped": snapshot.get("dropped", 0),
            "events": list(snapshot["events"]),
        }

    def attach(self, recorder: FlightRecorder) -> None:
        """Pull one in-process recorder's current stream."""
        self.add_snapshot(recorder.snapshot())

    def collect_store_cluster(self, cluster: Any) -> None:
        """Pull every replica recorder of a :class:`StoreCluster`."""
        for pid in sorted(cluster.recorders):
            self.attach(cluster.recorders[pid])

    def collect_proc_cluster(self, cluster: Any) -> None:
        """Pull every node stream of a :class:`ProcCluster` (pipe)."""
        for snapshot in cluster.collect_telemetry().values():
            self.add_snapshot(snapshot)

    # ------------------------------------------------------------------
    # Aggregated views.
    # ------------------------------------------------------------------

    def nodes(self) -> List[NodeName]:
        """Every collected node, in the fixed aggregation order."""
        return sorted(self._streams, key=_node_order)

    def aggregated_events(self) -> List[Dict[str, Any]]:
        """Headers and events of every node, in aggregation order."""
        lines: List[Dict[str, Any]] = []
        for node in self.nodes():
            stream = self._streams[node]
            lines.append(
                {
                    "kind": FLIGHT_HEADER_KIND,
                    "node": node,
                    "capacity": stream["capacity"],
                    "recorded": stream["recorded"],
                    "dropped": stream["dropped"],
                }
            )
            lines.extend(stream["events"])
        return lines

    def aggregated_jsonl(self) -> str:
        """The whole cluster's telemetry as canonical JSON lines.

        Replay-deterministic on the deterministic substrates: same
        seeded scenario, byte-identical text (trace ids included).
        """
        return canonical_jsonl(self.aggregated_events())

    def aggregated_digest(self) -> str:
        """A content digest of :meth:`aggregated_jsonl`."""
        return canonical_digest(self.aggregated_events())

    # ------------------------------------------------------------------
    # Scenario-side notes (called while routing requests).
    # ------------------------------------------------------------------

    def note_request(self, outcome: str, blame: Optional[str] = None) -> None:
        """Count one routed request by outcome (and blame if unserved)."""
        self.registry.counter("service.requests", outcome=outcome).inc()
        if blame is not None:
            self.registry.counter("service.unserved", blame=blame).inc()

    def note_tick(self, requests: int, served: int) -> None:
        """Feed the per-tick load/served distributions."""
        self.registry.histogram("service.tick.requests").observe(requests)
        self.registry.histogram("service.tick.served").observe(served)

    def note_availability(
        self, user_percent: float, round_percent: float
    ) -> None:
        """Record the run's two headline availability figures."""
        self.registry.gauge("service.availability.user_percent").set(
            user_percent
        )
        self.registry.gauge("service.availability.round_percent").set(
            round_percent
        )

    # ------------------------------------------------------------------
    # Fold and describe.
    # ------------------------------------------------------------------

    def fold(self) -> MetricsRegistry:
        """Streams + noted series as one deterministic registry."""
        folded = fold_flight_streams(
            [self._streams[node] for node in self.nodes()]
        )
        folded.merge(self.registry)
        return folded

    def describe(self) -> str:
        """A terminal-friendly summary (uses ``Histogram.percentile``)."""
        lines: List[str] = []
        events = 0
        dropped = 0
        for node in self.nodes():
            stream = self._streams[node]
            events += len(stream["events"])
            dropped += stream["dropped"]
        lines.append(
            f"telemetry: {len(self._streams)} node streams, "
            f"{events} events retained, {dropped} dropped off rings"
        )
        by_event: Dict[str, int] = {}
        for node in self.nodes():
            for event in self._streams[node]["events"]:
                by_event[event["event"]] = by_event.get(event["event"], 0) + 1
        if by_event:
            breakdown = ", ".join(
                f"{name}={count}" for name, count in sorted(by_event.items())
            )
            lines.append(f"  events: {breakdown}")
        for name in ("service.tick.requests", "service.tick.served"):
            series = self.registry.get(name)
            if series is not None and series.count:  # type: ignore[union-attr]
                summary = series.summary()  # type: ignore[union-attr]
                lines.append(
                    f"  {name}: p50={summary['p50']} p90={summary['p90']} "
                    f"p99={summary['p99']} max={summary['max']}"
                )
        user = self.registry.get("service.availability.user_percent")
        rounds = self.registry.get("service.availability.round_percent")
        if user is not None and rounds is not None:
            lines.append(
                f"  availability: user-perceived {user.value:.2f}% vs "
                f"round-level {rounds.value:.2f}%"  # type: ignore[union-attr]
            )
        return "\n".join(lines)
