"""repro.obs.telemetry: the live cluster's measurement plane.

PR 3 gave the *simulator* one observability substrate; this package
gives the same treatment to the pieces closest to production — the
multi-process cluster (:mod:`repro.gcs.proc`) and the HTTP service
(:mod:`repro.service`).  Three cooperating parts:

* **flight recorders** (:mod:`repro.obs.telemetry.recorder`) — one
  bounded, deterministic ring buffer of structured events per node
  (GCS view changes, ARQ counter movements, store ops, HTTP requests
  with blame tags), dumped as canonical JSONL on demand and
  automatically when a proc node dies, so dead children leave a
  post-mortem;
* **trace propagation** (:mod:`repro.obs.telemetry.trace`) — request
  ids minted by the load generator as a pure hash of ``(seed, client,
  tick)`` and carried through HTTP headers into the frontend, the
  store and the GCS tick loop, so replays produce identical trace ids
  and an unserved request can be joined against the blame span that
  fenced it;
* **the scrape plane** (:mod:`repro.obs.telemetry.prom`,
  :mod:`repro.obs.telemetry.collector`) — a stdlib Prometheus-text
  renderer for the existing :class:`~repro.obs.metrics.MetricsRegistry`
  (served from ``GET /metrics`` on every frontend) and a collector
  that pulls per-node event streams (over the proc-controller pipe for
  a :class:`~repro.gcs.proc.controller.ProcCluster`, in-process for a
  :class:`~repro.service.cluster.StoreCluster`) and folds them into a
  registry with the same deterministic merge discipline PR 3 proved.

Everything here reuses the repo's one canonical encoder
(:mod:`repro.obs.canonical`) and one metrics model
(:mod:`repro.obs.metrics`); nothing is reinvented.  See
``docs/observability.md`` (distributed telemetry) and
``docs/forensics.md`` (post-mortem workflow).
"""

from repro.obs.telemetry.collector import TelemetryCollector, fold_flight_streams
from repro.obs.telemetry.prom import render_prometheus
from repro.obs.telemetry.recorder import (
    FLIGHT_HEADER_KIND,
    FLIGHT_KIND,
    FlightRecorder,
    crash_dump_path,
    load_flight_dump,
    parse_flight_jsonl,
    write_crash_dump,
)
from repro.obs.telemetry.trace import TRACE_HEADER, TRACE_NS, mint_trace_id

__all__ = [
    "FLIGHT_HEADER_KIND",
    "FLIGHT_KIND",
    "FlightRecorder",
    "TRACE_HEADER",
    "TRACE_NS",
    "TelemetryCollector",
    "crash_dump_path",
    "fold_flight_streams",
    "load_flight_dump",
    "mint_trace_id",
    "parse_flight_jsonl",
    "render_prometheus",
    "write_crash_dump",
]
