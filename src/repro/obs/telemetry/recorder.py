"""Bounded per-node flight recorders with canonical JSONL dumps.

A :class:`FlightRecorder` is the black box every proc node, store
replica and HTTP frontend carries: a fixed-capacity ring of structured
events.  Recording never allocates beyond the ring (the oldest event
falls off and is *counted*, not silently lost), never touches the
clock (events carry whatever tick/seq the caller passes — wall time
would break replay determinism), and serializes through the repo's one
canonical encoder, so two identical runs dump byte-identical streams.

Dump format — one canonical JSON object per line:

* line 1: a **header**, ``kind = "repro.obs/flight_header"``, carrying
  the node name, ring capacity, how many events were ever recorded and
  how many were dropped off the ring;
* every further line: an **event**, ``kind = "repro.obs/flight"``,
  carrying the node, a monotonically increasing per-recorder ``seq``,
  the event name and its fields.

:func:`write_crash_dump` is the post-mortem path: a dying proc node
appends one ``crash`` event (the traceback) and writes its whole ring
next to the others, so the controller — or a human, later — can read
what the dead child saw (:func:`crash_dump_path` names the file).
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import Any, Deque, Dict, List, Optional, Tuple, Union

from repro.obs.canonical import canonical_jsonl

#: Envelope stamp on every recorded event line.
FLIGHT_KIND = "repro.obs/flight"
#: Envelope stamp on the per-node stream header line.
FLIGHT_HEADER_KIND = "repro.obs/flight_header"

#: Default ring capacity — enough for minutes of cluster life without
#: letting a chatty node grow without bound.
DEFAULT_CAPACITY = 2048


class FlightRecorder:
    """A fixed-capacity ring of structured events for one node."""

    __slots__ = ("node", "capacity", "_ring", "_recorded")

    def __init__(
        self, node: Union[int, str], capacity: int = DEFAULT_CAPACITY
    ) -> None:
        if capacity < 1:
            raise ValueError("flight recorder capacity must be >= 1")
        self.node = node
        self.capacity = capacity
        self._ring: Deque[Dict[str, Any]] = deque(maxlen=capacity)
        self._recorded = 0

    def record(self, event: str, **fields: Any) -> Dict[str, Any]:
        """Append one event (JSON-ready fields only); returns the line.

        The sequence number is assigned here and never reused, so gaps
        at the front of a dumped stream reveal exactly how much history
        the ring shed.
        """
        line = {
            "kind": FLIGHT_KIND,
            "node": self.node,
            "seq": self._recorded,
            "event": event,
        }
        line.update(fields)
        self._ring.append(line)
        self._recorded += 1
        return line

    @property
    def recorded(self) -> int:
        """Events ever recorded (retained or not)."""
        return self._recorded

    @property
    def dropped(self) -> int:
        """Events that fell off the ring."""
        return self._recorded - len(self._ring)

    def __len__(self) -> int:
        return len(self._ring)

    def events(self) -> List[Dict[str, Any]]:
        """The retained events, oldest first (shallow copies)."""
        return [dict(line) for line in self._ring]

    def header(self) -> Dict[str, Any]:
        """The stream header line (capacity/recorded/dropped)."""
        return {
            "kind": FLIGHT_HEADER_KIND,
            "node": self.node,
            "capacity": self.capacity,
            "recorded": self._recorded,
            "dropped": self.dropped,
        }

    def snapshot(self) -> Dict[str, Any]:
        """A picklable snapshot (what the proc pipe protocol ships)."""
        return {
            "node": self.node,
            "capacity": self.capacity,
            "recorded": self._recorded,
            "dropped": self.dropped,
            "events": self.events(),
        }

    def to_jsonl(self) -> str:
        """Header plus every retained event as canonical JSON lines."""
        return canonical_jsonl([self.header(), *self._ring])

    def dump(self, path: Union[str, Path]) -> Path:
        """Write the canonical dump to ``path``; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_jsonl(), encoding="utf-8")
        return path


# ----------------------------------------------------------------------
# Crash dumps (the proc-node post-mortem path).
# ----------------------------------------------------------------------


def crash_dump_path(directory: Union[str, Path], node: Union[int, str]) -> Path:
    """Where one node's post-mortem flight dump lives."""
    return Path(directory) / f"flight-node{node}.jsonl"


def write_crash_dump(
    recorder: FlightRecorder,
    directory: Union[str, Path],
    error: str,
) -> Optional[Path]:
    """Record the fatal error and dump the ring; None when unwritable.

    This runs on a node that is already dying — it must never raise, or
    the real traceback headed for the controller would be masked.
    """
    try:
        recorder.record("crash", error=error)
        return recorder.dump(crash_dump_path(directory, recorder.node))
    except OSError:
        return None


# ----------------------------------------------------------------------
# Reading dumps back.
# ----------------------------------------------------------------------


def parse_flight_jsonl(
    text: str,
) -> Tuple[List[Dict[str, Any]], List[Dict[str, Any]]]:
    """Split dump text into (headers, events); rejects foreign lines."""
    headers: List[Dict[str, Any]] = []
    events: List[Dict[str, Any]] = []
    for line_number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"flight line {line_number}: not valid JSON ({exc})"
            ) from exc
        kind = data.get("kind")
        if kind == FLIGHT_HEADER_KIND:
            headers.append(data)
        elif kind == FLIGHT_KIND:
            events.append(data)
        else:
            raise ValueError(
                f"flight line {line_number}: not a flight line "
                f"(kind={kind!r})"
            )
    return headers, events


def load_flight_dump(
    path: Union[str, Path],
) -> Tuple[List[Dict[str, Any]], List[Dict[str, Any]]]:
    """Read one dump file back into (headers, events)."""
    return parse_flight_jsonl(Path(path).read_text(encoding="utf-8"))
