"""Prometheus text exposition for a :class:`MetricsRegistry` (stdlib).

The scrape plane's wire format: every series of the registry rendered
in the Prometheus 0.0.4 text format, from the registry's canonical
(name, labels) order — so two equal registries render byte-identically
and a scrape diff is a metrics diff.

The mapping is the obvious one:

* **Counter** → one sample line (``# TYPE ... counter``);
* **Gauge** → one sample line (``# TYPE ... gauge``);
* **Histogram** → cumulative ``_bucket`` lines (one per bound plus
  ``le="+Inf"``), ``_sum`` and ``_count`` (``# TYPE ... histogram``).

Metric names are sanitized to the Prometheus charset (dots become
underscores — ``service.http.requests`` scrapes as
``service_http_requests``); label values are escaped per the format
spec.  No client library is involved: the format is five rules and a
loop, and the repo's no-new-dependencies constraint holds.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_BAD = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_BAD = re.compile(r"[^a-zA-Z0-9_]")


def sanitize_metric_name(name: str) -> str:
    """The Prometheus-legal form of a registry metric name."""
    cleaned = _NAME_BAD.sub("_", name)
    if not _NAME_OK.match(cleaned):
        cleaned = "_" + cleaned
    return cleaned


def _sanitize_label_name(name: str) -> str:
    cleaned = _LABEL_BAD.sub("_", name)
    if cleaned[:1].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: Any) -> str:
    if isinstance(value, bool):  # bool is an int; be explicit anyway
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _label_block(labels, extra: Dict[str, str] = {}) -> str:
    items = [
        (_sanitize_label_name(key), _escape_label_value(str(value)))
        for key, value in labels
    ]
    items.extend(
        (_sanitize_label_name(key), _escape_label_value(value))
        for key, value in extra.items()
    )
    if not items:
        return ""
    inner = ",".join(f'{key}="{value}"' for key, value in items)
    return "{" + inner + "}"


def render_prometheus(registry: MetricsRegistry) -> str:
    """The whole registry in Prometheus text format (0.0.4)."""
    lines: List[str] = []
    typed: set = set()
    for series in registry.series():
        name = sanitize_metric_name(series.name)
        if isinstance(series, Counter):
            if name not in typed:
                lines.append(f"# TYPE {name} counter")
                typed.add(name)
            lines.append(
                f"{name}{_label_block(series.labels)} "
                f"{_format_value(series.value)}"
            )
        elif isinstance(series, Gauge):
            if name not in typed:
                lines.append(f"# TYPE {name} gauge")
                typed.add(name)
            lines.append(
                f"{name}{_label_block(series.labels)} "
                f"{_format_value(series.value)}"
            )
        elif isinstance(series, Histogram):
            if name not in typed:
                lines.append(f"# TYPE {name} histogram")
                typed.add(name)
            cumulative = 0
            for bound, bucket in zip(series.bounds, series.bucket_counts):
                cumulative += bucket
                lines.append(
                    f"{name}_bucket"
                    f"{_label_block(series.labels, {'le': str(bound)})} "
                    f"{cumulative}"
                )
            lines.append(
                f"{name}_bucket"
                f"{_label_block(series.labels, {'le': '+Inf'})} "
                f"{series.count}"
            )
            lines.append(
                f"{name}_sum{_label_block(series.labels)} "
                f"{_format_value(series.sum)}"
            )
            lines.append(
                f"{name}_count{_label_block(series.labels)} {series.count}"
            )
        else:  # pragma: no cover - exhaustive over the series types
            raise TypeError(f"unknown series type {type(series).__name__}")
    return "\n".join(lines) + ("\n" if lines else "")
