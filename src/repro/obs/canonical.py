"""The one canonical JSON line encoder.

Every byte-pinned artifact in the project — trace digests and golden
files (``repro.sim.trace``), metrics JSONL (``repro.obs.export``),
span JSONL (``repro.obs.causal``) — frames its records the same way:
one JSON object per line, keys sorted, default separators, a single
trailing newline.  That framing used to be spelled out independently
at each site; this module is the single definition, and
``tests/test_canonical.py`` pins the exact bytes so no call site can
drift without tripping a golden.

The encoding is deliberately the plain ``json.dumps(obj,
sort_keys=True)`` form (ASCII-safe escapes, ``", "``/``": "``
separators): that is what every historical golden file and committed
trace digest was produced with, so adopting the shared encoder is a
pure refactor — byte-for-byte identical output.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Iterable


def canonical_json(obj: Any) -> str:
    """One object as canonical JSON text (sorted keys, no newline)."""
    return json.dumps(obj, sort_keys=True)


def canonical_line(obj: Any) -> bytes:
    """One object as a canonical newline-framed JSON line (bytes)."""
    return canonical_json(obj).encode("utf-8") + b"\n"


def canonical_jsonl(objs: Iterable[Any]) -> str:
    """Many objects as canonical JSON lines (empty input → empty text)."""
    lines = [canonical_json(obj) for obj in objs]
    return "\n".join(lines) + ("\n" if lines else "")


def canonical_digest(objs: Iterable[Any]) -> str:
    """SHA-256 hex digest over the canonical line stream of ``objs``.

    Folding :func:`canonical_line` of each object into one running
    SHA-256 — the exact computation ``trace_digest`` and
    :class:`~repro.sim.trace.TraceDigester` perform, available to any
    other stream that wants digest pinning.
    """
    sha = hashlib.sha256()
    for obj in objs:
        sha.update(canonical_line(obj))
    return sha.hexdigest()
