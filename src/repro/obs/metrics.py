"""Labelled metrics: counters, gauges, histograms, deterministic merge.

A :class:`MetricsRegistry` owns named series, each identified by a
metric name plus a canonical (sorted) label set — the model of every
mainstream metrics system, restricted to what a deterministic simulator
needs:

* **Counter** — monotonically increasing total (runs, rounds, changes);
* **Gauge** — last-written value (a configuration echo, a final level);
* **Histogram** — fixed integer-friendly buckets plus count/sum/min/max
  (per-run round counts, session histograms).

Registries **merge deterministically**: counters and histogram buckets
add, gauges take the later registry's value when it was ever set, and
extrema combine.  Merging shard registries in shard order therefore
reproduces the serial registry exactly — for integer observations the
equality is bit-for-bit, which is what lets
``repro.sim.parallel`` guarantee byte-identical metrics output across
worker counts (see ``tests/test_obs_parallel.py``).  Float observations
merge exactly too as long as each series is observed within a single
shard; across shards float sums re-associate and may differ in the last
ulp — campaign metrics therefore stick to integers.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple, Union

Number = Union[int, float]

#: Canonical label form: a sorted tuple of (key, value) string pairs.
LabelItems = Tuple[Tuple[str, str], ...]

#: Default histogram buckets: powers of two up to 4096 ("less than or
#: equal" upper bounds; observations above the last bound land in the
#: implicit overflow bucket).  Round counts, change counts and session
#: counts all fit comfortably.
DEFAULT_BUCKETS: Tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096)


def canonical_labels(labels: Mapping[str, Any]) -> LabelItems:
    """The canonical form of a label mapping (sorted, stringified).

    Values are stringified so that a label written as ``runs=40`` and
    one written as ``runs="40"`` name the same series, and so the
    canonical JSON export never depends on value types.
    """
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class MetricSeries:
    """Base of one named, labelled series inside a registry."""

    kind = "series"
    __slots__ = ("name", "labels")

    def __init__(self, name: str, labels: LabelItems) -> None:
        self.name = name
        self.labels = labels

    def merge(self, other: "MetricSeries") -> None:
        """Fold another series of the same identity into this one."""
        raise NotImplementedError

    def value_dict(self) -> Dict[str, Any]:
        """The kind-specific value fields for export."""
        raise NotImplementedError

    def _check_mergeable(self, other: "MetricSeries") -> None:
        if type(other) is not type(self) or other.name != self.name or other.labels != self.labels:
            raise ValueError(
                f"cannot merge {other.kind} {other.name!r}{dict(other.labels)} "
                f"into {self.kind} {self.name!r}{dict(self.labels)}"
            )


class Counter(MetricSeries):
    """A monotonically increasing total."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self, name: str, labels: LabelItems) -> None:
        super().__init__(name, labels)
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        """Add ``amount`` (must be non-negative) to the total."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount

    def merge(self, other: MetricSeries) -> None:
        """Counters add."""
        self._check_mergeable(other)
        self.value += other.value  # type: ignore[attr-defined]

    def value_dict(self) -> Dict[str, Any]:
        """Export fields: the running total."""
        return {"value": self.value}


class Gauge(MetricSeries):
    """A last-written level (not aggregated, just remembered)."""

    kind = "gauge"
    __slots__ = ("value", "written")

    def __init__(self, name: str, labels: LabelItems) -> None:
        super().__init__(name, labels)
        self.value: Number = 0
        self.written = False

    def set(self, value: Number) -> None:
        """Record the current level."""
        self.value = value
        self.written = True

    def merge(self, other: MetricSeries) -> None:
        """Later registries win: merge order is the serial write order."""
        self._check_mergeable(other)
        if other.written:  # type: ignore[attr-defined]
            self.value = other.value  # type: ignore[attr-defined]
            self.written = True

    def value_dict(self) -> Dict[str, Any]:
        """Export fields: the last-written level."""
        return {"value": self.value, "written": self.written}


class Histogram(MetricSeries):
    """Bucketed distribution with exact count/sum/min/max.

    ``bucket_counts[i]`` counts observations ``<= bounds[i]`` and
    ``> bounds[i-1]``; one extra overflow slot counts observations
    above the last bound.  Bounds are fixed at creation, so histograms
    from different shards of the same campaign always align and merge
    by elementwise addition.
    """

    kind = "histogram"
    __slots__ = ("bounds", "bucket_counts", "count", "sum", "min", "max")

    def __init__(
        self, name: str, labels: LabelItems, bounds: Tuple[Number, ...]
    ) -> None:
        super().__init__(name, labels)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError(
                f"histogram {name!r} needs strictly increasing bounds"
            )
        self.bounds = tuple(bounds)
        self.bucket_counts: List[int] = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum: Number = 0
        self.min: Optional[Number] = None
        self.max: Optional[Number] = None

    def observe(self, value: Number) -> None:
        """Record one observation."""
        slot = len(self.bounds)
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                slot = index
                break
        self.bucket_counts[slot] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observations (NaN when empty)."""
        if not self.count:
            return float("nan")
        return self.sum / self.count

    def percentile(self, q: Number) -> Optional[Number]:
        """The q-th percentile of the bucketed distribution (exact rule).

        Deterministic, integer-only semantics against the recorded
        buckets: the rank is ``ceil(q/100 × count)`` (at least 1), and
        the result is the upper bound of the bucket holding that rank —
        the smallest recorded bound with at least ``rank`` observations
        at or below it.  Three refinements make the edges exact: ``q =
        0`` returns the recorded minimum, a rank landing in the
        overflow bucket returns the recorded maximum (the only exact
        value known above the last bound), and a bucket bound above
        the recorded maximum clamps to it (the distribution provably
        never reaches the bound).  Empty histograms return ``None``.

        The same histogram always yields the same percentile whatever
        shard order produced it, because merge adds buckets elementwise.
        """
        if not 0 <= q <= 100:
            raise ValueError(f"percentile q must be in [0, 100], got {q!r}")
        if not self.count:
            return None
        if q == 0:
            return self.min
        rank = -((-q * self.count) // 100)  # ceil(q*count/100), ints only
        if rank < 1:
            rank = 1
        cumulative = 0
        for index, bucket in enumerate(self.bucket_counts):
            cumulative += bucket
            if cumulative >= rank:
                if index < len(self.bounds):
                    bound = self.bounds[index]
                    if self.max is not None and self.max < bound:
                        return self.max
                    return bound
                return self.max  # overflow bucket: max is exact
        return self.max  # pragma: no cover - rank <= count always lands

    def summary(self) -> Dict[str, Any]:
        """Count/sum/min/max/mean plus the p50/p90/p99 percentiles."""
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": None if not self.count else self.sum / self.count,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }

    def merge(self, other: MetricSeries) -> None:
        """Buckets, counts and sums add; extrema combine."""
        self._check_mergeable(other)
        assert isinstance(other, Histogram)
        if other.bounds != self.bounds:
            raise ValueError(
                f"histogram {self.name!r}: bucket bounds differ "
                f"({self.bounds} vs {other.bounds})"
            )
        for index, bucket in enumerate(other.bucket_counts):
            self.bucket_counts[index] += bucket
        self.count += other.count
        self.sum += other.sum
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max

    def value_dict(self) -> Dict[str, Any]:
        """Export fields: bounds, bucket counts, count/sum/min/max."""
        return {
            "bounds": list(self.bounds),
            "buckets": list(self.bucket_counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }


class MetricsRegistry:
    """A set of labelled series with get-or-create accessors.

    Accessors are idempotent: asking twice for the same (name, labels)
    returns the same series object, so publishers can resolve a series
    once (outside their hot loop) and mutate it directly.
    """

    __slots__ = ("_series",)

    def __init__(self) -> None:
        self._series: Dict[Tuple[str, LabelItems], MetricSeries] = {}

    # ------------------------------------------------------------------
    # Get-or-create accessors.
    # ------------------------------------------------------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        """The counter of this name and label set (created on demand)."""
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """The gauge of this name and label set (created on demand)."""
        return self._get_or_create(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        buckets: Tuple[Number, ...] = DEFAULT_BUCKETS,
        **labels: Any,
    ) -> Histogram:
        """The histogram of this name and label set (created on demand).

        ``buckets`` only applies on creation; asking again with
        different bounds for an existing series raises.
        """
        key = (name, canonical_labels(labels))
        series = self._series.get(key)
        if series is None:
            series = Histogram(name, key[1], tuple(buckets))
            self._series[key] = series
        elif not isinstance(series, Histogram):
            raise ValueError(
                f"{name!r}{dict(key[1])} already exists as a {series.kind}"
            )
        elif series.bounds != tuple(buckets):
            raise ValueError(
                f"histogram {name!r}{dict(key[1])} already exists with "
                f"bounds {series.bounds}"
            )
        return series

    def _get_or_create(self, cls, name: str, labels: Mapping[str, Any]):
        key = (name, canonical_labels(labels))
        series = self._series.get(key)
        if series is None:
            series = cls(name, key[1])
            self._series[key] = series
        elif type(series) is not cls:
            raise ValueError(
                f"{name!r}{dict(key[1])} already exists as a {series.kind}"
            )
        return series

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    def series(self) -> List[MetricSeries]:
        """Every series, sorted by (name, labels) — the canonical order."""
        return [
            self._series[key] for key in sorted(self._series)
        ]

    def get(
        self, name: str, labels: Optional[Mapping[str, Any]] = None
    ) -> Optional[MetricSeries]:
        """The existing series of this identity, or None."""
        return self._series.get((name, canonical_labels(labels or {})))

    def __len__(self) -> int:
        return len(self._series)

    def __iter__(self) -> Iterable[MetricSeries]:
        return iter(self.series())

    # ------------------------------------------------------------------
    # Merge.
    # ------------------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one, series by series.

        Merging shard registries **in shard order** into a fresh
        registry reproduces the serial registry exactly; see the module
        docstring for the determinism contract.
        """
        for key in sorted(other._series):
            theirs = other._series[key]
            mine = self._series.get(key)
            if mine is None:
                self._series[key] = _copy_series(theirs)
            else:
                mine.merge(theirs)


def _copy_series(series: MetricSeries) -> MetricSeries:
    """A deep, independent copy of one series (for merge-into-fresh)."""
    if isinstance(series, Counter):
        copy: MetricSeries = Counter(series.name, series.labels)
        copy.value = series.value  # type: ignore[attr-defined]
        return copy
    if isinstance(series, Gauge):
        copy = Gauge(series.name, series.labels)
        copy.value = series.value  # type: ignore[attr-defined]
        copy.written = series.written  # type: ignore[attr-defined]
        return copy
    if isinstance(series, Histogram):
        copy = Histogram(series.name, series.labels, series.bounds)
        copy.bucket_counts = list(series.bucket_counts)  # type: ignore[attr-defined]
        copy.count = series.count  # type: ignore[attr-defined]
        copy.sum = series.sum  # type: ignore[attr-defined]
        copy.min = series.min  # type: ignore[attr-defined]
        copy.max = series.max  # type: ignore[attr-defined]
        return copy
    raise TypeError(f"unknown series type {type(series).__name__}")


def merge_registries(registries: Iterable[MetricsRegistry]) -> MetricsRegistry:
    """Merge many registries (in the given order) into a fresh one."""
    merged = MetricsRegistry()
    for registry in registries:
        merged.merge(registry)
    return merged
