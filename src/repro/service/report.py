"""The canonical availability report of one service scenario.

The report is the artifact the tentpole exists for: it contrasts the
thesis' round-level availability (did *a* primary exist this round?)
with user-perceived availability (did *my* request complete?), and
splits every unserved request across the causal blame categories of
:mod:`repro.service.blame`.  It is serialized through the repo's one
canonical JSON encoder, so running the same seeded scenario twice
produces byte-identical files — replayability is asserted, not hoped
for.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.obs.canonical import canonical_json
from repro.service.blame import SERVICE_BLAME_CATEGORIES
from repro.service.load import LoadProfile

REPORT_KIND = "repro.service/availability_report"


def _percent(part: int, whole: int) -> float:
    return round(100.0 * part / whole, 4) if whole else 100.0


def build_report(
    profile: LoadProfile,
    algorithm: str,
    n_processes: int,
    schedule_name: Optional[str],
    workload_digest: str,
    served_gets: int,
    puts_direct: int,
    puts_redirected: int,
    unserved: Dict[str, int],
    rounds_with_primary: int,
    stages: List[Dict[str, Any]],
) -> Dict[str, Any]:
    """Assemble the JSON-ready report from the scenario's counters.

    ``unserved`` may omit categories; the emitted breakdown always
    carries every category (zeroes included) so the schema never
    shifts under a reader.
    """
    served = served_gets + puts_direct + puts_redirected
    lost = sum(unserved.values())
    total = served + lost
    return {
        "kind": REPORT_KIND,
        "algorithm": algorithm,
        "n_processes": n_processes,
        "schedule": schedule_name,
        "profile": profile.to_dict(),
        "workload_digest": workload_digest,
        "requests": {
            "total": total,
            "served": {
                "gets": served_gets,
                "puts_direct": puts_direct,
                "puts_redirected": puts_redirected,
            },
            "unserved": {
                "by_category": {
                    category: unserved.get(category, 0)
                    for category in SERVICE_BLAME_CATEGORIES
                },
                "total": lost,
            },
        },
        "availability": {
            "user_perceived_percent": _percent(served, total),
            "round_level_percent": _percent(
                rounds_with_primary, profile.ticks
            ),
        },
        "stages": stages,
    }


def render_report(report: Dict[str, Any]) -> str:
    """The report as one canonical JSON line (byte-pinned framing)."""
    return canonical_json(report) + "\n"


def write_report(report: Dict[str, Any], path: Path) -> Path:
    """Write the canonical report text to ``path`` and return it."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_report(report), encoding="utf-8")
    return path


def describe_report(report: Dict[str, Any]) -> str:
    """A terminal-friendly summary of the served/unserved split."""
    requests = report["requests"]
    availability = report["availability"]
    lines = [
        f"{report['algorithm']} over "
        f"{report['schedule'] or 'a fault-free schedule'}: "
        f"{requests['total']} requests",
        f"  served: {requests['served']['gets']} gets, "
        f"{requests['served']['puts_direct']} puts direct, "
        f"{requests['served']['puts_redirected']} puts redirected",
    ]
    by_category = requests["unserved"]["by_category"]
    breakdown = ", ".join(
        f"{category}={count}"
        for category, count in by_category.items()
        if count
    )
    lines.append(
        f"  unserved: {requests['unserved']['total']}"
        + (f" ({breakdown})" if breakdown else "")
    )
    lines.append(
        f"  user-perceived availability "
        f"{availability['user_perceived_percent']:.2f}% vs round-level "
        f"{availability['round_level_percent']:.2f}%"
    )
    return "\n".join(lines)
