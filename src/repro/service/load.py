"""The open-loop heavy-traffic load generator.

Workloads here are *replayed*, not sampled: every draw is a pure hash
of ``(seed, client, tick)`` through :func:`~repro.sim.rng.derive_seed`,
so no RNG stream is ever consumed.  The same profile produces the same
op stream bit-for-bit whether one process generates all clients or
eight shards generate one client each — sharding is by client and the
merged streams re-sort into the identical sequence.

The traffic shape follows the usual heavy-tail trio:

* **Zipf key popularity** — key ranks weighted ``(rank+1)^-s`` with
  ``s`` given in milli-units (``zipf_s_milli=1100`` → s=1.1), drawn by
  inverting the cumulative weights;
* **arrival bursts** — recurring windows during which every client's
  arrival probability is boosted (hashed inter-burst gaps with mean
  ``burst_gap_mean`` ticks);
* **reconnect storms** — instants at which every client re-pins to a
  freshly hashed replica, modelling a load balancer flushing its
  connection table.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import asdict, dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import ReproError
from repro.obs.canonical import canonical_digest
from repro.sim.rng import derive_seed
from repro.types import ProcessId

#: Namespace label separating these draws from every other consumer.
NS = "service.load"

_SCALE = float(2**64)


def _unit(seed: int, *labels) -> float:
    """One uniform draw in [0, 1) — a pure function of its labels."""
    return derive_seed(seed, NS, *labels) / _SCALE


@dataclass(frozen=True)
class LoadProfile:
    """A replayable workload, all-integer so it canonicalizes exactly."""

    clients: int = 8
    ticks: int = 120
    n_keys: int = 64
    #: Zipf exponent in milli-units (1100 → s = 1.1).
    zipf_s_milli: int = 1100
    #: Per-client per-tick arrival probability, in permille.
    arrival_permille: int = 350
    #: Fraction of arrivals that are writes, in permille.
    put_permille: int = 500
    #: Mean ticks between burst starts (0 disables bursts).
    burst_gap_mean: int = 40
    burst_len: int = 5
    #: Added to ``arrival_permille`` inside a burst (capped at 1000).
    burst_boost_permille: int = 450
    #: Mean ticks between reconnect storms (0 disables storms).
    storm_gap_mean: int = 60
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("clients", "ticks", "n_keys"):
            if getattr(self, name) < 1:
                raise ReproError(f"{name} must be >= 1")
        for name in ("arrival_permille", "put_permille"):
            value = getattr(self, name)
            if not 0 <= value <= 1000:
                raise ReproError(f"{name} must be within 0..1000")
        for name in (
            "zipf_s_milli",
            "burst_gap_mean",
            "burst_len",
            "burst_boost_permille",
            "storm_gap_mean",
        ):
            if getattr(self, name) < 0:
                raise ReproError(f"{name} must be >= 0")

    def to_dict(self) -> Dict[str, int]:
        """JSON-ready form, echoed verbatim into reports."""
        return asdict(self)


@dataclass(frozen=True)
class ClientOp:
    """One client request at one tick."""

    tick: int
    client: int
    kind: str  # "get" or "put"
    key: str
    value: Optional[str]

    def to_dict(self) -> Dict[str, object]:
        """The canonical JSON-ready form (digest and JSONL framing)."""
        return {
            "tick": self.tick,
            "client": self.client,
            "kind": self.kind,
            "key": self.key,
            "value": self.value,
        }


def _event_ticks(profile: LoadProfile, label: str, gap_mean: int) -> List[int]:
    """Start ticks of a recurring event with hashed inter-arrival gaps.

    Gaps are uniform over ``1..2*gap_mean-1`` (mean ``gap_mean``), each
    drawn by event index so the whole series is a pure function of the
    profile.
    """
    if gap_mean <= 0:
        return []
    ticks: List[int] = []
    tick = -1
    for index in range(profile.ticks):
        gap = 1 + derive_seed(profile.seed, NS, label, index) % (
            2 * gap_mean - 1
        )
        tick += gap
        if tick >= profile.ticks:
            break
        ticks.append(tick)
    return ticks


def burst_windows(profile: LoadProfile) -> frozenset:
    """Every tick that falls inside an arrival burst."""
    window = set()
    for start in _event_ticks(profile, "burst", profile.burst_gap_mean):
        window.update(
            range(start, min(start + profile.burst_len, profile.ticks))
        )
    return frozenset(window)


def storm_ticks(profile: LoadProfile) -> Tuple[int, ...]:
    """The reconnect storms: at each, every client re-pins its replica."""
    return tuple(_event_ticks(profile, "storm", profile.storm_gap_mean))


def zipf_cdf(profile: LoadProfile) -> List[float]:
    """Cumulative Zipf weights over the key ranks (last entry 1.0)."""
    s = profile.zipf_s_milli / 1000.0
    weights = [(rank + 1) ** (-s) for rank in range(profile.n_keys)]
    total = sum(weights)
    cdf: List[float] = []
    acc = 0.0
    for weight in weights:
        acc += weight
        cdf.append(acc / total)
    return cdf


def key_for(
    profile: LoadProfile,
    client: int,
    tick: int,
    cdf: Optional[List[float]] = None,
) -> str:
    """The Zipf-popular key one client touches at one tick."""
    if cdf is None:
        cdf = zipf_cdf(profile)
    u = _unit(profile.seed, "key", client, tick)
    rank = min(bisect_left(cdf, u), profile.n_keys - 1)
    return f"k{rank}"


def client_ops(profile: LoadProfile, client: int) -> Iterator[ClientOp]:
    """One client's op stream — pure and independent of other clients."""
    bursts = burst_windows(profile)
    cdf = zipf_cdf(profile)
    for tick in range(profile.ticks):
        rate = profile.arrival_permille
        if tick in bursts:
            rate = min(1000, rate + profile.burst_boost_permille)
        if _unit(profile.seed, "arrive", client, tick) * 1000.0 >= rate:
            continue
        key = key_for(profile, client, tick, cdf)
        if _unit(profile.seed, "kind", client, tick) * 1000.0 < (
            profile.put_permille
        ):
            yield ClientOp(tick, client, "put", key, f"v{tick}.{client}")
        else:
            yield ClientOp(tick, client, "get", key, None)


def workload(
    profile: LoadProfile, shard: int = 0, n_shards: int = 1
) -> List[ClientOp]:
    """The merged op stream, or one shard's slice of it.

    Sharding is by client (``client % n_shards == shard``); merging all
    shards and re-sorting by ``(tick, client)`` reproduces the
    unsharded stream exactly — the property tests pin this.
    """
    if n_shards < 1 or not 0 <= shard < n_shards:
        raise ReproError(f"bad shard {shard}/{n_shards}")
    ops: List[ClientOp] = []
    for client in range(profile.clients):
        if client % n_shards == shard:
            ops.extend(client_ops(profile, client))
    ops.sort(key=lambda op: (op.tick, op.client))
    return ops


def ops_by_tick(profile: LoadProfile) -> Dict[int, List[ClientOp]]:
    """The full workload grouped by tick (clients in pid order)."""
    grouped: Dict[int, List[ClientOp]] = {}
    for op in workload(profile):
        grouped.setdefault(op.tick, []).append(op)
    return grouped


def replica_for(
    profile: LoadProfile, client: int, n_processes: int, tick: int
) -> ProcessId:
    """The replica a client is pinned to at ``tick``.

    The pin is re-drawn at every reconnect storm; between storms it is
    sticky, like a session-affine load balancer.
    """
    epoch = sum(1 for storm in storm_ticks(profile) if storm <= tick)
    return derive_seed(profile.seed, NS, "pin", client, epoch) % n_processes


def workload_digest(profile: LoadProfile) -> str:
    """SHA-256 over the canonical op stream — the workload's identity."""
    return canonical_digest(op.to_dict() for op in workload(profile))
