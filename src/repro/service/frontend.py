"""An asyncio HTTP front end for replicated-store nodes (stdlib only).

One :class:`ServiceFrontend` fronts one replica.  The HTTP dialect is
deliberately tiny — HTTP/1.1, ``Content-Length`` framing, one request
per connection — because the point is not a web server but the service
*contract*:

* ``GET /kv/<key>`` — read from this replica (possibly stale outside
  the primary; the guarantee protects writes, not reads);
* ``PUT /kv/<key>`` with a JSON body ``{"value": ...}`` — write; a
  replica outside the primary answers **307** with a ``Location``
  naming the current primary's front end (the structured
  ``NotPrimaryError`` redirect), or **503** with a causal blame tag
  when no primary exists anywhere;
* ``GET /snapshot`` — full contents plus the ``(epoch, ops)`` stamp;
* ``GET /healthz`` — liveness plus the store's operational counters;
* ``GET /ops`` — the cluster's live ops view (claimants, per-component
  blame, in-progress view-agreement windows).

Backends are pluggable: :class:`MemoryNodeBackend` fronts a
:class:`~repro.service.cluster.StoreCluster` replica in-process (a
:class:`FrontendGroup` runs one front end per replica plus the tick
driver), and :class:`ProcNodeBackend` fronts one node of a real
multi-process :class:`~repro.gcs.proc.controller.ProcCluster`.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Tuple

from repro.app.replicated_store import NotPrimaryError
from repro.obs.canonical import canonical_json
from repro.types import ProcessId

_REASONS = {200: "OK", 307: "Temporary Redirect", 400: "Bad Request",
            404: "Not Found", 503: "Service Unavailable"}
_MAX_BODY = 1 << 20


class MemoryNodeBackend:
    """One in-process replica of a :class:`StoreCluster`."""

    def __init__(self, cluster, pid: ProcessId) -> None:
        self.cluster = cluster
        self.pid = pid

    def get(self, key: str) -> Any:
        """Read a key from this replica's local state."""
        return self.cluster.get(self.pid, key)

    def put(self, key: str, value: Any):
        """Write through this replica; raises NotPrimaryError outside."""
        return list(self.cluster.put(self.pid, key, value).stamp)

    def snapshot(self) -> Dict[str, Any]:
        """Full contents plus the replica's ``(epoch, ops)`` stamp."""
        store = self.cluster.store(self.pid)
        return {"data": store.snapshot(), "stamp": list(store.stamp)}

    def healthz(self) -> Dict[str, Any]:
        """Liveness plus the store's operational counters."""
        store = self.cluster.store(self.pid)
        return {
            "ok": True,
            "pid": self.pid,
            "in_primary": store.in_primary(),
            "store": store.stats(),
        }

    def ops(self) -> Dict[str, Any]:
        """The cluster-wide live ops view."""
        return self.cluster.ops_view()

    def primary_claimants(self) -> Tuple[ProcessId, ...]:
        """Who currently claims the primary (for redirects)."""
        return tuple(self.cluster.primary_claimants())

    def blame(self) -> Optional[str]:
        """Why a write here would go unserved (None when servable)."""
        return self.cluster.blame_for(self.pid)


class ProcNodeBackend:
    """One node of a real multi-process cluster, over the pipe protocol."""

    def __init__(self, cluster, pid: ProcessId) -> None:
        self.cluster = cluster
        self.pid = pid

    def get(self, key: str) -> Any:
        """Read a key from this node over the pipe protocol."""
        return self.cluster.get(self.pid, key)

    def put(self, key: str, value: Any):
        """Write through this node; refusals become NotPrimaryError."""
        accepted, info = self.cluster.put(self.pid, key, value)
        if not accepted:
            raise NotPrimaryError(info)
        return list(info)

    def snapshot(self) -> Dict[str, Any]:
        """Full contents plus the node's ``(epoch, ops)`` stamp."""
        snap = self.cluster.snapshot(self.pid)
        return {"data": snap["data"], "stamp": list(snap["stamp"])}

    def healthz(self) -> Dict[str, Any]:
        """Liveness plus the node's store counters (one status poll)."""
        status = self.cluster.statuses()[self.pid]
        return {
            "ok": True,
            "pid": self.pid,
            "in_primary": status["in_primary"],
            "store": status.get("store"),
        }

    def ops(self) -> Dict[str, Any]:
        """A cross-node ops view assembled from status round-trips."""
        statuses = self.cluster.statuses()
        return {
            "kind": "repro.service/ops",
            "primary": sorted(
                pid for pid, status in statuses.items()
                if status["in_primary"]
            ),
            "nodes": [
                {
                    "pid": pid,
                    "in_primary": status["in_primary"],
                    "view": list(status["view"]),
                    "store": status.get("store"),
                }
                for pid, status in sorted(statuses.items())
            ],
        }

    def primary_claimants(self) -> Tuple[ProcessId, ...]:
        """Who currently claims the primary, per the latest statuses."""
        return tuple(
            pid for pid, status in sorted(self.cluster.statuses().items())
            if status["in_primary"]
        )

    def blame(self) -> Optional[str]:
        """No causal blame is available over the pipe protocol."""
        return None


class ServiceFrontend:
    """The HTTP face of one replica; ``peers`` maps pid → (host, port)."""

    def __init__(
        self,
        backend,
        peers: Optional[Dict[ProcessId, Tuple[str, int]]] = None,
    ) -> None:
        self.backend = backend
        self.peers = peers if peers is not None else {}
        self.address: Optional[Tuple[str, int]] = None
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self, host: str = "127.0.0.1", port: int = 0):
        """Bind and serve; returns the (host, port) actually bound."""
        self._server = await asyncio.start_server(self._handle, host, port)
        sockname = self._server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        return self.address

    async def stop(self) -> None:
        """Close the listening socket."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    # Request handling.
    # ------------------------------------------------------------------

    async def _handle(self, reader, writer) -> None:
        try:
            status, payload, headers = await self._respond(reader)
        except Exception as exc:  # pragma: no cover - defensive
            status, payload, headers = 400, {"error": str(exc)}, []
        body = canonical_json(payload).encode("utf-8") + b"\n"
        head = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        head.extend(headers)
        writer.write("\r\n".join(head).encode("ascii") + b"\r\n\r\n" + body)
        try:
            await writer.drain()
        finally:
            writer.close()

    async def _respond(self, reader):
        request = await reader.readline()
        parts = request.decode("latin-1").split()
        if len(parts) < 2:
            return 400, {"error": "malformed request line"}, []
        method, path = parts[0].upper(), parts[1]
        length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                length = min(int(value.strip()), _MAX_BODY)
        body = await reader.readexactly(length) if length else b""
        return self._route(method, path, body)

    def _route(self, method: str, path: str, body: bytes):
        if method == "GET" and path == "/healthz":
            return 200, self.backend.healthz(), []
        if method == "GET" and path == "/ops":
            return 200, self.backend.ops(), []
        if method == "GET" and path == "/snapshot":
            return 200, self.backend.snapshot(), []
        if path.startswith("/kv/") and len(path) > len("/kv/"):
            key = path[len("/kv/"):]
            if method == "GET":
                return 200, {"key": key, "value": self.backend.get(key)}, []
            if method == "PUT":
                return self._put(key, body)
        return 404, {"error": f"no route for {method} {path}"}, []

    def _put(self, key: str, body: bytes):
        try:
            value = json.loads(body.decode("utf-8") or "null")
        except (ValueError, UnicodeDecodeError):
            return 400, {"error": "body must be JSON"}, []
        if not isinstance(value, dict) or "value" not in value:
            return 400, {"error": 'body must be {"value": ...}'}, []
        try:
            stamp = self.backend.put(key, value["value"])
            return 200, {"key": key, "stamp": stamp}, []
        except NotPrimaryError:
            return self._not_primary(key)

    def _not_primary(self, key: str):
        claimants = sorted(self.backend.primary_claimants())
        if claimants:
            payload = {"error": "not_primary", "primary": claimants}
            headers = []
            address = self.peers.get(claimants[0])
            if address is not None:
                host, port = address
                headers.append(f"Location: http://{host}:{port}/kv/{key}")
            return 307, payload, headers
        return 503, {"error": "no_primary", "blame": self.backend.blame()}, []


class FrontendGroup:
    """Every replica's front end plus the loop that ticks the cluster."""

    def __init__(self, cluster, tick_interval: float = 0.005) -> None:
        self.cluster = cluster
        self.tick_interval = tick_interval
        self.peers: Dict[ProcessId, Tuple[str, int]] = {}
        self.frontends: Dict[ProcessId, ServiceFrontend] = {
            pid: ServiceFrontend(MemoryNodeBackend(cluster, pid), self.peers)
            for pid in range(cluster.n_processes)
        }
        self._ticker: Optional[asyncio.Task] = None

    async def start(self, host: str = "127.0.0.1", base_port: int = 0):
        """Start every front end plus the tick driver; returns peers."""
        for pid in sorted(self.frontends):
            port = base_port + pid if base_port else 0
            self.peers[pid] = await self.frontends[pid].start(host, port)
        self._ticker = asyncio.ensure_future(self._run_ticker())
        return dict(self.peers)

    async def _run_ticker(self) -> None:
        while True:
            self.cluster.tick()
            await asyncio.sleep(self.tick_interval)

    async def stop(self) -> None:
        """Cancel the ticker and close every front end."""
        if self._ticker is not None:
            self._ticker.cancel()
            try:
                await self._ticker
            except asyncio.CancelledError:
                pass
            self._ticker = None
        for frontend in self.frontends.values():
            await frontend.stop()
