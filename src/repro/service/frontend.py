"""An asyncio HTTP front end for replicated-store nodes (stdlib only).

One :class:`ServiceFrontend` fronts one replica.  The HTTP dialect is
deliberately tiny — HTTP/1.1, ``Content-Length`` framing, one request
per connection — because the point is not a web server but the service
*contract*:

* ``GET /kv/<key>`` — read from this replica (possibly stale outside
  the primary; the guarantee protects writes, not reads);
* ``PUT /kv/<key>`` with a JSON body ``{"value": ...}`` — write; a
  replica outside the primary answers **307** with a ``Location``
  naming the current primary's front end (the structured
  ``NotPrimaryError`` redirect), or **503** with a causal blame tag
  when no primary exists anywhere;
* ``GET /snapshot`` — full contents plus the ``(epoch, ops)`` stamp;
* ``GET /healthz`` — liveness plus the store's operational counters
  and the transport's aggregate ARQ counters (transmissions,
  retransmissions, cumulative acks, hold-backs);
* ``GET /ops`` — the cluster's live ops view (claimants, per-component
  blame, in-progress view-agreement windows);
* ``GET /metrics`` — the scrape plane: this front end's request
  counters and latency histogram plus the node's health gauges, in
  Prometheus text format (:mod:`repro.obs.telemetry.prom`);
* ``GET /telemetry`` — the flight-recorder streams visible from this
  node (the front end's own ring plus the replica's), as canonical
  JSONL.

Every request may carry an ``X-Repro-Trace`` header; the id is
propagated into the store op it triggers and recorded alongside the
HTTP event in the front end's flight ring, which is how a replayed
load generator's request joins against what each hop saw.

Backends are pluggable: :class:`MemoryNodeBackend` fronts a
:class:`~repro.service.cluster.StoreCluster` replica in-process (a
:class:`FrontendGroup` runs one front end per replica plus the tick
driver), and :class:`ProcNodeBackend` fronts one node of a real
multi-process :class:`~repro.gcs.proc.controller.ProcCluster` (a
:class:`ProcFrontendGroup` fronts *every* node, so redirects can be
followed end-to-end and the scrape plane has a target per replica).
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Any, Dict, Optional, Tuple

from repro.app.replicated_store import NotPrimaryError
from repro.obs.canonical import canonical_json, canonical_jsonl
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry.prom import render_prometheus
from repro.obs.telemetry.recorder import FLIGHT_HEADER_KIND, FlightRecorder
from repro.obs.telemetry.trace import TRACE_HEADER
from repro.types import ProcessId

_REASONS = {200: "OK", 307: "Temporary Redirect", 400: "Bad Request",
            404: "Not Found", 503: "Service Unavailable"}
_MAX_BODY = 1 << 20

#: Latency buckets in milliseconds (sub-ms loopback up to slow ticks).
_LATENCY_BUCKETS_MS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)


class MemoryNodeBackend:
    """One in-process replica of a :class:`StoreCluster`."""

    def __init__(self, cluster, pid: ProcessId) -> None:
        self.cluster = cluster
        self.pid = pid

    def get(self, key: str, trace: Optional[str] = None) -> Any:
        """Read a key from this replica's local state."""
        return self.cluster.get(self.pid, key, trace=trace)

    def put(self, key: str, value: Any, trace: Optional[str] = None):
        """Write through this replica; raises NotPrimaryError outside."""
        return list(self.cluster.put(self.pid, key, value, trace=trace).stamp)

    def snapshot(self) -> Dict[str, Any]:
        """Full contents plus the replica's ``(epoch, ops)`` stamp."""
        store = self.cluster.store(self.pid)
        return {"data": store.snapshot(), "stamp": list(store.stamp)}

    def healthz(self) -> Dict[str, Any]:
        """Liveness plus the store's and the transport's ARQ counters."""
        store = self.cluster.store(self.pid)
        return {
            "ok": True,
            "pid": self.pid,
            "in_primary": store.in_primary(),
            "store": store.stats(),
            "arq": self.cluster.service.cluster.transport.arq_stats(),
        }

    def flight_snapshot(self) -> Optional[Dict[str, Any]]:
        """The replica's flight-recorder stream (None when off)."""
        recorder = self.cluster.recorders.get(self.pid)
        return None if recorder is None else recorder.snapshot()

    def ops(self) -> Dict[str, Any]:
        """The cluster-wide live ops view."""
        return self.cluster.ops_view()

    def primary_claimants(self) -> Tuple[ProcessId, ...]:
        """Who currently claims the primary (for redirects)."""
        return tuple(self.cluster.primary_claimants())

    def blame(self) -> Optional[str]:
        """Why a write here would go unserved (None when servable)."""
        return self.cluster.blame_for(self.pid)


class ProcNodeBackend:
    """One node of a real multi-process cluster, over the pipe protocol."""

    def __init__(self, cluster, pid: ProcessId) -> None:
        self.cluster = cluster
        self.pid = pid

    def get(self, key: str, trace: Optional[str] = None) -> Any:
        """Read a key from this node over the pipe protocol."""
        return self.cluster.get(self.pid, key, trace=trace)

    def put(self, key: str, value: Any, trace: Optional[str] = None):
        """Write through this node; refusals become NotPrimaryError."""
        accepted, info = self.cluster.put(self.pid, key, value, trace=trace)
        if not accepted:
            raise NotPrimaryError(info)
        return list(info)

    def snapshot(self) -> Dict[str, Any]:
        """Full contents plus the node's ``(epoch, ops)`` stamp."""
        snap = self.cluster.snapshot(self.pid)
        return {"data": snap["data"], "stamp": list(snap["stamp"])}

    def healthz(self) -> Dict[str, Any]:
        """Liveness plus the node's store and ARQ counters (one poll)."""
        status = self.cluster.statuses()[self.pid]
        return {
            "ok": True,
            "pid": self.pid,
            "in_primary": status["in_primary"],
            "store": status.get("store"),
            "arq": status.get("arq", {}),
        }

    def flight_snapshot(self) -> Optional[Dict[str, Any]]:
        """The node's flight-recorder stream, over the pipe."""
        return self.cluster.node_telemetry(self.pid)

    def ops(self) -> Dict[str, Any]:
        """A cross-node ops view assembled from status round-trips."""
        statuses = self.cluster.statuses()
        return {
            "kind": "repro.service/ops",
            "primary": sorted(
                pid for pid, status in statuses.items()
                if status["in_primary"]
            ),
            "nodes": [
                {
                    "pid": pid,
                    "in_primary": status["in_primary"],
                    "view": list(status["view"]),
                    "store": status.get("store"),
                }
                for pid, status in sorted(statuses.items())
            ],
        }

    def primary_claimants(self) -> Tuple[ProcessId, ...]:
        """Who currently claims the primary, per the latest statuses."""
        return tuple(
            pid for pid, status in sorted(self.cluster.statuses().items())
            if status["in_primary"]
        )

    def blame(self) -> Optional[str]:
        """No causal blame is available over the pipe protocol."""
        return None


class ServiceFrontend:
    """The HTTP face of one replica; ``peers`` maps pid → (host, port)."""

    def __init__(
        self,
        backend,
        peers: Optional[Dict[ProcessId, Tuple[str, int]]] = None,
        recorder: Optional[FlightRecorder] = None,
        flight_capacity: int = 1024,
    ) -> None:
        self.backend = backend
        self.peers = peers if peers is not None else {}
        self.address: Optional[Tuple[str, int]] = None
        self.recorder = recorder if recorder is not None else FlightRecorder(
            f"frontend-{getattr(backend, 'pid', '?')}",
            capacity=flight_capacity,
        )
        self.metrics = MetricsRegistry()
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self, host: str = "127.0.0.1", port: int = 0):
        """Bind and serve; returns the (host, port) actually bound."""
        self._server = await asyncio.start_server(self._handle, host, port)
        sockname = self._server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        return self.address

    async def stop(self) -> None:
        """Close the listening socket."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    # Request handling.
    # ------------------------------------------------------------------

    async def _handle(self, reader, writer) -> None:
        started = time.monotonic()
        method = path = trace = None
        try:
            method, path, body, trace = await self._read_request(reader)
            status, payload, headers = self._route(method, path, body, trace)
        except Exception as exc:  # defensive: a broken request
            status, payload, headers = 400, {"error": str(exc)}, []
        self._observe(
            method, path, status, trace, time.monotonic() - started
        )
        if isinstance(payload, str):
            # Text routes (/metrics, /telemetry) set their own type.
            body_bytes = payload.encode("utf-8")
        else:
            body_bytes = canonical_json(payload).encode("utf-8") + b"\n"
            headers = ["Content-Type: application/json", *headers]
        head = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            f"Content-Length: {len(body_bytes)}",
            "Connection: close",
        ]
        head.extend(headers)
        writer.write(
            "\r\n".join(head).encode("ascii") + b"\r\n\r\n" + body_bytes
        )
        try:
            await writer.drain()
        finally:
            writer.close()

    async def _read_request(self, reader):
        request = await reader.readline()
        parts = request.decode("latin-1").split()
        if len(parts) < 2:
            raise ValueError("malformed request line")
        method, path = parts[0].upper(), parts[1]
        length = 0
        trace: Optional[str] = None
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            name = name.strip().lower()
            if name == "content-length":
                length = min(int(value.strip()), _MAX_BODY)
            elif name == TRACE_HEADER.lower():
                trace = value.strip()
        body = await reader.readexactly(length) if length else b""
        return method, path, body, trace

    def _route(
        self, method: str, path: str, body: bytes, trace: Optional[str]
    ):
        if method == "GET" and path == "/healthz":
            return 200, self.backend.healthz(), []
        if method == "GET" and path == "/ops":
            return 200, self.backend.ops(), []
        if method == "GET" and path == "/snapshot":
            return 200, self.backend.snapshot(), []
        if method == "GET" and path == "/metrics":
            return 200, self._metrics_text(), [
                "Content-Type: text/plain; version=0.0.4",
            ]
        if method == "GET" and path == "/telemetry":
            return 200, self._telemetry_text(), [
                "Content-Type: application/jsonl",
            ]
        if path.startswith("/kv/") and len(path) > len("/kv/"):
            key = path[len("/kv/"):]
            if method == "GET":
                return 200, {
                    "key": key,
                    "value": self.backend.get(key, trace=trace),
                }, []
            if method == "PUT":
                return self._put(key, body, trace)
        return 404, {"error": f"no route for {method} {path}"}, []

    def _put(self, key: str, body: bytes, trace: Optional[str]):
        try:
            value = json.loads(body.decode("utf-8") or "null")
        except (ValueError, UnicodeDecodeError):
            return 400, {"error": "body must be JSON"}, []
        if not isinstance(value, dict) or "value" not in value:
            return 400, {"error": 'body must be {"value": ...}'}, []
        try:
            stamp = self.backend.put(key, value["value"], trace=trace)
            return 200, {"key": key, "stamp": stamp}, []
        except NotPrimaryError:
            return self._not_primary(key)

    def _not_primary(self, key: str):
        claimants = sorted(self.backend.primary_claimants())
        if claimants:
            payload = {"error": "not_primary", "primary": claimants}
            headers = []
            address = self.peers.get(claimants[0])
            if address is not None:
                host, port = address
                headers.append(f"Location: http://{host}:{port}/kv/{key}")
            return 307, payload, headers
        return 503, {"error": "no_primary", "blame": self.backend.blame()}, []

    # ------------------------------------------------------------------
    # Telemetry (the scrape plane and the flight ring).
    # ------------------------------------------------------------------

    @staticmethod
    def _route_label(path: Optional[str]) -> str:
        """A bounded-cardinality route label (keys collapse to /kv)."""
        if path is None:
            return "?"
        if path.startswith("/kv/"):
            return "/kv"
        return path

    def _observe(
        self,
        method: Optional[str],
        path: Optional[str],
        status: int,
        trace: Optional[str],
        seconds: float,
    ) -> None:
        route = self._route_label(path)
        node = getattr(self.backend, "pid", "?")
        self.metrics.counter(
            "service.http.requests", node=node, route=route, status=status
        ).inc()
        self.metrics.histogram(
            "service.http.latency_ms", buckets=_LATENCY_BUCKETS_MS, node=node
        ).observe(int(seconds * 1000))
        event = {"method": method or "?", "route": route, "status": status}
        if trace is not None:
            event["trace"] = trace
        if status in (503, 307):
            event["blame"] = self.backend.blame()
        self.recorder.record("http_request", **event)

    def _metrics_text(self) -> str:
        """The Prometheus exposition of this node (one scrape)."""
        registry = MetricsRegistry()
        registry.merge(self.metrics)
        node = getattr(self.backend, "pid", "?")
        health = self.backend.healthz()
        registry.gauge("service.node.in_primary", node=node).set(
            int(bool(health.get("in_primary")))
        )
        for group in ("store", "arq"):
            for key, value in sorted((health.get(group) or {}).items()):
                if isinstance(value, (int, float)):
                    registry.gauge(f"service.{group}.{key}", node=node).set(
                        value
                    )
        registry.gauge(
            "service.flight.recorded", node=self.recorder.node
        ).set(self.recorder.recorded)
        registry.gauge(
            "service.flight.dropped", node=self.recorder.node
        ).set(self.recorder.dropped)
        return render_prometheus(registry)

    def _telemetry_text(self) -> str:
        """Flight streams visible from this node, as canonical JSONL."""
        lines = [self.recorder.header(), *self.recorder.events()]
        flight = None
        if hasattr(self.backend, "flight_snapshot"):
            flight = self.backend.flight_snapshot()
        if flight is not None:
            lines.append(
                {
                    "kind": FLIGHT_HEADER_KIND,
                    "node": flight["node"],
                    "capacity": flight.get("capacity"),
                    "recorded": flight.get("recorded"),
                    "dropped": flight.get("dropped", 0),
                }
            )
            lines.extend(flight["events"])
        return canonical_jsonl(lines)


class FrontendGroup:
    """Every replica's front end plus the loop that ticks the cluster."""

    def __init__(self, cluster, tick_interval: float = 0.005) -> None:
        self.cluster = cluster
        self.tick_interval = tick_interval
        self.peers: Dict[ProcessId, Tuple[str, int]] = {}
        self.frontends: Dict[ProcessId, ServiceFrontend] = {
            pid: ServiceFrontend(MemoryNodeBackend(cluster, pid), self.peers)
            for pid in range(cluster.n_processes)
        }
        self._ticker: Optional[asyncio.Task] = None

    async def start(self, host: str = "127.0.0.1", base_port: int = 0):
        """Start every front end plus the tick driver; returns peers."""
        for pid in sorted(self.frontends):
            port = base_port + pid if base_port else 0
            self.peers[pid] = await self.frontends[pid].start(host, port)
        self._ticker = asyncio.ensure_future(self._run_ticker())
        return dict(self.peers)

    async def _run_ticker(self) -> None:
        while True:
            self.cluster.tick()
            await asyncio.sleep(self.tick_interval)

    async def stop(self) -> None:
        """Cancel the ticker and close every front end."""
        if self._ticker is not None:
            self._ticker.cancel()
            try:
                await self._ticker
            except asyncio.CancelledError:
                pass
            self._ticker = None
        for frontend in self.frontends.values():
            await frontend.stop()


class ProcFrontendGroup:
    """One HTTP face per node of a real multi-process cluster.

    The proc nodes tick themselves (real time, real sockets), so there
    is no tick driver here — just every node fronted, sharing one peers
    map so a 307 redirect from any replica names a followable URL and
    the scrape plane has a ``/metrics`` target per replica.
    """

    def __init__(self, cluster) -> None:
        self.cluster = cluster
        self.peers: Dict[ProcessId, Tuple[str, int]] = {}
        self.frontends: Dict[ProcessId, ServiceFrontend] = {
            pid: ServiceFrontend(ProcNodeBackend(cluster, pid), self.peers)
            for pid in range(cluster.n_processes)
        }

    async def start(self, host: str = "127.0.0.1", base_port: int = 0):
        """Start every front end; returns the shared peers map."""
        for pid in sorted(self.frontends):
            port = base_port + pid if base_port else 0
            self.peers[pid] = await self.frontends[pid].start(host, port)
        return dict(self.peers)

    async def stop(self) -> None:
        """Close every front end (the cluster itself stays up)."""
        for frontend in self.frontends.values():
            await frontend.stop()
