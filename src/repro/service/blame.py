"""Why a request went unserved: causal blame at the service layer.

The availability figures count *rounds* with a primary; a user of the
replicated store experiences something different — their request either
completed or it did not.  When a write goes unserved, this module names
the cause using the same causal vocabulary the forensics layer
(:mod:`repro.obs.causal`) applies to round-level unavailability, plus
one category that only exists once real clients enter the picture:

* ``primary_unreachable`` — a primary component *does* exist, but the
  client's replica is partitioned away from it.  Round-level
  availability counts this round as available; the user does not.
* ``no_quorum_possible`` — the client's side of the partition can
  never form a primary (it is at most half the universe); no algorithm
  could have served this write.
* ``attempt_in_flight`` — the component could hold a primary and is
  mid-transition: either a claimant exists locally but the client's
  replica has not installed the new view yet, or the members' views
  still disagree.  Algorithmic latency, not algorithmic refusal.
* ``ambiguous_blocked`` — the component is majority-sized and its
  views agree, yet nobody claims the primary: the algorithm is stuck
  on the ambiguity of a previous transition (the thesis' blocking
  case).
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from repro.obs.causal.spans import (
    BLAME_AMBIGUOUS,
    BLAME_IN_FLIGHT,
    BLAME_NO_QUORUM,
)
from repro.types import ProcessId

#: The category round-level accounting cannot see: the primary exists,
#: just not where the client is connected.
BLAME_PRIMARY_UNREACHABLE = "primary_unreachable"

#: Every category an unserved request can land in, in severity order.
SERVICE_BLAME_CATEGORIES: Tuple[str, ...] = (
    BLAME_PRIMARY_UNREACHABLE,
    BLAME_NO_QUORUM,
    BLAME_IN_FLIGHT,
    BLAME_AMBIGUOUS,
)


def classify_unserved(
    n_processes: int,
    component: Iterable[ProcessId],
    claimants: Iterable[ProcessId],
    views: Dict[ProcessId, Tuple[ProcessId, ...]],
) -> str:
    """Name the cause of one unserved write.

    ``component`` is the connectivity component holding the client's
    pinned replica, ``claimants`` the current primary claimants across
    the whole cluster, and ``views`` each process's installed view
    membership.  The order of checks matters: reachability first (can
    the request even get to a primary?), then possibility (could this
    side ever form one?), then progress (is the algorithm moving or
    stuck?).
    """
    members = frozenset(component)
    claiming = frozenset(claimants)
    if claiming:
        if claiming & members:
            # A primary claimant is right here — the client's replica
            # simply has not caught up with the installation yet.
            return BLAME_IN_FLIGHT
        return BLAME_PRIMARY_UNREACHABLE
    if 2 * len(members) <= n_processes:
        return BLAME_NO_QUORUM
    target = tuple(sorted(members))
    installed = {tuple(sorted(views.get(pid, ()))) for pid in members}
    if installed != {target}:
        return BLAME_IN_FLIGHT
    return BLAME_AMBIGUOUS
