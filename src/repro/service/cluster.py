"""A replicated-store cluster with a service-facing surface.

:class:`StoreCluster` wraps :class:`~repro.gcs.adapter
.PrimaryComponentService` with a :class:`~repro.app.replicated_store
.ReplicatedStore` endpoint per process, and adds the three things the
service layer needs on top of the raw substrate:

* a **tick that drains write outboxes fully** — the plain adapter pump
  offers one application message per GCS event, which is fine for the
  idle Fig. 2-2 app but starves a replica absorbing dozens of client
  writes per tick; here every queued broadcast leaves within the tick
  it was written;
* **partition staging** from the recorded-schedule vocabulary
  (:meth:`apply_stage` takes the same component tuples a
  :class:`~repro.gcs.proc.schedule.RecordedSchedule` carries);
* a live **ops view**: per-node store stats, primary claimants, the
  in-progress view-agreement windows from
  :class:`~repro.obs.causal.gcs.GCSViewSpans`, and a causal blame tag
  for every component that cannot currently serve writes.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional, Tuple

from repro.app.replicated_store import NotPrimaryError, ReplicatedStore
from repro.errors import SimulationError
from repro.gcs.adapter import PrimaryComponentService
from repro.gcs.stack import ViewInstalled
from repro.net.topology import Topology
from repro.obs.bus import Subscriber
from repro.obs.causal.gcs import GCSViewSpans
from repro.obs.telemetry.recorder import FlightRecorder
from repro.service.blame import classify_unserved
from repro.types import ProcessId


class _FlightViewChanges(Subscriber):
    """Mirror every GCS view install into the owning replica's ring."""

    def __init__(self, cluster: "StoreCluster") -> None:
        self._cluster = cluster

    def on_gcs_event(self, cluster, pid, event) -> None:
        if isinstance(event, ViewInstalled):
            self._cluster.record(
                pid,
                "view_change",
                view_id=list(event.view_id),
                members=sorted(event.members),
            )


class StoreCluster:
    """N replicated-store processes on the deterministic GCS substrate."""

    def __init__(
        self,
        n_processes: int,
        algorithm: str = "ykd",
        check_invariants: bool = True,
        record_flight: bool = False,
        flight_capacity: int = 4096,
    ) -> None:
        self.n_processes = n_processes
        self.algorithm = algorithm
        self.view_spans = GCSViewSpans()
        #: One flight recorder per replica when telemetry is on; empty
        #: otherwise, so the recorder-off hot path stays a dict miss.
        self.recorders: Dict[ProcessId, FlightRecorder] = {}
        observers = [self.view_spans]
        if record_flight:
            self.recorders = {
                pid: FlightRecorder(pid, capacity=flight_capacity)
                for pid in range(n_processes)
            }
            observers.append(_FlightViewChanges(self))
        self.service = PrimaryComponentService(
            algorithm,
            n_processes,
            check_invariants=check_invariants,
            endpoint_factory=ReplicatedStore,
            observers=observers,
        )

    # ------------------------------------------------------------------
    # Substrate driving.
    # ------------------------------------------------------------------

    @property
    def ticks(self) -> int:
        """Lock-step ticks elapsed since the cluster was built."""
        return self.service.cluster.ticks

    def store(self, pid: ProcessId) -> ReplicatedStore:
        """The replica endpoint hosted by one process."""
        return self.service.endpoints[pid]  # type: ignore[return-value]

    def tick(self) -> bool:
        """One lock-step tick, then flush every replica's write outbox."""
        moved = self.service.tick()
        transport = self.service.cluster.transport
        for pid in sorted(self.service.processes):
            if self.service.cluster.topology.is_crashed(pid):
                continue
            proc = self.service.processes[pid]
            while proc.endpoint.outbox_size:  # type: ignore[attr-defined]
                outgoing = proc.endpoint.poll()
                if outgoing is None:
                    break
                proc.stack.multicast(outgoing)
            for dst, payload in proc.stack.drain_outgoing():
                transport.send(pid, dst, payload)
                moved = True
        return moved

    def warm_up(self, max_ticks: int = 300) -> int:
        """Tick until quiet (views installed, outboxes empty, nothing
        in flight), then run the strict stable-point safety checks."""
        transport = self.service.cluster.transport
        quiet_needed = transport.quiet_ticks_for_stability
        quiet = 0
        for elapsed in range(max_ticks):
            if self.tick() or transport.pending() > 0:
                quiet = 0
            else:
                quiet += 1
                if quiet >= quiet_needed:
                    self.service.checker.check_stable_primary(
                        self.service.algorithms,
                        self.service.cluster.topology.components,
                        self.service.cluster.topology.active_processes(),
                    )
                    return elapsed + 1
        raise SimulationError(
            f"store cluster did not settle within {max_ticks} ticks"
        )

    def apply_stage(self, stage: Iterable[Iterable[ProcessId]]) -> None:
        """Reshape connectivity from recorded-schedule component tuples."""
        self.service.set_topology(
            Topology(components=tuple(frozenset(c) for c in stage))
        )

    # ------------------------------------------------------------------
    # Service surface.
    # ------------------------------------------------------------------

    def put(
        self,
        pid: ProcessId,
        key: str,
        value: Any,
        trace: Optional[str] = None,
    ):
        """Write through one replica (raises NotPrimaryError outside)."""
        try:
            op = self.store(pid).put(key, value)
        except NotPrimaryError:
            self.record(pid, "store_put", key=key, accepted=False, trace=trace)
            raise
        self.record(
            pid,
            "store_put",
            key=key,
            accepted=True,
            stamp=list(op.stamp),
            trace=trace,
        )
        return op

    def get(
        self,
        pid: ProcessId,
        key: str,
        default: Any = None,
        trace: Optional[str] = None,
    ) -> Any:
        """Read a key from one replica (possibly stale outside primary)."""
        value = self.store(pid).get(key, default)
        self.record(pid, "store_get", key=key, trace=trace)
        return value

    def record(self, pid: ProcessId, event: str, **fields: Any) -> None:
        """Append one event to a replica's flight ring (no-op when off)."""
        recorder = self.recorders.get(pid)
        if recorder is not None:
            recorder.record(event, tick=self.ticks, **fields)

    def snapshot(self, pid: ProcessId) -> Dict[str, Any]:
        """One replica's full contents."""
        return self.store(pid).snapshot()

    def primary_claimants(self) -> Tuple[ProcessId, ...]:
        """Every live process currently claiming the primary."""
        return self.service.primary_members() or ()

    def component_of(self, pid: ProcessId) -> frozenset:
        """The connectivity component one process currently sits in."""
        return self.service.cluster.topology.component_of(pid)

    def views(self) -> Dict[ProcessId, Tuple[ProcessId, ...]]:
        """Each process's currently installed view membership."""
        return {
            pid: tuple(sorted(self.service.cluster.stacks[pid].view_members))
            for pid in range(self.n_processes)
        }

    def blame_for(self, pid: ProcessId) -> Optional[str]:
        """Why a write pinned to ``pid`` would go unserved (None: served)."""
        claimants = self.primary_claimants()
        component = self.component_of(pid)
        if set(claimants) & component:
            return None
        return classify_unserved(
            self.n_processes, component, claimants, self.views()
        )

    def ops_view(self) -> Dict[str, Any]:
        """The live operational picture, JSON-ready.

        This is what ``GET /ops`` serves: enough to explain an outage
        while it happens — who claims the primary, which component is
        blocked on what, and which view windows are still installing.
        """
        claimants = self.primary_claimants()
        views = self.views()
        topology = self.service.cluster.topology
        components = []
        for component in topology.components:
            members = sorted(component)
            if set(claimants) & component:
                blame = None
            else:
                blame = classify_unserved(
                    self.n_processes, component, claimants, views
                )
            components.append({"members": members, "blame": blame})
        return {
            "kind": "repro.service/ops",
            "tick": self.ticks,
            "algorithm": self.algorithm,
            "primary": sorted(claimants),
            "components": components,
            "nodes": [
                {
                    "pid": pid,
                    "in_primary": self.store(pid).in_primary(),
                    "view": list(views[pid]),
                    "component": sorted(self.component_of(pid)),
                    "store": self.store(pid).stats(),
                }
                for pid in range(self.n_processes)
            ],
            "view_windows": self.view_spans.open_views(),
        }
