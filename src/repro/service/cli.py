"""The ``serve``, ``load`` and ``telemetry`` subcommands.

``serve`` boots the HTTP front ends — one per replica — over either
the in-process :class:`~repro.service.cluster.StoreCluster` or a real
multi-process :class:`~repro.gcs.proc.controller.ProcCluster` (every
proc node gets its own front end), ``load`` runs a seeded scenario
(workload + optional partition schedule) to a canonical availability
report, and ``telemetry`` drives the distributed flight-recorder
plane: live scenario tails, post-mortem dump reading, and replay
verification of the aggregated stream.  All live here so the
experiments CLI only pays the import when the parser is built.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from pathlib import Path

from repro.core.registry import algorithm_names


def add_service_parsers(sub) -> None:
    """Register ``serve`` and ``load`` on the experiments subparsers."""
    serve = sub.add_parser(
        "serve",
        help="front a replicated-store cluster with per-replica HTTP "
        "endpoints (put/get/snapshot/healthz/ops with NotPrimary "
        "redirects)",
    )
    serve.add_argument("--replicas", type=int, default=3)
    serve.add_argument(
        "--algorithm", choices=algorithm_names(), default="ykd"
    )
    serve.add_argument(
        "--backend",
        choices=["memory", "proc"],
        default="memory",
        help="in-process lock-step cluster, or one HTTP front end over "
        "a real multi-process UDP cluster",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="base port; replica i listens on port+i (0: ephemeral)",
    )
    serve.add_argument("--tick-interval", type=float, default=0.005)
    serve.add_argument(
        "--smoke",
        action="store_true",
        help="boot, run a put/get/healthz self-check over HTTP, print "
        "the results and exit (used by CI)",
    )

    load = sub.add_parser(
        "load",
        help="replay a seeded heavy-traffic workload against a "
        "partitioning cluster and emit the canonical availability "
        "report",
    )
    load.add_argument("--seed", type=int, default=0)
    load.add_argument(
        "--algorithm", choices=algorithm_names(), default="ykd"
    )
    load.add_argument(
        "--schedule",
        default="split_restore",
        help="a stock schedule name, 'generated:<seed>', or 'none' "
        "for the fault-free baseline",
    )
    load.add_argument(
        "--replicas",
        type=int,
        default=5,
        help="cluster size (schedules carry their own)",
    )
    load.add_argument("--clients", type=int, default=8)
    load.add_argument("--ticks", type=int, default=120)
    load.add_argument("--keys", type=int, default=64)
    load.add_argument("--zipf-s-milli", type=int, default=1100)
    load.add_argument("--arrival-permille", type=int, default=350)
    load.add_argument("--put-permille", type=int, default=500)
    load.add_argument("--burst-gap-mean", type=int, default=40)
    load.add_argument("--burst-len", type=int, default=5)
    load.add_argument("--burst-boost-permille", type=int, default=450)
    load.add_argument("--storm-gap-mean", type=int, default=60)
    load.add_argument(
        "--report-out", type=Path, default=None, metavar="PATH",
        help="write the canonical availability report JSON",
    )
    load.add_argument(
        "--ops-out", type=Path, default=None, metavar="PATH",
        help="also write the final ops view (post-run cluster state)",
    )
    load.add_argument(
        "--verify-replay",
        action="store_true",
        help="run the scenario twice and fail unless the two reports "
        "are byte-identical",
    )
    load.add_argument(
        "--telemetry-out", type=Path, default=None, metavar="PATH",
        help="run with per-replica flight recorders and write the "
        "aggregated telemetry JSONL (with --verify-replay the "
        "aggregated stream must also replay byte-identically)",
    )

    telemetry = sub.add_parser(
        "telemetry",
        help="drive the flight-recorder plane: tail a live seeded "
        "scenario, read a post-mortem dump, or verify that the "
        "aggregated stream replays byte-identically",
    )
    telemetry.add_argument(
        "--read", type=Path, default=None, metavar="PATH",
        help="read a flight dump (a node's crash dump or an "
        "aggregated stream) instead of running a scenario",
    )
    telemetry.add_argument("--seed", type=int, default=0)
    telemetry.add_argument(
        "--algorithm", choices=algorithm_names(), default="ykd"
    )
    telemetry.add_argument(
        "--schedule",
        default="split_restore",
        help="a stock schedule name, 'generated:<seed>', or 'none'",
    )
    telemetry.add_argument("--replicas", type=int, default=5)
    telemetry.add_argument("--clients", type=int, default=8)
    telemetry.add_argument("--ticks", type=int, default=120)
    telemetry.add_argument(
        "--tail", type=int, default=10, metavar="N",
        help="print the last N flight events per node (0: none)",
    )
    telemetry.add_argument(
        "--out", type=Path, default=None, metavar="PATH",
        help="write the aggregated telemetry JSONL",
    )
    telemetry.add_argument(
        "--metrics-out", type=Path, default=None, metavar="PATH",
        help="write the folded registry in Prometheus text format",
    )
    telemetry.add_argument(
        "--verify-replay",
        action="store_true",
        help="run the scenario twice and fail unless the aggregated "
        "telemetry streams (trace ids included) are byte-identical",
    )


def _resolve_schedule(spec: str):
    from repro.errors import ReproError
    from repro.gcs.proc.schedule import STOCK_SCHEDULES, generated_schedule

    if spec == "none":
        return None
    if spec.startswith("generated:"):
        return generated_schedule(int(spec.split(":", 1)[1]))
    if spec in STOCK_SCHEDULES:
        return STOCK_SCHEDULES[spec]
    raise ReproError(
        f"unknown schedule {spec!r}: pick one of "
        f"{', '.join(sorted(STOCK_SCHEDULES))}, generated:<seed>, none"
    )


def run_load(args: argparse.Namespace) -> int:
    """Handle ``repro-experiments load``; returns the exit code."""
    from repro.errors import ReproError
    from repro.service.load import LoadProfile
    from repro.service.report import (
        describe_report,
        render_report,
        write_report,
    )
    from repro.service.scenario import run_scenario

    try:
        schedule = _resolve_schedule(args.schedule)
        profile = LoadProfile(
            clients=args.clients,
            ticks=args.ticks,
            n_keys=args.keys,
            zipf_s_milli=args.zipf_s_milli,
            arrival_permille=args.arrival_permille,
            put_permille=args.put_permille,
            burst_gap_mean=args.burst_gap_mean,
            burst_len=args.burst_len,
            burst_boost_permille=args.burst_boost_permille,
            storm_gap_mean=args.storm_gap_mean,
            seed=args.seed,
        )
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    collector = None
    if args.telemetry_out is not None:
        from repro.obs.telemetry import TelemetryCollector

        collector = TelemetryCollector()
    report = run_scenario(
        profile,
        schedule=schedule,
        algorithm=args.algorithm,
        n_processes=args.replicas,
        collector=collector,
    )
    print(describe_report(report))
    if args.verify_replay:
        from repro.obs.telemetry import TelemetryCollector

        replay_collector = (
            TelemetryCollector() if collector is not None else None
        )
        replay = run_scenario(
            profile,
            schedule=schedule,
            algorithm=args.algorithm,
            n_processes=args.replicas,
            collector=replay_collector,
        )
        if render_report(replay) != render_report(report):
            print(
                "replay FAILED: second run produced a different report",
                file=sys.stderr,
            )
            return 1
        if collector is not None and (
            replay_collector.aggregated_jsonl()
            != collector.aggregated_jsonl()
        ):
            print(
                "replay FAILED: second run produced a different "
                "telemetry stream",
                file=sys.stderr,
            )
            return 1
        print("replay verified: byte-identical report")
    if collector is not None:
        args.telemetry_out.parent.mkdir(parents=True, exist_ok=True)
        args.telemetry_out.write_text(
            collector.aggregated_jsonl(), encoding="utf-8"
        )
        print(
            f"telemetry written: {args.telemetry_out} "
            f"(digest {collector.aggregated_digest()[:16]})"
        )
    if args.report_out is not None:
        path = write_report(report, args.report_out)
        print(f"report written: {path}")
    if args.ops_out is not None:
        # Re-run the cluster state for the final ops view would be
        # wasteful; the report already carries per-stage rows, so the
        # ops view here is the fault-free shape of the same cluster.
        from repro.obs.canonical import canonical_line
        from repro.service.cluster import StoreCluster

        n = schedule.n_processes if schedule else args.replicas
        cluster = StoreCluster(n, args.algorithm)
        cluster.warm_up()
        args.ops_out.parent.mkdir(parents=True, exist_ok=True)
        args.ops_out.write_bytes(canonical_line(cluster.ops_view()))
        print(f"ops view written: {args.ops_out}")
    return 0


def _describe_dump(path: Path, tail: int) -> int:
    """Read one flight dump (crash or aggregated) and summarise it."""
    from repro.obs.telemetry import parse_flight_jsonl

    try:
        headers, events = parse_flight_jsonl(
            path.read_text(encoding="utf-8")
        )
    except (OSError, ValueError) as error:
        print(f"error: cannot read {path}: {error}", file=sys.stderr)
        return 2
    print(f"{path}: {len(headers)} node stream(s), {len(events)} events")
    for header in headers:
        print(
            f"  node {header['node']}: recorded={header['recorded']} "
            f"dropped={header['dropped']} capacity={header['capacity']}"
        )
    kinds: dict = {}
    for event in events:
        kinds[event["event"]] = kinds.get(event["event"], 0) + 1
    if kinds:
        joined = ", ".join(
            f"{name}={count}" for name, count in sorted(kinds.items())
        )
        print(f"  events: {joined}")
    crashes = [event for event in events if event["event"] == "crash"]
    for crash in crashes:
        first_line = str(crash.get("error", "")).strip().splitlines()
        print(
            f"  CRASH on node {crash['node']}: "
            f"{first_line[-1] if first_line else 'unknown error'}"
        )
    if tail > 0:
        from repro.obs.canonical import canonical_json

        print(f"  last {min(tail, len(events))} event(s):")
        for event in events[-tail:]:
            print(f"    {canonical_json(event)}")
    return 0


def run_telemetry(args: argparse.Namespace) -> int:
    """Handle ``repro-experiments telemetry``; returns the exit code."""
    from repro.errors import ReproError
    from repro.obs.telemetry import TelemetryCollector, render_prometheus
    from repro.service.load import LoadProfile
    from repro.service.scenario import run_scenario

    if args.read is not None:
        return _describe_dump(args.read, args.tail)

    try:
        schedule = _resolve_schedule(args.schedule)
        profile = LoadProfile(
            clients=args.clients, ticks=args.ticks, seed=args.seed
        )
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    collector = TelemetryCollector()
    run_scenario(
        profile,
        schedule=schedule,
        algorithm=args.algorithm,
        n_processes=args.replicas,
        collector=collector,
    )
    if args.verify_replay:
        replay = TelemetryCollector()
        run_scenario(
            profile,
            schedule=schedule,
            algorithm=args.algorithm,
            n_processes=args.replicas,
            collector=replay,
        )
        if replay.aggregated_jsonl() != collector.aggregated_jsonl():
            print(
                "replay FAILED: second run produced a different "
                "telemetry stream",
                file=sys.stderr,
            )
            return 1
        print("replay verified: byte-identical telemetry stream")
    collector.fold()
    print(collector.describe())
    print(f"aggregated digest: {collector.aggregated_digest()}")
    if args.tail > 0:
        from repro.obs.canonical import canonical_json
        from repro.obs.telemetry import FLIGHT_HEADER_KIND

        events = [
            line
            for line in collector.aggregated_events()
            if line.get("kind") != FLIGHT_HEADER_KIND
        ]
        print(f"last {min(args.tail, len(events))} event(s):")
        for event in events[-args.tail:]:
            print(f"  {canonical_json(event)}")
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(
            collector.aggregated_jsonl(), encoding="utf-8"
        )
        print(f"telemetry written: {args.out}")
    if args.metrics_out is not None:
        args.metrics_out.parent.mkdir(parents=True, exist_ok=True)
        args.metrics_out.write_text(
            render_prometheus(collector.registry), encoding="utf-8"
        )
        print(f"metrics written: {args.metrics_out}")
    return 0


def run_serve(args: argparse.Namespace) -> int:
    """Handle ``repro-experiments serve``; returns the exit code."""
    try:
        return asyncio.run(_serve(args))
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        return 0


async def _serve(args: argparse.Namespace) -> int:
    from repro.service.cluster import StoreCluster
    from repro.service.frontend import FrontendGroup, ProcFrontendGroup

    if args.backend == "proc":
        from repro.gcs.proc.controller import ProcCluster

        with ProcCluster(
            args.replicas,
            algorithm=args.algorithm,
            endpoint_kind="store",
            tick_interval=args.tick_interval,
        ) as cluster:
            cluster.await_stable()
            group = ProcFrontendGroup(cluster)
            peers = await group.start(args.host, args.port)
            for pid, (host, port) in sorted(peers.items()):
                print(f"replica {pid} of {args.replicas} (proc/udp) "
                      f"on http://{host}:{port}")
            try:
                if args.smoke:
                    return await _smoke(peers)
                while True:
                    await asyncio.sleep(3600)
            finally:
                await group.stop()

    cluster = StoreCluster(args.replicas, args.algorithm)
    cluster.apply_stage((tuple(range(args.replicas)),))
    cluster.warm_up()
    group = FrontendGroup(cluster, tick_interval=args.tick_interval)
    peers = await group.start(args.host, args.port)
    for pid, (host, port) in sorted(peers.items()):
        print(f"replica {pid} on http://{host}:{port}")
    try:
        if args.smoke:
            return await _smoke(peers)
        while True:
            await asyncio.sleep(3600)
    finally:
        await group.stop()


async def _http_raw(address, method: str, path: str, body: bytes = b""):
    host, port = address
    reader, writer = await asyncio.open_connection(host, port)
    head = (
        f"{method} {path} HTTP/1.1\r\nHost: {host}\r\n"
        f"Content-Length: {len(body)}\r\nConnection: close\r\n\r\n"
    )
    writer.write(head.encode("ascii") + body)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    header, _, payload = raw.partition(b"\r\n\r\n")
    status = int(header.split()[1])
    return status, payload


async def _http(address, method: str, path: str, body: bytes = b""):
    status, payload = await _http_raw(address, method, path, body)
    return status, json.loads(payload.decode("utf-8"))


async def _smoke(peers) -> int:
    """One put/get/healthz/metrics pass over HTTP; failures fail the boot."""
    pid, address = sorted(peers.items())[0]
    checks = []
    status, answer = await _http(
        address, "PUT", "/kv/smoke", b'{"value": "ok"}'
    )
    checks.append(("put", status in (200, 307), status, answer))
    status, answer = await _http(address, "GET", "/kv/smoke")
    checks.append(("get", status == 200, status, answer))
    status, answer = await _http(address, "GET", "/healthz")
    checks.append(("healthz", status == 200, status, answer))
    status, payload = await _http_raw(address, "GET", "/metrics")
    text = payload.decode("utf-8", "replace")
    checks.append((
        "metrics",
        status == 200 and "service_http_requests" in text,
        status,
        f"{len(text.splitlines())} lines of Prometheus text",
    ))
    ok = all(passed for _, passed, _, _ in checks)
    for name, passed, status, answer in checks:
        detail = (
            answer
            if isinstance(answer, str)
            else json.dumps(answer, sort_keys=True)
        )
        print(f"  {name}: {'ok' if passed else 'FAIL'} "
              f"({status} {detail})")
    print("smoke passed" if ok else "smoke FAILED")
    return 0 if ok else 1
