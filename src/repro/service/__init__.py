"""User-perceived availability: the replicated store as a service.

The thesis measures availability by rounds-with-a-primary; this package
measures what a *client* of the replicated store experiences under
heavy traffic while the cluster partitions and heals.  It provides:

* :mod:`repro.service.frontend` — per-replica asyncio HTTP front ends
  with structured ``NotPrimaryError`` redirects, ``/healthz`` and a
  live ``/ops`` view backed by the causal observability layer;
* :mod:`repro.service.load` — an open-loop load generator replaying
  seeded heavy-tailed workloads (Zipf keys, arrival bursts, reconnect
  storms) where every draw is a pure hash, so workloads replay
  bit-exactly and shard by client;
* :mod:`repro.service.scenario` — the runner that partitions the
  cluster mid-load via recorded schedules and emits a canonical-JSON
  availability report contrasting requests-served with round-level
  availability, split by causal blame category.
"""

from repro.service.blame import (
    BLAME_PRIMARY_UNREACHABLE,
    SERVICE_BLAME_CATEGORIES,
    classify_unserved,
)
from repro.service.cluster import StoreCluster
from repro.service.frontend import (
    FrontendGroup,
    MemoryNodeBackend,
    ProcFrontendGroup,
    ProcNodeBackend,
    ServiceFrontend,
)
from repro.service.load import (
    ClientOp,
    LoadProfile,
    client_ops,
    replica_for,
    workload,
    workload_digest,
)
from repro.service.report import (
    REPORT_KIND,
    describe_report,
    render_report,
    write_report,
)
from repro.service.scenario import run_scenario

__all__ = [
    "BLAME_PRIMARY_UNREACHABLE",
    "SERVICE_BLAME_CATEGORIES",
    "classify_unserved",
    "StoreCluster",
    "FrontendGroup",
    "MemoryNodeBackend",
    "ProcFrontendGroup",
    "ProcNodeBackend",
    "ServiceFrontend",
    "ClientOp",
    "LoadProfile",
    "client_ops",
    "replica_for",
    "workload",
    "workload_digest",
    "REPORT_KIND",
    "describe_report",
    "render_report",
    "write_report",
    "run_scenario",
]
