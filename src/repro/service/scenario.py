"""Drive seeded load against a partitioning cluster; emit the report.

The runner marries the three deterministic pieces — the pure-hash
workload (:mod:`repro.service.load`), the recorded partition schedule
(:mod:`repro.gcs.proc.schedule`) and the lock-step store cluster
(:mod:`repro.service.cluster`) — so the whole scenario is a pure
function of its inputs.  Running it twice yields byte-identical
availability reports; the CLI's ``--verify-replay`` and the CI smoke
job both assert exactly that.

Routing model (a session-affine load balancer):

* every client is pinned to a replica (re-pinned at reconnect storms);
* **gets** are served by the pinned replica from local state — the
  primary-partition guarantee protects writes, not reads;
* **puts** go to the pinned replica; on a ``NotPrimaryError`` the
  request is redirected once to a primary claimant *reachable from
  that replica's component*.  If none exists, the request is unserved
  and classified by :func:`~repro.service.blame.classify_unserved`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.app.replicated_store import NotPrimaryError
from repro.gcs.proc.schedule import RecordedSchedule
from repro.obs.telemetry.collector import TelemetryCollector
from repro.obs.telemetry.trace import mint_trace_id
from repro.service.cluster import StoreCluster
from repro.service.load import (
    LoadProfile,
    ops_by_tick,
    replica_for,
    workload_digest,
)
from repro.service.report import build_report


def stage_start_ticks(n_stages: int, ticks: int) -> List[int]:
    """When each schedule stage applies: stage i at ``i*ticks//n``.

    Stage 0 applies before the warm-up, so its entry is always 0.
    """
    return [index * ticks // n_stages for index in range(n_stages)]


def run_scenario(
    profile: LoadProfile,
    schedule: Optional[RecordedSchedule] = None,
    algorithm: str = "ykd",
    n_processes: int = 5,
    warmup_ticks: int = 300,
    collector: Optional[TelemetryCollector] = None,
) -> Dict[str, Any]:
    """Run one load scenario and return its availability report.

    With no schedule the cluster stays fully connected for the whole
    run — the pinned fault-free baseline, which must come out at 100%
    user-perceived availability.

    With a ``collector`` the cluster runs its per-replica flight
    recorders (view changes, store ops, unserved requests — each with
    the request's minted trace id), the routing loop notes
    per-outcome/per-tick series, and the streams are pulled into the
    collector at the end.  The report itself is unchanged — telemetry
    observes the scenario, it never perturbs it — and the collector's
    aggregated JSONL is byte-identical across replays of the same
    profile.
    """
    if schedule is not None:
        n_processes = schedule.n_processes
        stages = list(schedule.stages)
        schedule_name = schedule.name
    else:
        stages = [(tuple(range(n_processes)),)]
        schedule_name = None

    cluster = StoreCluster(
        n_processes, algorithm, record_flight=collector is not None
    )
    starts = stage_start_ticks(len(stages), profile.ticks)
    cluster.apply_stage(stages[0])
    cluster.warm_up(max_ticks=warmup_ticks)

    by_tick = ops_by_tick(profile)
    served_gets = puts_direct = puts_redirected = 0
    unserved: Dict[str, int] = {}
    rounds_with_primary = 0
    stage_rows: List[Dict[str, Any]] = []
    row = None
    stage_index = 0

    for tick in range(profile.ticks):
        while (
            stage_index + 1 < len(stages)
            and starts[stage_index + 1] <= tick
        ):
            stage_index += 1
            cluster.apply_stage(stages[stage_index])
        if row is None or row["stage"] != stage_index:
            row = {
                "stage": stage_index,
                "components": [
                    list(component) for component in stages[stage_index]
                ],
                "ticks": 0,
                "requests": 0,
                "served": 0,
                "unserved": 0,
            }
            stage_rows.append(row)
        cluster.tick()
        row["ticks"] += 1
        claimants = cluster.primary_claimants()
        if claimants:
            rounds_with_primary += 1
        tick_requests = tick_served = 0
        for op in by_tick.get(tick, ()):
            row["requests"] += 1
            tick_requests += 1
            replica = replica_for(profile, op.client, n_processes, tick)
            trace = (
                mint_trace_id(profile.seed, op.client, tick)
                if collector is not None
                else None
            )
            if op.kind == "get":
                cluster.get(replica, op.key, trace=trace)
                served_gets += 1
                row["served"] += 1
                tick_served += 1
                if collector is not None:
                    collector.note_request("get")
                continue
            try:
                cluster.put(replica, op.key, op.value, trace=trace)
                puts_direct += 1
                row["served"] += 1
                tick_served += 1
                if collector is not None:
                    collector.note_request("put_direct")
                continue
            except NotPrimaryError:
                pass
            component = cluster.component_of(replica)
            reachable = [pid for pid in claimants if pid in component]
            served_redirect = False
            if reachable:
                try:
                    cluster.put(reachable[0], op.key, op.value, trace=trace)
                    puts_redirected += 1
                    row["served"] += 1
                    tick_served += 1
                    served_redirect = True
                    if collector is not None:
                        collector.note_request("put_redirected")
                except NotPrimaryError:  # pragma: no cover - defensive
                    pass
            if served_redirect:
                continue
            category = cluster.blame_for(replica) or "attempt_in_flight"
            unserved[category] = unserved.get(category, 0) + 1
            row["unserved"] += 1
            cluster.record(replica, "unserved", blame=category, trace=trace)
            if collector is not None:
                collector.note_request("unserved", blame=category)
        if collector is not None:
            collector.note_tick(tick_requests, tick_served)

    report = build_report(
        profile=profile,
        algorithm=algorithm,
        n_processes=n_processes,
        schedule_name=schedule_name,
        workload_digest=workload_digest(profile),
        served_gets=served_gets,
        puts_direct=puts_direct,
        puts_redirected=puts_redirected,
        unserved=unserved,
        rounds_with_primary=rounds_with_primary,
        stages=stage_rows,
    )
    if collector is not None:
        availability = report["availability"]
        collector.note_availability(
            availability["user_perceived_percent"],
            availability["round_level_percent"],
        )
        collector.collect_store_cluster(cluster)
    return report
