"""Example applications built on the primary-component interface."""

from repro.app.replicated_store import (
    NotPrimaryError,
    PutOp,
    ReplicatedStore,
    SyncOffer,
)

__all__ = ["NotPrimaryError", "PutOp", "ReplicatedStore", "SyncOffer"]
