"""A primary-partition replicated key-value store.

The thesis motivates primary components with replicated databases
(El Abbadi & Toueg) and group-based toolkits: "In many distributed
systems, at most one component is permitted to make progress in order
to avoid inconsistencies."  This module is that application, built on
the public :class:`PrimaryComponentAlgorithm` interface exactly as
Fig. 2-2 prescribes — every application message passes through the
algorithm, which piggybacks its own protocol transparently.

Semantics
---------
* A replica accepts a ``put`` only while its process is inside the
  primary component; elsewhere the write is refused (callers may retry
  after the next view change).
* Accepted writes are stamped with the store's *epoch* — the order key
  of the latest formed primary its algorithm knows — plus a per-epoch
  operation counter, and broadcast to the component.
* Concurrent writes inside the same primary may carry equal stamps
  (each replica counts its own ops); per-key ``(stamp, origin)`` write
  tags break the tie deterministically, so every replica converges on
  the same winner regardless of delivery order.
* On every view change each replica announces its ``(epoch, op_count)``
  stamp and full contents; replicas adopt the lexicographically
  greatest announcement.  Because writes happen only inside primary
  components and formed primaries form a subquorum chain, the greatest
  stamp identifies the latest primary's state, so reconciliation after
  a merge converges every replica on one history with no lost primary
  writes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.interface import PrimaryComponentAlgorithm
from repro.core.message import Message
from repro.core.view import View
from repro.errors import ReproError
from repro.sim.driver import ProcessEndpoint
from repro.types import ProcessId


class NotPrimaryError(ReproError):
    """A write was attempted outside the primary component."""


#: (epoch, operations applied in that epoch); totally ordered.
Stamp = Tuple[int, int]


@dataclass(frozen=True)
class PutOp:
    """A replicated write, broadcast within the primary component."""

    key: str
    value: Any
    stamp: Stamp
    origin: ProcessId


#: Per-key write tag: who wrote the current value, under which stamp.
WriteTag = Tuple[Stamp, ProcessId]


@dataclass(frozen=True)
class SyncOffer:
    """A replica's announcement after a view change: stamp + contents."""

    stamp: Stamp
    contents: Tuple[Tuple[str, Any], ...]
    tags: Tuple[Tuple[str, WriteTag], ...] = ()

    @property
    def as_dict(self) -> Dict[str, Any]:
        return dict(self.contents)


class ReplicatedStore(ProcessEndpoint):
    """One replica of the store, driven by the simulation driver loop."""

    def __init__(self, algorithm: PrimaryComponentAlgorithm) -> None:
        super().__init__(algorithm)
        self.data: Dict[str, Any] = {}
        self._tags: Dict[str, WriteTag] = {}
        #: (epoch of latest primary the data was written under, op count).
        self.stamp: Stamp = (self._current_epoch(), 0)
        self._outbox: List[Message] = []
        self.writes_accepted = 0
        self.writes_refused = 0
        self.syncs_adopted = 0

    # ------------------------------------------------------------------
    # Public API.
    # ------------------------------------------------------------------

    def in_primary(self) -> bool:
        """Whether this replica currently accepts writes."""
        return self.algorithm.in_primary()

    def get(self, key: str, default: Any = None) -> Any:
        """Read a key locally.

        Reads are always served (possibly stale outside the primary);
        the primary-partition guarantee protects writes, not reads.
        """
        return self.data.get(key, default)

    def put(self, key: str, value: Any) -> PutOp:
        """Write a key; only legal inside the primary component.

        The write applies locally at once and is broadcast to the rest
        of the component on the next driver round.
        """
        if not self.in_primary():
            self.writes_refused += 1
            raise NotPrimaryError(
                f"replica {self.pid} is not in the primary component; "
                "writes would risk divergent histories"
            )
        epoch = self._current_epoch()
        if epoch != self.stamp[0]:
            self.stamp = (epoch, 0)
        self.stamp = (self.stamp[0], self.stamp[1] + 1)
        op = PutOp(key=key, value=value, stamp=self.stamp, origin=self.pid)
        self._apply_put(op)
        self._outbox.append(Message(payload=op))
        self.writes_accepted += 1
        return op

    def snapshot(self) -> Dict[str, Any]:
        """A copy of the replica's current contents."""
        return dict(self.data)

    @property
    def outbox_size(self) -> int:
        """Broadcasts queued but not yet offered to the substrate.

        The service layer uses this to pump a loaded replica's outbox
        fully within one tick instead of one message per event.
        """
        return len(self._outbox)

    def stats(self) -> Dict[str, Any]:
        """Operational counters for health endpoints and ops views."""
        return {
            "keys": len(self.data),
            "stamp": list(self.stamp),
            "writes_accepted": self.writes_accepted,
            "writes_refused": self.writes_refused,
            "syncs_adopted": self.syncs_adopted,
        }

    # ------------------------------------------------------------------
    # Endpoint hooks (the Fig. 2-2 integration).
    # ------------------------------------------------------------------

    def next_application_message(self) -> Message:
        if self._outbox:
            return self._outbox.pop(0)
        return Message.empty()

    def on_payload(self, payload: object, sender: ProcessId) -> None:
        if isinstance(payload, PutOp):
            if sender != self.pid:
                self._apply_put(payload)
        elif isinstance(payload, SyncOffer):
            self._consider_sync(payload)
        else:
            raise ReproError(f"unknown payload {type(payload).__name__}")

    def on_view(self, view: View) -> None:
        # Announce our state so the new component converges on the
        # latest primary's history.
        self._outbox.append(Message(payload=self._sync_offer()))

    # ------------------------------------------------------------------
    # Internals.
    # ------------------------------------------------------------------

    def _current_epoch(self) -> int:
        primaries = self.algorithm.formed_primaries()
        if not primaries:
            return 0
        return max(order_key for order_key, _ in primaries)

    def _sync_offer(self) -> SyncOffer:
        return SyncOffer(
            stamp=self.stamp,
            contents=tuple(sorted(self.data.items())),
            tags=tuple(sorted(self._tags.items())),
        )

    def _apply_put(self, op: PutOp) -> None:
        # Concurrent puts inside one primary stamp independently, so
        # two writes to the same key may tie on stamp; the (stamp,
        # origin) tag makes the winner delivery-order independent.
        tag = (op.stamp, op.origin)
        existing = self._tags.get(op.key)
        if existing is not None and existing > tag:
            return
        self._tags[op.key] = tag
        self.data[op.key] = op.value
        if op.origin != self.pid and op.stamp > self.stamp:
            self.stamp = op.stamp

    def _consider_sync(self, offer: SyncOffer) -> None:
        if offer.stamp > self.stamp:
            self.data = offer.as_dict
            self._tags = dict(offer.tags)
            self.stamp = offer.stamp
            self.syncs_adopted += 1
