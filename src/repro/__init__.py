"""repro: availability study of dynamic voting algorithms.

A from-scratch reproduction of Kyle W. Ingols' MIT MEng thesis
"Availability Study of Dynamic Voting Algorithms" (June 2000; basis of
the ICDCS 2001 paper with Idit Keidar): the primary-component algorithm
framework of Ch. 2, the six algorithms of Ch. 3 (YKD, unoptimized YKD,
DFLS, 1-pending, MR1p and simple majority), the in-memory driver loop
and fault injector of §2.2, and the full experiment harness behind the
figures of Ch. 4.

Quickstart::

    from repro import CaseConfig, run_case

    case = CaseConfig(algorithm="ykd", n_processes=16, n_changes=6,
                      mean_rounds_between_changes=4.0, runs=100)
    print(run_case(case).availability_percent)
"""

from repro.core import (
    DFLS,
    MR1p,
    Message,
    OnePending,
    PrimaryComponentAlgorithm,
    Session,
    SimpleMajority,
    UnoptimizedYKD,
    View,
    YKD,
    algorithm_names,
    create_algorithm,
    display_name,
    initial_view,
    is_majority,
    is_subquorum,
)
from repro.errors import (
    InvariantViolation,
    ProtocolError,
    ReproError,
    ScheduleError,
    SimulationError,
    TopologyError,
)
from repro.net import (
    BurstSchedule,
    CrashRecoveryChangeGenerator,
    DeterministicSchedule,
    GeometricSchedule,
    Topology,
    UniformChangeGenerator,
)
from repro.obs import (
    CampaignMetrics,
    EventBus,
    MetricsRegistry,
    PhaseProfiler,
    Subscriber,
)
from repro.sim import (
    CaseConfig,
    CaseResult,
    DriverLoop,
    RunConfig,
    RunResult,
    compare_algorithms,
    run_case,
    run_single,
)

__version__ = "1.0.0"

__all__ = [
    "BurstSchedule",
    "CampaignMetrics",
    "CaseConfig",
    "CaseResult",
    "CrashRecoveryChangeGenerator",
    "DFLS",
    "DeterministicSchedule",
    "DriverLoop",
    "EventBus",
    "GeometricSchedule",
    "InvariantViolation",
    "MR1p",
    "Message",
    "MetricsRegistry",
    "OnePending",
    "PhaseProfiler",
    "PrimaryComponentAlgorithm",
    "ProtocolError",
    "ReproError",
    "RunConfig",
    "RunResult",
    "ScheduleError",
    "Session",
    "SimpleMajority",
    "SimulationError",
    "Subscriber",
    "Topology",
    "TopologyError",
    "UniformChangeGenerator",
    "UnoptimizedYKD",
    "View",
    "YKD",
    "algorithm_names",
    "compare_algorithms",
    "create_algorithm",
    "display_name",
    "initial_view",
    "is_majority",
    "is_subquorum",
    "run_case",
    "run_single",
    "__version__",
]
