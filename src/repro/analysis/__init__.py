"""Statistical treatment of simulation results."""

from repro.analysis.intervals import (
    OutcomeSummary,
    PairedComparison,
    compare_paired,
    mcnemar_midp,
    paired_disagreements,
    summarize_outcomes,
    wilson_interval,
)

__all__ = [
    "OutcomeSummary",
    "PairedComparison",
    "compare_paired",
    "mcnemar_midp",
    "paired_disagreements",
    "summarize_outcomes",
    "wilson_interval",
]
