"""Confidence intervals and paired comparisons for availability data.

The thesis reports raw percentages over 1000-run cases; when we
reproduce at smaller scales, sampling error matters, so the analysis
layer provides:

* :func:`wilson_interval` — a Wilson score interval for a Bernoulli
  proportion (well behaved near 0% and 100%, unlike the normal
  approximation);
* :func:`paired_disagreements` / :func:`mcnemar_midp` — the campaigns
  run every algorithm against *identical fault sequences*, so per-run
  outcomes are paired and a McNemar-style exact test on the discordant
  pairs is the right comparison (far more sensitive than comparing two
  independent percentages);
* :func:`summarize_outcomes` — a compact record combining all of it.

Everything is pure stdlib (math only); no scipy required.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple


def wilson_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion, as fractions."""
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError("successes must be within [0, trials]")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    z = _normal_quantile(0.5 + confidence / 2.0)
    p_hat = successes / trials
    denominator = 1.0 + z * z / trials
    centre = p_hat + z * z / (2 * trials)
    margin = z * math.sqrt(
        p_hat * (1.0 - p_hat) / trials + z * z / (4.0 * trials * trials)
    )
    low = (centre - margin) / denominator
    high = (centre + margin) / denominator
    # Guard the exact endpoints against float rounding: an interval for
    # 0/n must include 0, and for n/n must include 1.
    if successes == 0:
        low = 0.0
    if successes == trials:
        high = 1.0
    return max(0.0, low), min(1.0, high)


def _normal_quantile(p: float) -> float:
    """Inverse standard-normal CDF (Acklam's rational approximation)."""
    if not 0.0 < p < 1.0:
        raise ValueError("p must be in (0, 1)")
    # Coefficients for the central and tail regions.
    a = (-3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
         1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00)
    b = (-5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
         6.680131188771972e01, -1.328068155288572e01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
         -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
         3.754408661907416e00)
    p_low, p_high = 0.02425, 1 - 0.02425
    if p < p_low:
        q = math.sqrt(-2 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
        )
    if p <= p_high:
        q = p - 0.5
        r = q * q
        return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / (
            ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1
        )
    q = math.sqrt(-2 * math.log(1 - p))
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
        (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
    )


def paired_disagreements(
    first: Sequence[bool], second: Sequence[bool]
) -> Tuple[int, int]:
    """Discordant pair counts: (first-only successes, second-only).

    The inputs are per-run outcomes of two algorithms under identical
    fault sequences; concordant runs carry no comparative information.
    """
    if len(first) != len(second):
        raise ValueError("paired outcome lists must have equal length")
    first_only = sum(a and not b for a, b in zip(first, second))
    second_only = sum(b and not a for a, b in zip(first, second))
    return first_only, second_only


def mcnemar_midp(first_only: int, second_only: int) -> float:
    """Mid-p McNemar test on discordant pairs (two-sided).

    Under the null (no availability difference), each discordant pair
    is first-only with probability ½; the mid-p variant corrects the
    exact binomial test's conservatism.  Returns 1.0 when there are no
    discordant pairs (no evidence either way).
    """
    n = first_only + second_only
    if n == 0:
        return 1.0
    k = min(first_only, second_only)
    # P[X < k] * 2 + P[X == k]  (two-sided mid-p), X ~ Binomial(n, 1/2)
    less = sum(_binom_pmf(i, n) for i in range(k))
    equal = _binom_pmf(k, n)
    midp = 2.0 * less + equal
    return min(1.0, midp)


def _binom_pmf(k: int, n: int) -> float:
    return math.comb(n, k) * 0.5**n


@dataclass(frozen=True)
class OutcomeSummary:
    """Availability of one algorithm's outcome list, with its interval."""

    runs: int
    successes: int
    percent: float
    low_percent: float
    high_percent: float

    def describe(self) -> str:
        """E.g. ``"86.0% [80.5, 90.1] (172/200)"``."""
        return (
            f"{self.percent:.1f}% "
            f"[{self.low_percent:.1f}, {self.high_percent:.1f}] "
            f"({self.successes}/{self.runs})"
        )


def summarize_outcomes(
    outcomes: Sequence[bool], confidence: float = 0.95
) -> OutcomeSummary:
    """Availability percentage with its Wilson interval."""
    runs = len(outcomes)
    successes = sum(outcomes)
    low, high = wilson_interval(successes, runs, confidence)
    return OutcomeSummary(
        runs=runs,
        successes=successes,
        percent=100.0 * successes / runs,
        low_percent=100.0 * low,
        high_percent=100.0 * high,
    )


@dataclass(frozen=True)
class PairedComparison:
    """Head-to-head comparison of two algorithms over identical faults."""

    first_name: str
    second_name: str
    first: OutcomeSummary
    second: OutcomeSummary
    first_only: int
    second_only: int
    p_value: float

    @property
    def significant(self) -> bool:
        return self.p_value < 0.05

    def describe(self) -> str:
        """Two-line human-readable summary of the comparison."""
        verdict = (
            f"{self.first_name} wins {self.first_only} runs, "
            f"{self.second_name} wins {self.second_only} "
            f"(mid-p = {self.p_value:.4f}"
            f"{', significant' if self.significant else ''})"
        )
        return (
            f"{self.first_name}: {self.first.describe()}  vs  "
            f"{self.second_name}: {self.second.describe()}\n{verdict}"
        )


def compare_paired(
    first_name: str,
    first: Sequence[bool],
    second_name: str,
    second: Sequence[bool],
    confidence: float = 0.95,
) -> PairedComparison:
    """Full paired analysis of two outcome lists."""
    first_only, second_only = paired_disagreements(first, second)
    return PairedComparison(
        first_name=first_name,
        second_name=second_name,
        first=summarize_outcomes(first, confidence),
        second=summarize_outcomes(second, confidence),
        first_only=first_only,
        second_only=second_only,
        p_value=mcnemar_midp(first_only, second_only),
    )
