"""Campaigns: the 1000-run cases of the thesis (§4.1).

"Each case (specified by the algorithm, the number of connectivity
changes and the rate) was simulated in 1000 runs. ... The same random
sequence was used to test each of the algorithms."

Two run protocols exist:

* **fresh start** — every run begins from the pristine initial state
  (fresh algorithm instances, fully connected network);
* **cascading** — each run starts in the algorithm *and network* state
  at which the previous run ended, so state (pending ambiguous
  sessions, stale knowledge, a partitioned topology) accumulates across
  thousands of connectivity changes.

Identical-fault-sequence guarantee: for fresh-start cases the fault RNG
is labelled by (seed, case, run index); for cascading cases by (seed,
case) with draws consumed in run order.  Neither label mentions the
algorithm, and topology evolution never depends on algorithm behaviour,
so every algorithm faces the same faults run for run.
"""

from __future__ import annotations

import warnings

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import InvariantViolation
from repro.net.changes import UniformChangeGenerator
from repro.net.schedule import ChangeSchedule, GeometricSchedule
from repro.obs import CampaignMetrics, MetricsRegistry, Subscriber
from repro.sim.driver import DriverLoop
from repro.sim.invariants import InvariantChecker
from repro.sim.rng import derive_rng
from repro.sim.stats import (
    AmbiguousSessionCollector,
    AvailabilityCollector,
    MessageSizeCollector,
)

MODE_FRESH = "fresh"
MODE_CASCADING = "cascading"


@dataclass
class CaseConfig:
    """One case: algorithm × change count × rate × protocol."""

    algorithm: str
    n_processes: int = 64
    n_changes: int = 6
    mean_rounds_between_changes: float = 4.0
    runs: int = 1000
    mode: str = MODE_FRESH
    master_seed: int = 0
    #: First run index to execute (fresh mode only).  Fresh-start runs
    #: are RNG-labelled by (seed, case, run index), so a case can be
    #: split into shards covering disjoint index ranges — each shard
    #: executes exactly the runs the unsharded case would, and the
    #: merged statistics are identical (see ``repro.sim.parallel``).
    run_offset: int = 0
    check_invariants: bool = True
    max_quiescence_rounds: int = 400
    collect_ambiguous: bool = False
    collect_message_sizes: bool = False
    #: Attach a :class:`repro.obs.CampaignMetrics` subscriber and return
    #: its registry on :attr:`CaseResult.metrics`.
    collect_metrics: bool = False
    #: Attach a :class:`repro.obs.causal.CausalMetrics` subscriber: the
    #: per-round blame breakdown and span statistics land in the same
    #: :attr:`CaseResult.metrics` registry (shared with
    #: ``collect_metrics`` when both are set).  Because the registry is
    #: the cross-process channel of ``run_cases_parallel``, this flag —
    #: not an observer instance — is how sharded campaigns collect
    #: causal statistics with deterministic merge.
    collect_causal: bool = False
    change_generator: Optional[UniformChangeGenerator] = None
    schedule: Optional[ChangeSchedule] = None
    cut_probability: float = 0.5

    def __post_init__(self) -> None:
        if self.mode not in (MODE_FRESH, MODE_CASCADING):
            raise ValueError(f"unknown mode {self.mode!r}")
        if self.runs < 1:
            raise ValueError("a case needs at least one run")
        if self.run_offset < 0:
            raise ValueError("run_offset cannot be negative")
        if self.run_offset and self.mode != MODE_FRESH:
            raise ValueError(
                "run_offset requires fresh mode — cascading runs consume "
                "one sequential RNG stream and cannot be split"
            )

    def case_label(self) -> Tuple:
        """The RNG label shared by all algorithms under this case."""
        return (
            "case",
            self.mode,
            self.n_processes,
            self.n_changes,
            self.mean_rounds_between_changes,
        )

    def make_schedule(self) -> ChangeSchedule:
        """The configured schedule, defaulting to the thesis' geometric."""
        if self.schedule is not None:
            return self.schedule
        return GeometricSchedule(self.mean_rounds_between_changes)


@dataclass
class CaseResult:
    """Aggregate outcome of one case."""

    config: CaseConfig
    availability_percent: float
    outcomes: List[bool]
    rounds_total: int
    changes_total: int
    ambiguous_stable: Dict[int, int] = field(default_factory=dict)
    ambiguous_stable_in_primary: Dict[int, int] = field(default_factory=dict)
    ambiguous_in_progress: Dict[int, int] = field(default_factory=dict)
    ambiguous_max: int = 0
    message_max_bytes: float = 0.0
    message_mean_bytes: float = 0.0
    #: Piggybacking broadcasts behind ``message_mean_bytes`` (the
    #: weight needed to merge means across shards exactly).
    message_broadcasts: int = 0
    #: Metrics registry filled during the case, when
    #: :attr:`CaseConfig.collect_metrics` was set (else ``None``).
    metrics: Optional[MetricsRegistry] = None

    @property
    def runs(self) -> int:
        return len(self.outcomes)


def run_case(
    config: CaseConfig,
    observers: Sequence[Subscriber] = (),
    extra_observers: Optional[Sequence[Subscriber]] = None,
    *,
    kernel: str = "scalar",
    transport: Optional[str] = None,
    collect_metrics: Optional[bool] = None,
) -> CaseResult:
    """Execute every run of a case and aggregate the statistics.

    ``observers`` takes any :class:`repro.obs.Subscriber` instances;
    they see the case-level hooks (``on_case_start``/``on_case_end``)
    here and every driver-level event of every run.  ``extra_observers``
    is the deprecated name for the same parameter.

    The keyword-only knob group:

    ``kernel`` selects the execution backend: ``"scalar"`` (default)
    runs the object-graph :class:`DriverLoop` per run; ``"batched"``
    routes the case through the vectorized bitmask kernel of
    :mod:`repro.sim.batch`, which reproduces the scalar per-run
    outcomes exactly but supports only part of the configuration
    surface — anything it cannot prove equivalent (observers attached,
    statistics collectors, cascading mode, exotic generators, > 64
    processes) falls back to the scalar engine silently.  Use
    :func:`repro.sim.batch.run_case_batched` directly to get a loud
    :class:`~repro.errors.UnsupportedBatchConfig` instead of the
    fallback.

    ``transport`` exists for symmetry with the GCS surface and accepts
    only ``None`` or ``"memory"``: the campaign driver plays the group
    communication role itself (thesis testing-system style), so there
    is no socket underneath to swap.  Requesting a network backend here
    raises :class:`~repro.errors.UnsupportedTransportConfig` loudly —
    network transports live on the GCS stack
    (``GCSCluster(transport=...)``) and the multi-process runner
    (:mod:`repro.gcs.proc`).

    ``collect_metrics`` overrides :attr:`CaseConfig.collect_metrics`
    per call (``None`` keeps the config's value).
    """
    if kernel not in ("scalar", "batched"):
        raise ValueError(f"unknown kernel {kernel!r}")
    if transport not in (None, "memory"):
        from repro.errors import UnsupportedTransportConfig

        raise UnsupportedTransportConfig(
            f"run_case cannot execute over the {transport!r} transport: "
            "the campaign driver routes broadcasts in-process (and the "
            "batched kernel has no packet layer at all); run network "
            "transports through GCSCluster(transport=...) or "
            "repro.gcs.proc instead"
        )
    if collect_metrics is not None and collect_metrics != config.collect_metrics:
        config = replace(config, collect_metrics=collect_metrics)
    if kernel == "batched" and not observers and extra_observers is None:
        from repro.errors import UnsupportedBatchConfig
        from repro.sim.batch import run_case_batched

        try:
            return run_case_batched(config)
        except UnsupportedBatchConfig:
            pass  # outside the batched surface: scalar fallback
    if extra_observers is not None:
        warnings.warn(
            "run_case(extra_observers=...) is deprecated; "
            "pass observers=[...] instead",
            DeprecationWarning,
            stacklevel=2,
        )
        observers = [*observers, *extra_observers]
    availability = AvailabilityCollector()
    subscribers: List[Subscriber] = [availability]
    ambiguous: Optional[AmbiguousSessionCollector] = None
    sizes: Optional[MessageSizeCollector] = None
    metrics: Optional[CampaignMetrics] = None
    registry: Optional[MetricsRegistry] = None
    if config.collect_ambiguous:
        ambiguous = AmbiguousSessionCollector(monitored_pid=0)
        subscribers.append(ambiguous)
    if config.collect_message_sizes:
        sizes = MessageSizeCollector()
        subscribers.append(sizes)
    if config.collect_metrics:
        metrics = CampaignMetrics()
        registry = metrics.registry
        subscribers.append(metrics)
    if config.collect_causal:
        # Imported here, not at module top: the causal package pulls in
        # the trace recorder, which this module's own import chain feeds
        # (see the lazy re-export note in ``repro.obs``).
        from repro.obs.causal import CausalMetrics

        causal = CausalMetrics(registry=registry)
        registry = causal.registry
        subscribers.append(causal)
    subscribers.extend(observers)

    for subscriber in subscribers:
        subscriber.on_case_start(config)

    schedule = config.make_schedule()
    rounds_total = 0
    changes_total = 0

    if config.mode == MODE_FRESH:
        for run_index in range(config.run_offset, config.run_offset + config.runs):
            fault_rng = derive_rng(
                config.master_seed, *config.case_label(), run_index
            )
            driver = _build_driver(config, fault_rng, subscribers)
            gaps = schedule.draw_gaps(fault_rng, config.n_changes)
            _execute_with_repro(driver, gaps, config, run_index)
            rounds_total += driver.round_index
            changes_total += driver.changes_injected
    else:
        fault_rng = derive_rng(config.master_seed, *config.case_label())
        driver = _build_driver(config, fault_rng, subscribers)
        for run_index in range(config.runs):
            gaps = schedule.draw_gaps(fault_rng, config.n_changes)
            _execute_with_repro(driver, gaps, config, run_index)
        rounds_total = driver.round_index
        changes_total = driver.changes_injected

    result = CaseResult(
        config=config,
        availability_percent=availability.availability_percent,
        outcomes=list(availability.outcomes),
        rounds_total=rounds_total,
        changes_total=changes_total,
    )
    if ambiguous is not None:
        result.ambiguous_stable = dict(ambiguous.stable)
        result.ambiguous_stable_in_primary = dict(ambiguous.stable_in_primary)
        result.ambiguous_in_progress = dict(ambiguous.in_progress)
        result.ambiguous_max = ambiguous.max_observed
    if sizes is not None:
        result.message_max_bytes = sizes.max_bytes
        result.message_mean_bytes = sizes.mean_bytes
        result.message_broadcasts = sizes.broadcasts
    if registry is not None:
        result.metrics = registry
    for subscriber in subscribers:
        subscriber.on_case_end(result)
    return result


def _execute_with_repro(
    driver: DriverLoop, gaps: Sequence[int], config: CaseConfig, run_index: int
) -> None:
    """Run one measured run; a violation carries its repro out with it.

    The driver records the realized (gap, change, late) schedule of
    every run, so when an invariant breaks mid-campaign the exception
    is annotated with everything ``repro.check`` needs to replay,
    shrink and archive the failure — no re-running the campaign to
    catch the bug a second time.  For fresh-start runs the attached
    steps replay the whole failure from the pristine state; for
    cascading runs they are the failing tail only (the run started from
    accumulated state).
    """
    try:
        driver.execute_run(gaps)
    except InvariantViolation as violation:
        violation.repro_algorithm = config.algorithm
        violation.repro_run_index = run_index
        violation.repro_mode = config.mode
        violation.repro_n_processes = driver.n_processes
        violation.repro_steps = driver.recorded_steps()
        raise


def _build_driver(
    config: CaseConfig, fault_rng, observers: Sequence[Subscriber]
) -> DriverLoop:
    checker = InvariantChecker(enabled=config.check_invariants)
    return DriverLoop(
        algorithm=config.algorithm,
        n_processes=config.n_processes,
        fault_rng=fault_rng,
        change_generator=config.change_generator,
        observers=[checker, *observers],
        max_quiescence_rounds=config.max_quiescence_rounds,
        cut_probability=config.cut_probability,
    )


def compare_algorithms(
    base_config: CaseConfig,
    algorithms: Sequence[str],
    kernel: str = "scalar",
) -> Dict[str, CaseResult]:
    """Run the same case for several algorithms over identical faults."""
    return {
        algorithm: run_case(
            replace(base_config, algorithm=algorithm), kernel=kernel
        )
        for algorithm in algorithms
    }
