"""Exhaustive scenario exploration: a bounded model checker.

Random campaigns (the thesis' method, and ours) sample the fault space;
for *small* systems the space can be enumerated instead.  The explorer
drives an algorithm through **every** fault schedule up to a bound:

* every feasible connectivity change at each step (every way to split
  every component — deduplicated up to moved/remaining symmetry — and
  every pair of components to merge);
* every mid-round cut: every subset of the affected processes may be
  the "late" set that loses the round's messages;
* every gap choice: each configured number of quiet rounds before the
  change lands, so every protocol round of every algorithm gets
  interrupted somewhere in the enumeration.

Each complete scenario runs to quiescence under the full invariant
checker, so a single call proves (for that bound) that no reachable
interleaving violates safety — the exhaustive complement to the thesis'
1.3-million-random-changes trial.

Scenario counts grow as roughly ``(changes × cuts × gaps)^depth``; with
3 processes and depth 2 that is a few thousand runs (fast), with 4
processes and depth 2 tens of thousands (seconds), so bounds are
explicit and :class:`ExplorationResult` reports exactly what was
covered.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

from repro.errors import InvariantViolation
from repro.net.changes import ConnectivityChange, MergeChange, PartitionChange
from repro.net.topology import Topology
from repro.sim.driver import DriverLoop
from repro.sim.invariants import InvariantChecker
from repro.sim.rng import derive_rng
from repro.types import Members


def enumerate_changes(topology: Topology) -> Iterator[ConnectivityChange]:
    """Every feasible partition and merge of a topology, deterministically.

    Partitions are deduplicated up to the moved/remaining symmetry (the
    split {a}|{b,c} equals {b,c}|{a}); the canonical representative
    moves the set *not* containing the component's smallest member.
    """
    for component in topology.components:
        if len(component) < 2:
            continue
        ordered = sorted(component)
        anchor = ordered[0]
        rest = ordered[1:]
        # Every non-empty subset of `rest` is a valid moved-set that
        # does not contain the anchor: exactly one per split.
        for size in range(1, len(rest) + 1):
            for moved in itertools.combinations(rest, size):
                yield PartitionChange(
                    component=component, moved=frozenset(moved)
                )
    live = topology.live_components()
    for first, second in itertools.combinations(live, 2):
        yield MergeChange(first=first, second=second)


def enumerate_cuts(affected: Members) -> Iterator[FrozenSet[int]]:
    """Every possible late-set of a mid-round cut."""
    ordered = sorted(affected)
    for size in range(len(ordered) + 1):
        for subset in itertools.combinations(ordered, size):
            yield frozenset(subset)


@dataclass
class ExplorationResult:
    """What the exhaustive exploration covered and found."""

    algorithm: str
    n_processes: int
    depth: int
    gap_options: Tuple[int, ...]
    scenarios: int = 0
    available: int = 0
    violations: List[str] = field(default_factory=list)
    truncated: bool = False

    @property
    def availability_percent(self) -> float:
        if not self.scenarios:
            return float("nan")
        return 100.0 * self.available / self.scenarios

    @property
    def passed(self) -> bool:
        return not self.violations and self.scenarios > 0


def explore(
    algorithm: str,
    n_processes: int = 3,
    depth: int = 2,
    gap_options: Sequence[int] = (0, 1, 2),
    max_scenarios: Optional[int] = None,
    stop_on_violation: bool = True,
) -> ExplorationResult:
    """Exhaustively check one algorithm over all bounded fault schedules.

    Runs depth-first: a scenario is a sequence of ``depth`` steps, each
    a (quiet gap, connectivity change, late-set) triple, followed by
    quiescence.  Because driver state cannot be forked cheaply, each
    complete scenario replays from the initial state — wasteful in
    theory, simple and allocation-friendly in practice at these sizes.
    """
    if depth < 1:
        raise ValueError("depth must be at least 1")
    result = ExplorationResult(
        algorithm=algorithm,
        n_processes=n_processes,
        depth=depth,
        gap_options=tuple(gap_options),
    )

    def run_scenario(steps: List[Tuple[int, ConnectivityChange, FrozenSet[int]]]) -> bool:
        """Replay one complete scenario; returns its availability."""
        driver = DriverLoop(
            algorithm=algorithm,
            n_processes=n_processes,
            # Never consumed: every cut is injected explicitly, but the
            # stream is labelled so any future sampled decision stays
            # inside the reproducibility discipline.
            fault_rng=derive_rng(0, "explore", algorithm),
            observers=[InvariantChecker()],
        )
        driver.execute_schedule(steps)
        return driver.primary_exists()

    def scenario_prefixes(
        steps: List[Tuple[int, ConnectivityChange, FrozenSet[int]]],
        topology: Topology,
        remaining: int,
    ) -> Iterator[List[Tuple[int, ConnectivityChange, FrozenSet[int]]]]:
        """Yield every complete scenario extending ``steps``."""
        if remaining == 0:
            yield list(steps)
            return
        for gap in gap_options:
            for change in enumerate_changes(topology):
                from repro.net.changes import affected_processes, apply_change

                affected = affected_processes(change, topology)
                next_topology = apply_change(topology, change)
                for late in enumerate_cuts(affected):
                    steps.append((gap, change, late))
                    yield from scenario_prefixes(
                        steps, next_topology, remaining - 1
                    )
                    steps.pop()

    initial = Topology.fully_connected(n_processes)
    for scenario in scenario_prefixes([], initial, depth):
        if max_scenarios is not None and result.scenarios >= max_scenarios:
            result.truncated = True
            break
        result.scenarios += 1
        try:
            if run_scenario(scenario):
                result.available += 1
        except InvariantViolation as violation:
            description = "; ".join(
                f"gap={gap} {change.describe()} late={sorted(late)}"
                for gap, change, late in scenario
            )
            result.violations.append(f"{description}: {violation}")
            if stop_on_violation:
                break
    return result


def explore_all(
    algorithms: Sequence[str],
    n_processes: int = 3,
    depth: int = 2,
    gap_options: Sequence[int] = (0, 1, 2),
    max_scenarios: Optional[int] = None,
) -> Dict[str, ExplorationResult]:
    """Run the exhaustive exploration for several algorithms."""
    return {
        algorithm: explore(
            algorithm,
            n_processes=n_processes,
            depth=depth,
            gap_options=gap_options,
            max_scenarios=max_scenarios,
        )
        for algorithm in algorithms
    }
