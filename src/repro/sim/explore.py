"""Exhaustive scenario exploration: a bounded model checker.

Random campaigns (the thesis' method, and ours) sample the fault space;
for *small* systems the space can be enumerated instead.  The explorer
drives an algorithm through **every** fault schedule up to a bound:

* every feasible connectivity change at each step (every way to split
  every component — deduplicated up to moved/remaining symmetry — and
  every pair of components to merge);
* every mid-round cut: every subset of the affected processes may be
  the "late" set that loses the round's messages;
* every gap choice: each configured number of quiet rounds before the
  change lands, so every protocol round of every algorithm gets
  interrupted somewhere in the enumeration.

Each complete scenario runs to quiescence under the full invariant
checker, so a single call proves (for that bound) that no reachable
interleaving violates safety — the exhaustive complement to the thesis'
1.3-million-random-changes trial.

Two engines implement the same enumeration:

* :func:`explore` — **prefix-sharing DFS with driver state forking**.
  A shared scenario prefix executes once; each branch restores a
  :class:`~repro.sim.driver.DriverSnapshot` instead of replaying from
  the initial state.  Canonical state hashing
  (:mod:`repro.sim.statehash`) deduplicates converged states, silent
  change rounds collapse the whole cut enumeration at once, optional
  process-relabeling symmetry reduction collapses isomorphic schedules
  (three-process bounds only — dynamic linear voting's exact-half
  tie-break makes relabeled schedules inequivalent in general, see
  :func:`explore`), and the top-level frontier can shard across worker
  processes.  The
  result (scenarios, availability, violations, truncation) is
  **identical** to the replay engine's on the same bound — the
  differential test suite enforces this.
* :func:`explore_replay` — the original replay-per-scenario engine,
  kept verbatim as the reference implementation the fork engine is
  verified against.

Scenario counts grow as roughly ``(changes × cuts × gaps)^depth``;
prefix sharing plus deduplication is what makes ``n_processes=4,
depth=2`` (hundreds of thousands of replayed rounds) routine.  See
``docs/model-checking.md`` for the soundness argument.
"""

from __future__ import annotations

import itertools
import multiprocessing
from dataclasses import asdict, dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import InvariantViolation
from repro.net.changes import (
    ConnectivityChange,
    MergeChange,
    PartitionChange,
    affected_processes,
    apply_change,
)
from repro.net.topology import Topology
from repro.obs import EventBus, Subscriber
from repro.sim.driver import DriverLoop, DriverSnapshot
from repro.sim.invariants import InvariantChecker
from repro.sim.rng import derive_rng
from repro.sim.statehash import (
    canonical_first_step,
    state_fingerprint,
)
from repro.types import Members


def enumerate_changes(topology: Topology) -> Iterator[ConnectivityChange]:
    """Every feasible partition and merge of a topology, deterministically.

    Partitions are deduplicated up to the moved/remaining symmetry (the
    split {a}|{b,c} equals {b,c}|{a}); the canonical representative
    moves the set *not* containing the component's smallest member.
    """
    for component in topology.components:
        if len(component) < 2:
            continue
        ordered = sorted(component)
        anchor = ordered[0]
        rest = ordered[1:]
        # Every non-empty subset of `rest` is a valid moved-set that
        # does not contain the anchor: exactly one per split.
        for size in range(1, len(rest) + 1):
            for moved in itertools.combinations(rest, size):
                yield PartitionChange(
                    component=component, moved=frozenset(moved)
                )
    live = topology.live_components()
    for first, second in itertools.combinations(live, 2):
        yield MergeChange(first=first, second=second)


def enumerate_cuts(affected: Members) -> Iterator[FrozenSet[int]]:
    """Every possible late-set of a mid-round cut."""
    ordered = sorted(affected)
    for size in range(len(ordered) + 1):
        for subset in itertools.combinations(ordered, size):
            yield frozenset(subset)


@dataclass
class ExploreStats:
    """How the fork-based explorer spent its work (all counts exact).

    ``first_steps`` is the size of the top-level frontier before
    symmetry reduction, ``orbits`` after it (equal when symmetry is
    off).  ``nodes`` counts distinct subtree evaluations (states
    visited), ``leaves`` complete scenarios actually settled;
    ``dedup_hits`` subtrees answered from the canonical-state memo and
    ``cut_collapsed`` subtrees skipped because a silent change round
    makes every late-set equivalent.  ``rounds`` is the total driver
    rounds executed — the direct measure of work the replay engine
    would have multiplied.
    """

    first_steps: int = 0
    orbits: int = 0
    nodes: int = 0
    leaves: int = 0
    dedup_hits: int = 0
    dedup_entries: int = 0
    cut_collapsed: int = 0
    snapshots: int = 0
    restores: int = 0
    rounds: int = 0
    max_fork_depth: int = 0
    workers: int = 1

    def merge(self, other: "ExploreStats") -> None:
        """Fold another shard's counters into this one (sums and maxima)."""
        self.first_steps = max(self.first_steps, other.first_steps)
        self.orbits = max(self.orbits, other.orbits)
        self.nodes += other.nodes
        self.leaves += other.leaves
        self.dedup_hits += other.dedup_hits
        self.dedup_entries += other.dedup_entries
        self.cut_collapsed += other.cut_collapsed
        self.snapshots += other.snapshots
        self.restores += other.restores
        self.rounds += other.rounds
        self.max_fork_depth = max(self.max_fork_depth, other.max_fork_depth)

    def to_dict(self) -> Dict[str, int]:
        """JSON-compatible form (the CLI's ``--stats-out`` artifact)."""
        return asdict(self)


@dataclass(frozen=True)
class Counterexample:
    """One violating schedule, captured live with its causal explanation.

    ``plan_steps`` is the realized (gap, change, late) schedule from the
    pristine initial state up to and including the violating step —
    directly replayable through :meth:`DriverLoop.execute_schedule` or
    convertible to a ``repro.check`` plan via ``plan_from_recorded``.
    ``blame`` is the non-primary-round breakdown of that replay as
    reconstructed by :mod:`repro.obs.causal` (nonzero categories only,
    sorted), so every counterexample answers not just *that* the bound
    was violated but what the availability picture looked like on the
    way there.
    """

    algorithm: str
    n_processes: int
    steps: Tuple[str, ...]
    violation: str
    plan_steps: Tuple[Tuple[int, ConnectivityChange, FrozenSet[int]], ...]
    blame: Tuple[Tuple[str, int], ...]

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible form (the CLI's ``--stats-out`` artifact)."""
        return {
            "algorithm": self.algorithm,
            "n_processes": self.n_processes,
            "steps": list(self.steps),
            "violation": self.violation,
            "blame": {category: count for category, count in self.blame},
        }


def _blame_for_steps(
    algorithm: str,
    n_processes: int,
    steps: Sequence[Tuple[int, ConnectivityChange, FrozenSet[int]]],
) -> Tuple[Tuple[str, int], ...]:
    """Replay a recorded schedule under causal observation.

    The replay raises the same violation the exploration hit (the
    schedule is deterministic); the span builder's state up to that
    point is exactly the explanation we want.
    """
    from repro.errors import SimulationError
    from repro.obs.causal import CausalObserver

    causal = CausalObserver()
    driver = DriverLoop(
        algorithm=algorithm,
        n_processes=n_processes,
        fault_rng=derive_rng(0, "explore", "blame", algorithm),
        observers=[InvariantChecker(), causal],
    )
    try:
        driver.execute_schedule(steps)
    except (InvariantViolation, SimulationError):
        pass
    totals = causal.finalize().blame_totals()
    return tuple(
        (category, count)
        for category, count in sorted(totals.items())
        if count
    )


@dataclass
class ExplorationResult:
    """What the exhaustive exploration covered and found."""

    algorithm: str
    n_processes: int
    depth: int
    gap_options: Tuple[int, ...]
    scenarios: int = 0
    available: int = 0
    violations: List[str] = field(default_factory=list)
    truncated: bool = False
    #: Work accounting of the fork-based engine (None for the replay
    #: reference engine, which has nothing interesting to report).
    stats: Optional[ExploreStats] = None
    #: Structured counterexamples with causal blame, one per *live*
    #: violation site (abstractly-propagated twins share their
    #: originating entry; the replay engine does not fill this).
    counterexamples: List[Counterexample] = field(default_factory=list)

    @property
    def availability_percent(self) -> float:
        if not self.scenarios:
            return float("nan")
        return 100.0 * self.available / self.scenarios

    @property
    def passed(self) -> bool:
        return not self.violations and self.scenarios > 0


def _describe_step(
    gap: int, change: ConnectivityChange, late: FrozenSet[int]
) -> str:
    """One step exactly as violation reports have always rendered it."""
    return f"gap={gap} {change.describe()} late={sorted(late)}"


def explore_replay(
    algorithm: str,
    n_processes: int = 3,
    depth: int = 2,
    gap_options: Sequence[int] = (0, 1, 2),
    max_scenarios: Optional[int] = None,
    stop_on_violation: bool = True,
) -> ExplorationResult:
    """The reference engine: replay every complete scenario from scratch.

    Runs depth-first: a scenario is a sequence of ``depth`` steps, each
    a (quiet gap, connectivity change, late-set) triple, followed by
    quiescence.  Each complete scenario replays from the initial state
    through a fresh driver — wasteful (the same prefix re-executes once
    per extension) but straightforwardly correct, which is exactly why
    it is kept: the fork-based :func:`explore` is differentially tested
    against it on every registered algorithm.
    """
    if depth < 1:
        raise ValueError("depth must be at least 1")
    result = ExplorationResult(
        algorithm=algorithm,
        n_processes=n_processes,
        depth=depth,
        gap_options=tuple(gap_options),
    )

    def run_scenario(steps: List[Tuple[int, ConnectivityChange, FrozenSet[int]]]) -> bool:
        """Replay one complete scenario; returns its availability."""
        driver = DriverLoop(
            algorithm=algorithm,
            n_processes=n_processes,
            # Never consumed: every cut is injected explicitly, but the
            # stream is labelled so any future sampled decision stays
            # inside the reproducibility discipline.
            fault_rng=derive_rng(0, "explore", algorithm),
            observers=[InvariantChecker()],
        )
        driver.execute_schedule(steps)
        return driver.primary_exists()

    def scenario_prefixes(
        steps: List[Tuple[int, ConnectivityChange, FrozenSet[int]]],
        topology: Topology,
        remaining: int,
    ) -> Iterator[List[Tuple[int, ConnectivityChange, FrozenSet[int]]]]:
        """Yield every complete scenario extending ``steps``."""
        if remaining == 0:
            yield list(steps)
            return
        for gap in gap_options:
            for change in enumerate_changes(topology):
                affected = affected_processes(change, topology)
                next_topology = apply_change(topology, change)
                for late in enumerate_cuts(affected):
                    steps.append((gap, change, late))
                    yield from scenario_prefixes(
                        steps, next_topology, remaining - 1
                    )
                    steps.pop()

    initial = Topology.fully_connected(n_processes)
    for scenario in scenario_prefixes([], initial, depth):
        if max_scenarios is not None and result.scenarios >= max_scenarios:
            result.truncated = True
            break
        result.scenarios += 1
        try:
            if run_scenario(scenario):
                result.available += 1
        except InvariantViolation as violation:
            description = "; ".join(
                _describe_step(gap, change, late)
                for gap, change, late in scenario
            )
            result.violations.append(f"{description}: {violation}")
            if stop_on_violation:
                break
    return result


class _RoundCounter(Subscriber):
    """Counts driver rounds for :class:`ExploreStats` and the bench."""

    def __init__(self) -> None:
        self.rounds = 0

    def on_round(self, driver) -> None:
        self.rounds += 1


class _Abort(Exception):
    """Internal: unwind the DFS on truncation or stop-on-violation."""


#: Ceiling on causal replays per exploration: each counterexample costs
#: one schedule replay, and a badly broken algorithm can violate on
#: thousands of schedules — the first few explain the bug.
MAX_COUNTEREXAMPLES = 25


class _Explorer:
    """One fork-based exploration: a DFS over driver snapshots.

    Owns a single driver whose state is snapshotted at every branch
    point and restored per branch; complete scenarios settle at the
    leaves.  Mirrors the replay engine's enumeration order exactly —
    ``for gap → for change → for late``, depth-first — so scenario
    counts, availability, violation lists and truncation semantics
    coincide with :func:`explore_replay` on every bound.
    """

    def __init__(
        self,
        algorithm: str,
        n_processes: int,
        depth: int,
        gap_options: Tuple[int, ...],
        max_scenarios: Optional[int],
        stop_on_violation: bool,
        symmetry: bool,
        observers: Sequence[Subscriber] = (),
        progress_every: int = 2000,
    ) -> None:
        self.algorithm = algorithm
        self.n_processes = n_processes
        self.depth = depth
        self.gap_options = gap_options
        self.max_scenarios = max_scenarios
        self.stop_on_violation = stop_on_violation
        self.symmetry = symmetry
        self.progress_every = progress_every
        self.result = ExplorationResult(
            algorithm=algorithm,
            n_processes=n_processes,
            depth=depth,
            gap_options=gap_options,
            stats=ExploreStats(),
        )
        self.stats = self.result.stats
        #: Structured violation records: (per-step descriptions, text).
        #: ``result.violations`` holds the same entries rendered.
        self.records: List[Tuple[Tuple[str, ...], str]] = []
        self._steps_desc: List[str] = []
        #: Exact-state memo: (remaining, fingerprint) -> per-unit
        #: (scenarios, available, violation suffixes).  Disabled when
        #: ``max_scenarios`` is set — exact truncation semantics need
        #: every scenario enumerated individually.
        self._memo: Optional[Dict[tuple, tuple]] = (
            {} if max_scenarios is None else None
        )
        self._mult = 1
        self._last_progress = 0
        self._counter = _RoundCounter()
        bus = EventBus(list(observers))
        self._start_hooks = bus.hooks("on_explore_start")
        self._progress_hooks = bus.hooks("on_explore_progress")
        self._end_hooks = bus.hooks("on_explore_end")
        self.driver = DriverLoop(
            algorithm=algorithm,
            n_processes=n_processes,
            # Never consumed — all cuts are explicit (see explore_replay).
            fault_rng=derive_rng(0, "explore", algorithm),
            observers=[InvariantChecker(), self._counter],
        )

    # ------------------------------------------------------------------
    # Entry points.
    # ------------------------------------------------------------------

    def run(self) -> None:
        """Serial exploration of the whole bound (no symmetry/sharding)."""
        for hook in self._start_hooks:
            hook(self.result)
        try:
            self._subtree(self.depth)
        except _Abort:
            pass
        self._finish()

    def root_entries(self) -> List[Tuple[int, ConnectivityChange, FrozenSet[int], int]]:
        """The top-level frontier: (gap, change, late, multiplicity).

        In enumeration order.  With symmetry on (n=3 only — see
        :func:`explore`), isomorphic first steps (equal
        :func:`~repro.sim.statehash.canonical_first_step` keys)
        collapse onto their first representative, which carries the
        orbit size as its multiplicity.
        """
        topology = Topology.fully_connected(self.n_processes)
        flat: List[Tuple[int, ConnectivityChange, FrozenSet[int]]] = []
        for gap in self.gap_options:
            for change in enumerate_changes(topology):
                affected = affected_processes(change, topology)
                for late in enumerate_cuts(affected):
                    flat.append((gap, change, late))
        self.stats.first_steps = len(flat)
        if not self.symmetry:
            self.stats.orbits = len(flat)
            return [(gap, change, late, 1) for gap, change, late in flat]
        counts: Dict[tuple, int] = {}
        representatives: List[
            Tuple[tuple, Tuple[int, ConnectivityChange, FrozenSet[int]]]
        ] = []
        for step in flat:
            key = canonical_first_step(self.n_processes, *step)
            if key not in counts:
                counts[key] = 0
                representatives.append((key, step))
            counts[key] += 1
        self.stats.orbits = len(representatives)
        return [
            (step[0], step[1], step[2], counts[key])
            for key, step in representatives
        ]

    def run_entries(
        self,
        entries: Sequence[Tuple[int, ConnectivityChange, FrozenSet[int], int]],
    ) -> None:
        """Explore an explicit slice of the top-level frontier.

        Used by the symmetry-reduced and sharded paths; the serial
        non-symmetric path takes :meth:`run` instead (same semantics,
        plus silent-round cut collapsing at the root).
        """
        for hook in self._start_hooks:
            hook(self.result)
        driver = self.driver
        base = driver.snapshot()
        self.stats.snapshots += 1
        try:
            gap_snaps, gap_violation = self._gap_states(base)
            for gap, change, late, mult in entries:
                self._mult = mult
                self._steps_desc.append(_describe_step(gap, change, late))
                try:
                    if gap_violation is not None and gap >= gap_violation[0]:
                        next_topology = apply_change(base.topology, change)
                        self._violating_suffixes(
                            next_topology, self.depth - 1, gap_violation[1]
                        )
                        continue
                    snap = gap_snaps[gap]
                    driver.restore(snap)
                    self.stats.restores += 1
                    try:
                        driver.run_scripted_round(change, late)
                    except InvariantViolation as violation:
                        self._capture_counterexample(str(violation))
                        next_topology = apply_change(snap.topology, change)
                        self._violating_suffixes(
                            next_topology, self.depth - 1, str(violation)
                        )
                    else:
                        self._subtree(self.depth - 1)
                finally:
                    self._steps_desc.pop()
        except _Abort:
            pass
        self._finish()

    def _finish(self) -> None:
        self.stats.rounds = self._counter.rounds
        for hook in self._end_hooks:
            hook(self.result)

    # ------------------------------------------------------------------
    # The DFS.
    # ------------------------------------------------------------------

    def _fingerprint(self) -> tuple:
        # Always the exact fingerprint: the memo may only merge states
        # that are *identical*, never merely isomorphic — the exact-half
        # tie-break of dynamic linear voting (repro.core.quorum) gives
        # process ids real behavioural meaning, so relabeling-isomorphic
        # states can have different futures.
        return state_fingerprint(self.driver)

    def _subtree(self, remaining: int) -> None:
        """Explore every scenario suffix from the driver's current state."""
        depth_now = len(self._steps_desc)
        if depth_now > self.stats.max_fork_depth:
            self.stats.max_fork_depth = depth_now
        key = None
        if self._memo is not None:
            key = (remaining, self._fingerprint())
            entry = self._memo.get(key)
            if entry is not None:
                self.stats.dedup_hits += 1
                per_scenarios, per_available, suffixes = entry
                self.result.scenarios += per_scenarios * self._mult
                self.result.available += per_available * self._mult
                prefix = tuple(self._steps_desc)
                for suffix, text in suffixes:
                    self._add_record(prefix + suffix, text)
                self._progress()
                return
        self.stats.nodes += 1
        mark_s = self.result.scenarios
        mark_a = self.result.available
        mark_r = len(self.records)
        if remaining == 0:
            self._leaf()
        else:
            self._enumerate(remaining)
        if self._memo is not None:
            suffixes = tuple(
                (descs[depth_now:], text)
                for descs, text in self.records[mark_r:]
            )
            self._memo[key] = (
                (self.result.scenarios - mark_s) // self._mult,
                (self.result.available - mark_a) // self._mult,
                suffixes,
            )
            self.stats.dedup_entries += 1

    def _leaf(self) -> None:
        """A complete scenario: settle to quiescence and classify it."""
        if (
            self.max_scenarios is not None
            and self.result.scenarios >= self.max_scenarios
        ):
            self.result.truncated = True
            raise _Abort
        self.result.scenarios += self._mult
        self.stats.leaves += 1
        try:
            self.driver.run_until_quiescent()
            self.driver._publish_quiescence()
            if self.driver.primary_exists():
                self.result.available += self._mult
        except InvariantViolation as violation:
            self._capture_counterexample(str(violation))
            self._add_record(tuple(self._steps_desc), str(violation))
        self._progress()

    def _enumerate(self, remaining: int) -> None:
        """One DFS level: for gap → for change → for late, forking."""
        driver = self.driver
        base = driver.snapshot()
        self.stats.snapshots += 1
        gap_snaps, gap_violation = self._gap_states(base)
        for gap in self.gap_options:
            if gap_violation is not None and gap >= gap_violation[0]:
                self._violating_gap(base.topology, gap, gap_violation[1], remaining)
                continue
            snap = gap_snaps[gap]
            topology = snap.topology
            for change in enumerate_changes(topology):
                affected = affected_processes(change, topology)
                next_topology = apply_change(topology, change)
                #: Once a silent change round proves every late-set
                #: equivalent, the remaining cuts reuse this delta.
                collapsed: Optional[Tuple[int, int]] = None
                first_cut = True
                for late in enumerate_cuts(affected):
                    if collapsed is not None:
                        self.result.scenarios += collapsed[0]
                        self.result.available += collapsed[1]
                        self.stats.cut_collapsed += 1
                        self._progress()
                        continue
                    self._steps_desc.append(_describe_step(gap, change, late))
                    try:
                        driver.restore(snap)
                        self.stats.restores += 1
                        mark_s = self.result.scenarios
                        mark_a = self.result.available
                        mark_r = len(self.records)
                        try:
                            sent = driver.run_scripted_round(change, late)
                        except InvariantViolation as violation:
                            self._capture_counterexample(str(violation))
                            self._violating_suffixes(
                                next_topology, remaining - 1, str(violation)
                            )
                        else:
                            self._subtree(remaining - 1)
                            # A silent round means no in-flight message
                            # existed for the cut to destroy: every
                            # late-set reaches this exact state, so the
                            # whole cut loop shares one subtree.  (Only
                            # when exact per-scenario truncation is not
                            # in play, and never across violations —
                            # their reports embed the late-set.)
                            if (
                                first_cut
                                and not sent
                                and self.max_scenarios is None
                                and len(self.records) == mark_r
                            ):
                                collapsed = (
                                    self.result.scenarios - mark_s,
                                    self.result.available - mark_a,
                                )
                    finally:
                        self._steps_desc.pop()
                    first_cut = False

    def _gap_states(
        self, base: DriverSnapshot
    ) -> Tuple[Dict[int, DriverSnapshot], Optional[Tuple[int, str]]]:
        """Snapshot the state after each configured quiet gap.

        Quiet rounds run once, incrementally in ascending gap order —
        this is the prefix sharing at the gap level.  If quiet round
        ``q`` raises an invariant violation, every gap ``>= q``
        deterministically replays into the same violation; the second
        return value carries ``(q, text)`` and those gaps get no
        snapshot.
        """
        snaps: Dict[int, DriverSnapshot] = {}
        violation: Optional[Tuple[int, str]] = None
        executed = 0
        for gap in sorted(set(self.gap_options)):
            if violation is None:
                while executed < gap:
                    try:
                        self.driver.run_round(None)
                    except InvariantViolation as raised:
                        violation = (executed + 1, str(raised))
                        self._capture_counterexample(str(raised))
                        break
                    executed += 1
            if violation is None or gap < violation[0]:
                if gap == 0:
                    snaps[gap] = base
                else:
                    snaps[gap] = self.driver.snapshot()
                    self.stats.snapshots += 1
        return snaps, violation

    # ------------------------------------------------------------------
    # Violation propagation along shared prefixes.
    # ------------------------------------------------------------------

    def _violating_gap(
        self, topology: Topology, gap: int, text: str, remaining: int
    ) -> None:
        """All steps under a gap whose quiet rounds already violated."""
        for change in enumerate_changes(topology):
            affected = affected_processes(change, topology)
            next_topology = apply_change(topology, change)
            for late in enumerate_cuts(affected):
                self._steps_desc.append(_describe_step(gap, change, late))
                try:
                    self._violating_suffixes(next_topology, remaining - 1, text)
                finally:
                    self._steps_desc.pop()

    def _violating_suffixes(
        self, topology: Topology, remaining: int, text: str
    ) -> None:
        """Record every scenario extending an already-violated prefix.

        The prefix rounds are deterministic, so each extension's replay
        (which is what the reference engine runs) raises the identical
        violation before its suffix steps ever execute; the suffixes
        are therefore enumerated abstractly — topology only, no
        simulation — in exactly the reference enumeration order.
        """
        for suffix in self._abstract_suffixes(topology, remaining):
            if (
                self.max_scenarios is not None
                and self.result.scenarios >= self.max_scenarios
            ):
                self.result.truncated = True
                raise _Abort
            self.result.scenarios += self._mult
            self._add_record(tuple(self._steps_desc) + suffix, text)
            self._progress()

    def _abstract_suffixes(
        self, topology: Topology, remaining: int
    ) -> Iterator[Tuple[str, ...]]:
        if remaining == 0:
            yield ()
            return
        for gap in self.gap_options:
            for change in enumerate_changes(topology):
                affected = affected_processes(change, topology)
                next_topology = apply_change(topology, change)
                for late in enumerate_cuts(affected):
                    head = _describe_step(gap, change, late)
                    for rest in self._abstract_suffixes(
                        next_topology, remaining - 1
                    ):
                        yield (head,) + rest

    # ------------------------------------------------------------------
    # Bookkeeping.
    # ------------------------------------------------------------------

    def _add_record(self, descs: Tuple[str, ...], text: str) -> None:
        self.records.append((descs, text))
        self.result.violations.append("; ".join(descs) + f": {text}")
        if self.stop_on_violation:
            raise _Abort

    def _capture_counterexample(self, text: str) -> None:
        """Snapshot the live violating schedule and attribute its blame.

        Called at the moment a violation is raised by the *live* driver
        (leaf settling, a scripted change round, or a quiet gap round),
        while ``recorded_steps`` still holds the realized schedule from
        the pristine initial state.  Abstractly-propagated twins of the
        same violation reuse this entry — their replays fail at the
        identical prefix, so the explanation is the same.
        """
        if len(self.result.counterexamples) >= MAX_COUNTEREXAMPLES:
            return
        plan_steps = tuple(
            (gap, change, frozenset(late))
            for gap, change, late in self.driver.recorded_steps()
        )
        self.result.counterexamples.append(
            Counterexample(
                algorithm=self.algorithm,
                n_processes=self.n_processes,
                steps=tuple(self._steps_desc),
                violation=text,
                plan_steps=plan_steps,
                blame=_blame_for_steps(
                    self.algorithm, self.n_processes, plan_steps
                ),
            )
        )

    def _progress(self) -> None:
        if not self._progress_hooks:
            return
        if self.result.scenarios - self._last_progress < self.progress_every:
            return
        self._last_progress = self.result.scenarios
        self.stats.rounds = self._counter.rounds
        for hook in self._progress_hooks:
            hook(self.result, self.stats)


def _shard_ranges(total: int, shards: int) -> List[Tuple[int, int]]:
    """Contiguous [start, end) frontier slices, sizes differing by ≤ 1."""
    shards = max(1, min(shards, total))
    base, extra = divmod(total, shards)
    ranges: List[Tuple[int, int]] = []
    offset = 0
    for index in range(shards):
        size = base + (1 if index < extra else 0)
        ranges.append((offset, offset + size))
        offset += size
    return ranges


def _explore_shard(
    payload: Tuple[int, str, int, int, Tuple[int, ...], bool, bool, int, int],
) -> Tuple[
    int,
    Tuple[
        int,
        int,
        List[Tuple[Tuple[str, ...], str]],
        ExploreStats,
        List[Counterexample],
    ],
]:
    """Process-pool worker: explore one contiguous frontier slice.

    The frontier is recomputed in the worker (it is a pure function of
    the bound), so only the slice indices cross the process boundary.
    """
    (
        index,
        algorithm,
        n_processes,
        depth,
        gap_options,
        stop_on_violation,
        symmetry,
        start,
        end,
    ) = payload
    explorer = _Explorer(
        algorithm=algorithm,
        n_processes=n_processes,
        depth=depth,
        gap_options=gap_options,
        max_scenarios=None,
        stop_on_violation=stop_on_violation,
        symmetry=symmetry,
    )
    entries = explorer.root_entries()
    explorer.run_entries(entries[start:end])
    return index, (
        explorer.result.scenarios,
        explorer.result.available,
        explorer.records,
        explorer.stats,
        explorer.result.counterexamples,
    )


def explore(
    algorithm: str,
    n_processes: int = 3,
    depth: int = 2,
    gap_options: Sequence[int] = (0, 1, 2),
    max_scenarios: Optional[int] = None,
    stop_on_violation: bool = True,
    symmetry: bool = False,
    workers: int = 1,
    observers: Sequence[Subscriber] = (),
    progress_every: int = 2000,
) -> ExplorationResult:
    """Exhaustively check one algorithm over all bounded fault schedules.

    The fork-based engine: shared scenario prefixes execute once (via
    :meth:`DriverLoop.snapshot` / :meth:`~DriverLoop.restore`),
    converged states are deduplicated by canonical hashing, and silent
    change rounds collapse their whole cut enumeration.  Scenario
    counts, availability, the violation list and truncation semantics
    are identical to :func:`explore_replay` on the same bound.

    ``symmetry=True`` additionally collapses first steps that are
    process-relabelings of each other, multiplying each representative
    subtree by its orbit size: scenario/availability counts stay exact,
    while the violation list keeps one representative per orbit (the
    relabeled twins add no information).  It is accepted only for
    ``n_processes=3``: dynamic linear voting breaks exact-half quorum
    ties in favour of the lexically smallest member
    (:func:`repro.core.quorum.is_subquorum`), so relabeled schedules
    are *not* behaviourally equivalent in general — orbit counting is
    differentially verified exact at n=3 (through depth 3), while at
    n=4 depth=2 the representative (which always contains process 0)
    wins more ties and overcounts availability.  ``workers > 1`` shards the
    top-level frontier across a process pool with a deterministic
    merge.  ``observers`` receive ``on_explore_start`` /
    ``on_explore_progress`` / ``on_explore_end`` events; progress fires
    about every ``progress_every`` scenarios, and only in serial mode —
    worker processes cannot share a subscriber.

    Restrictions: ``max_scenarios`` (exact truncation) requires the
    plain enumeration, so it forces serial execution and rejects
    ``symmetry=True``.  With ``stop_on_violation`` and ``symmetry``
    together, a violating bound stops at the first representative, so
    counts cover only the orbits explored up to that point.
    """
    if depth < 1:
        raise ValueError("depth must be at least 1")
    if workers < 1:
        raise ValueError("workers must be at least 1")
    if max_scenarios is not None and symmetry:
        raise ValueError(
            "max_scenarios needs exact per-scenario truncation, which "
            "symmetry reduction cannot provide; use symmetry=False"
        )
    if symmetry and n_processes != 3:
        raise ValueError(
            "symmetry reduction is only sound for n_processes=3: dynamic "
            "linear voting breaks exact-half quorum ties in favour of the "
            "lexically smallest member (repro.core.quorum.is_subquorum), "
            "so relabeled schedules are not behaviourally equivalent in "
            "general.  Orbit counting is differentially verified exact at "
            "n=3 through depth 3; at n=4 depth=2 it overcounts "
            "availability (ykd over gaps 0-1: 12992 vs the true 12352).  "
            "Use symmetry=False for other system sizes."
        )
    gap_options = tuple(gap_options)
    if max_scenarios is not None:
        workers = 1

    if workers == 1:
        explorer = _Explorer(
            algorithm=algorithm,
            n_processes=n_processes,
            depth=depth,
            gap_options=gap_options,
            max_scenarios=max_scenarios,
            stop_on_violation=stop_on_violation,
            symmetry=symmetry,
            observers=observers,
            progress_every=progress_every,
        )
        if symmetry:
            explorer.run_entries(explorer.root_entries())
        else:
            explorer.root_entries()  # frontier accounting only
            explorer.run()
        explorer.stats.workers = 1
        return explorer.result

    # Sharded: split the top-level frontier into contiguous slices and
    # merge in slice order — concatenating the slices reproduces the
    # serial enumeration order exactly.
    planner = _Explorer(
        algorithm=algorithm,
        n_processes=n_processes,
        depth=depth,
        gap_options=gap_options,
        max_scenarios=None,
        stop_on_violation=stop_on_violation,
        symmetry=symmetry,
        observers=observers,
    )
    for hook in planner._start_hooks:
        hook(planner.result)
    entries = planner.root_entries()
    ranges = _shard_ranges(len(entries), workers)
    payloads = [
        (
            index,
            algorithm,
            n_processes,
            depth,
            gap_options,
            stop_on_violation,
            symmetry,
            start,
            end,
        )
        for index, (start, end) in enumerate(ranges)
    ]
    shards: Dict[int, tuple] = {}
    context = multiprocessing.get_context("spawn")
    with context.Pool(processes=len(payloads)) as pool:
        for index, shard in pool.imap_unordered(_explore_shard, payloads):
            shards[index] = shard
    result = planner.result
    stats = planner.stats
    for index in range(len(payloads)):
        scenarios, available, records, shard_stats, examples = shards[index]
        result.scenarios += scenarios
        result.available += available
        stats.merge(shard_stats)
        room = MAX_COUNTEREXAMPLES - len(result.counterexamples)
        result.counterexamples.extend(examples[:room])
        for descs, text in records:
            result.violations.append("; ".join(descs) + f": {text}")
        if records and stop_on_violation:
            # The serial run would have stopped inside this slice:
            # everything up to here matches it exactly; later slices
            # would never have run.
            break
    stats.rounds += planner._counter.rounds
    stats.workers = len(payloads)
    for hook in planner._end_hooks:
        hook(result)
    return result


def explore_all(
    algorithms: Sequence[str],
    n_processes: int = 3,
    depth: int = 2,
    gap_options: Sequence[int] = (0, 1, 2),
    max_scenarios: Optional[int] = None,
    symmetry: bool = False,
    workers: int = 1,
) -> Dict[str, ExplorationResult]:
    """Run the exhaustive exploration for several algorithms."""
    return {
        algorithm: explore(
            algorithm,
            n_processes=n_processes,
            depth=depth,
            gap_options=gap_options,
            max_scenarios=max_scenarios,
            symmetry=symmetry,
            workers=workers,
        )
        for algorithm in algorithms
    }
