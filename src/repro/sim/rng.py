"""Deterministic, labelled random streams.

Every stochastic decision in a simulation comes from a stream derived
from a master seed plus a path of labels (case, run index, purpose).
Two properties follow:

* whole campaigns are reproducible from one integer, and
* streams that must coincide across algorithms (the fault plan: change
  timing, change content, mid-round cuts) simply omit the algorithm
  name from their label path — realizing the thesis' "the same random
  sequence was used to test each of the algorithms".
"""

from __future__ import annotations

import hashlib
import random
from typing import Union

Label = Union[str, int]


def derive_seed(master_seed: int, *labels: Label) -> int:
    """Collision-resistant seed derivation from a master seed and labels."""
    hasher = hashlib.sha256()
    hasher.update(str(master_seed).encode("utf-8"))
    for label in labels:
        hasher.update(b"\x1f")
        hasher.update(str(label).encode("utf-8"))
    return int.from_bytes(hasher.digest()[:8], "big")


def derive_rng(master_seed: int, *labels: Label) -> random.Random:
    """A fresh ``random.Random`` for the given label path."""
    return random.Random(derive_seed(master_seed, *labels))
