"""Parallel campaign execution across CPU cores.

The thesis ran its CPU-intensive tests "on multiple machines and
submitted results over the Internet to a central machine for collection
and analysis" (§2.2).  The single-machine equivalent is a process pool:
cases are independent (each carries its own labelled RNG streams), so
they parallelize embarrassingly and deterministically — results are
identical to a serial run of the same configs, whatever the worker
count or scheduling order.

Used by the CLI's ``--workers`` option; safe to use directly::

    from repro.sim.parallel import run_cases_parallel
    results = run_cases_parallel(configs, workers=8)
"""

from __future__ import annotations

import multiprocessing
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim.campaign import CaseConfig, CaseResult, run_case


def _run_indexed(indexed_config: Tuple[int, CaseConfig]) -> Tuple[int, CaseResult]:
    index, config = indexed_config
    return index, run_case(config)


def run_cases_parallel(
    configs: Sequence[CaseConfig],
    workers: Optional[int] = None,
) -> List[CaseResult]:
    """Run many cases across a process pool; order of results matches
    the order of ``configs``.

    ``workers=None`` uses all CPUs; ``workers<=1`` (or a single config)
    falls back to in-process execution, which keeps debugging and
    tracebacks simple.
    """
    configs = list(configs)
    if workers is None:
        workers = multiprocessing.cpu_count()
    if workers <= 1 or len(configs) <= 1:
        return [run_case(config) for config in configs]
    results: Dict[int, CaseResult] = {}
    # spawn (not fork) keeps worker state clean and matches all
    # platforms' defaults going forward.
    context = multiprocessing.get_context("spawn")
    with context.Pool(processes=min(workers, len(configs))) as pool:
        for index, result in pool.imap_unordered(
            _run_indexed, list(enumerate(configs))
        ):
            results[index] = result
    return [results[index] for index in range(len(configs))]
