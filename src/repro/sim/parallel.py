"""Parallel campaign execution across CPU cores.

The thesis ran its CPU-intensive tests "on multiple machines and
submitted results over the Internet to a central machine for collection
and analysis" (§2.2).  The single-machine equivalent is a process pool:
cases are independent (each carries its own labelled RNG streams), so
they parallelize embarrassingly and deterministically — results are
identical to a serial run of the same configs, whatever the worker
count or scheduling order.

Two granularities are available:

* **case-level** (:func:`run_cases_parallel`) — whole cases fan out
  across the pool; used by the CLI's ``--workers`` option.
* **run-level** (:func:`run_case_sharded`) — one fresh-start case is
  split into shards over disjoint run-index ranges.  A fresh run's
  fault RNG is labelled by (seed, case, run index), never by which
  shard executed it, so each shard runs exactly the runs the unsharded
  case would, and :func:`merge_case_results` reassembles the exact
  statistics in deterministic shard order (outcomes concatenate in run
  order, counters sum, maxima take the max, the mean message size
  merges weighted by broadcast count).  Cascading cases consume one
  sequential RNG stream and fall back to a single in-process run.

Safe to use directly::

    from repro.sim.parallel import run_case_sharded, run_cases_parallel
    results = run_cases_parallel(configs, workers=8)
    result = run_case_sharded(config, shards=8, workers=8)
"""

from __future__ import annotations

import multiprocessing
from collections import Counter
from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs import MetricsRegistry, merge_registries
from repro.sim.campaign import MODE_FRESH, CaseConfig, CaseResult, run_case


def _run_indexed(
    indexed_config: Tuple[int, CaseConfig, str]
) -> Tuple[int, CaseResult]:
    index, config, kernel = indexed_config
    return index, run_case(config, kernel=kernel)


def run_cases_parallel(
    configs: Sequence[CaseConfig],
    workers: Optional[int] = None,
    kernel: str = "scalar",
) -> List[CaseResult]:
    """Run many cases across a process pool; order of results matches
    the order of ``configs``.

    ``workers=None`` uses all CPUs; ``workers<=1`` (or a single config)
    falls back to in-process execution, which keeps debugging and
    tracebacks simple.  ``kernel`` is forwarded to every
    :func:`run_case` (the batched backend falls back to scalar per
    case when a config is outside its surface).
    """
    configs = list(configs)
    if workers is None:
        workers = multiprocessing.cpu_count()
    if workers <= 1 or len(configs) <= 1:
        return [run_case(config, kernel=kernel) for config in configs]
    results: Dict[int, CaseResult] = {}
    # spawn (not fork) keeps worker state clean and matches all
    # platforms' defaults going forward.
    context = multiprocessing.get_context("spawn")
    with context.Pool(processes=min(workers, len(configs))) as pool:
        for index, result in pool.imap_unordered(
            _run_indexed,
            [(i, config, kernel) for i, config in enumerate(configs)],
        ):
            results[index] = result
    return [results[index] for index in range(len(configs))]


# ----------------------------------------------------------------------
# Run-level sharding of one fresh-start case.
# ----------------------------------------------------------------------


def shard_configs(config: CaseConfig, shards: int) -> List[CaseConfig]:
    """Split one fresh case into configs over disjoint run-index ranges.

    Shard sizes differ by at most one run (the first ``runs % shards``
    shards take the extra); concatenating the shards' index ranges in
    order reproduces ``range(run_offset, run_offset + runs)`` exactly.
    """
    if shards < 1:
        raise ValueError("need at least one shard")
    if config.mode != MODE_FRESH:
        raise ValueError("only fresh-start cases can be sharded")
    if config.collect_causal:
        # The trace stream a causal reconstruction consumes only emits
        # primary events on *change*, so consecutive fresh runs are not
        # independent: the first run of a shard would see a different
        # event stream than it does mid-sequence.  Causal collection
        # parallelizes at case granularity (run_cases_parallel), where
        # every case's stream is complete.
        raise ValueError(
            "collect_causal cases cannot be run-sharded — parallelize "
            "them at case granularity with run_cases_parallel"
        )
    shards = min(shards, config.runs)
    base, extra = divmod(config.runs, shards)
    configs: List[CaseConfig] = []
    offset = config.run_offset
    for shard_index in range(shards):
        size = base + (1 if shard_index < extra else 0)
        configs.append(replace(config, run_offset=offset, runs=size))
        offset += size
    return configs


def merge_case_results(
    config: CaseConfig, results: Sequence[CaseResult]
) -> CaseResult:
    """Reassemble shard results (in shard order) into the case result.

    Exact, not approximate: every aggregate the campaign layer reports
    is either concatenable (outcomes), additive (rounds, changes,
    histograms, broadcast counts), a maximum, or a mean that merges
    exactly when weighted by its count.
    """
    if not results:
        raise ValueError("no shard results to merge")
    outcomes: List[bool] = []
    rounds_total = 0
    changes_total = 0
    stable: Counter = Counter()
    stable_in_primary: Counter = Counter()
    in_progress: Counter = Counter()
    ambiguous_max = 0
    message_max = 0.0
    message_bits_weighted = 0.0
    message_broadcasts = 0
    for result in results:
        outcomes.extend(result.outcomes)
        rounds_total += result.rounds_total
        changes_total += result.changes_total
        stable.update(result.ambiguous_stable)
        stable_in_primary.update(result.ambiguous_stable_in_primary)
        in_progress.update(result.ambiguous_in_progress)
        ambiguous_max = max(ambiguous_max, result.ambiguous_max)
        message_max = max(message_max, result.message_max_bytes)
        message_bits_weighted += result.message_mean_bytes * result.message_broadcasts
        message_broadcasts += result.message_broadcasts
    mean_bytes = (
        message_bits_weighted / message_broadcasts if message_broadcasts else 0.0
    )
    availability = 100.0 * sum(outcomes) / len(outcomes)
    shard_registries = [
        result.metrics for result in results if result.metrics is not None
    ]
    metrics: Optional[MetricsRegistry] = None
    if shard_registries:
        # Shard order == run order, so the merged registry is
        # bit-identical to the serial case's (all campaign metrics are
        # integer-valued; see repro.obs.metrics).
        metrics = merge_registries(shard_registries)
    return CaseResult(
        config=config,
        availability_percent=availability,
        outcomes=outcomes,
        rounds_total=rounds_total,
        changes_total=changes_total,
        ambiguous_stable=dict(stable),
        ambiguous_stable_in_primary=dict(stable_in_primary),
        ambiguous_in_progress=dict(in_progress),
        ambiguous_max=ambiguous_max,
        message_max_bytes=message_max,
        message_mean_bytes=mean_bytes,
        message_broadcasts=message_broadcasts,
        metrics=metrics,
    )


def run_case_sharded(
    config: CaseConfig,
    shards: Optional[int] = None,
    workers: Optional[int] = None,
    kernel: str = "scalar",
) -> CaseResult:
    """Run one case split run-wise across the process pool.

    ``shards=None`` uses the CPU count.  Cascading cases (or a single
    shard/worker) fall back to a plain in-process :func:`run_case`; the
    returned result is identical either way.  ``kernel`` is forwarded
    to every shard's :func:`run_case`; shard RNG labelling is
    kernel-independent, so merged results are identical whichever
    backend executed each shard.
    """
    if workers is None:
        workers = multiprocessing.cpu_count()
    if shards is None:
        shards = workers
    if config.mode != MODE_FRESH or shards <= 1 or workers <= 1 or config.runs <= 1:
        return run_case(config, kernel=kernel)
    shard_list = shard_configs(config, shards)
    context = multiprocessing.get_context("spawn")
    results: Dict[int, CaseResult] = {}
    with context.Pool(processes=min(workers, len(shard_list))) as pool:
        for index, result in pool.imap_unordered(
            _run_indexed,
            [(i, shard, kernel) for i, shard in enumerate(shard_list)],
        ):
            results[index] = result
    ordered = [results[index] for index in range(len(shard_list))]
    return merge_case_results(config, ordered)
