"""The driver loop (thesis §2.2).

"The driver loop routes all messages among the multiple instances of
the algorithm without using the network or any communication system.
It does this by polling individual processes for messages to send, and
then immediately delivering those messages to the other processes.  The
driver loop also supports fault injection and statistics gathering
during the simulation."

One *round* is one poll-and-deliver cycle over all live processes; it
is the unit in which the thesis counts change frequency.  A round runs:

1. **Poll** every non-crashed process with an empty application message
   (Fig. 2-2's behaviour), collecting piggybacked broadcasts.
2. **Inject** the round's connectivity change, if one fires.  The
   change lands *mid-round*: every process of the reconfigured
   components independently either still receives this round's messages
   ("early") or loses them ("late") — this is what makes interrupted
   attempts ambiguous (Fig. 3-1's process c is a late receiver).
   Processes of untouched components always receive everything.
3. **Deliver** each broadcast to the members of the sender's pre-change
   component (a sender always receives its own broadcast).
4. **Install** new views on every member of the reconfigured
   components, then run the invariant checks and observers.

Quiescence is a round in which no process had anything to send; because
every algorithm here is event-driven, a silent round proves the system
is stable until the next connectivity change.
"""

from __future__ import annotations

import random
import warnings
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.interface import PrimaryComponentAlgorithm
from repro.core.message import Message
from repro.core.registry import create_algorithm
from repro.core.view import View, initial_view
from repro.errors import ProtocolError, SimulationError
from repro.faults.injector import FaultInjector
from repro.faults.model import FaultModel
from repro.net.changes import (
    ConnectivityChange,
    CrashChange,
    MergeChange,
    PartitionChange,
    RecoverChange,
    UniformChangeGenerator,
    affected_processes,
    apply_change,
)
from repro.net.topology import Topology
from repro.obs import EventBus, PhaseProfiler, Subscriber
from repro.sim.invariants import InvariantChecker
from repro.types import Members, ProcessId, sorted_members


class ProcessEndpoint:
    """One simulated process: an application wrapped around an algorithm.

    The default endpoint is the idle application of Fig. 2-2 — it
    offers the algorithm an empty message on every poll and discards
    stripped incoming payloads.  Real applications (see
    ``repro.app.replicated_store``) subclass this, produce their own
    payloads in :meth:`poll` and consume them in :meth:`on_payload`,
    while the algorithm piggybacks transparently on top.
    """

    def __init__(self, algorithm: PrimaryComponentAlgorithm) -> None:
        self.algorithm = algorithm

    @property
    def pid(self) -> ProcessId:
        return self.algorithm.pid

    def poll(self) -> Optional[Message]:
        """Produce this round's broadcast, or None to stay silent."""
        outgoing = self.next_application_message()
        modified = self.algorithm.outgoing_message_poll(outgoing)
        if modified is not None:
            return modified
        return None if outgoing.is_empty() else outgoing

    def deliver(self, message: Message, sender: ProcessId) -> None:
        """Route an incoming broadcast through the algorithm (Fig. 2-2)."""
        stripped = self.algorithm.incoming_message(message, sender)
        if stripped.payload is not None:
            self.on_payload(stripped.payload, sender)

    def install_view(self, view: View) -> None:
        """Report a connectivity change to algorithm and application."""
        self.algorithm.view_changed(view)
        self.on_view(view)

    # Application hooks.

    def next_application_message(self) -> Message:
        """The application message to offer this round (default: empty).

        The default returns a shared empty message: the algorithm only
        reads it (``with_piggyback`` copies), and an empty message is
        never itself sent, so the instance cannot escape a poll.  Real
        applications override this and return fresh messages.
        """
        return _IDLE_MESSAGE

    def on_payload(self, payload: object, sender: ProcessId) -> None:
        """An application payload arrived (default: ignore)."""

    def on_view(self, view: View) -> None:
        """The application learned of a view change (default: ignore)."""


#: The one empty message the idle application offers on every poll.
_IDLE_MESSAGE = Message.empty()


@dataclass(frozen=True)
class DriverSnapshot:
    """A point-in-time capture of one :class:`DriverLoop`'s state.

    Holds everything that determines future behaviour — topology, view
    sequence, per-process algorithm clones, the checker's accumulated
    chain, the fault RNG state — plus the bookkeeping counters needed
    to resume reporting (round index, recorded schedule).  The stored
    algorithm clones are never handed out directly: :meth:`DriverLoop.restore`
    re-forks them, so one snapshot supports any number of restores (the
    exhaustive explorer restores each snapshot once per branch).
    """

    topology: Topology
    view_seq: int
    round_index: int
    changes_injected: int
    views_installed_this_round: Tuple[View, ...]
    recorded_steps: Tuple[Tuple[int, ConnectivityChange, frozenset], ...]
    rounds_since_change: int
    fault_rng_state: object
    algorithms: Dict[ProcessId, PrimaryComponentAlgorithm]
    checker_state: tuple
    #: Pending-delivery queue of the fault injector; empty for runs
    #: without an active fault model (the historical snapshot shape).
    fault_state: tuple = ()


class DriverLoop:
    """In-memory simulation of one system of processes."""

    def __init__(
        self,
        algorithm: str,
        n_processes: int,
        fault_rng: random.Random,
        change_generator: Optional[UniformChangeGenerator] = None,
        checker: Optional[InvariantChecker] = None,
        observers: Sequence[Subscriber] = (),
        max_quiescence_rounds: int = 400,
        endpoint_factory=ProcessEndpoint,
        cut_probability: float = 0.5,
        fault_model: Optional[FaultModel] = None,
    ) -> None:
        if n_processes < 2:
            raise SimulationError(
                "the study needs at least two processes (a single process "
                "admits no connectivity changes)"
            )
        if not 0.0 <= cut_probability <= 1.0:
            raise SimulationError("cut_probability must be in [0, 1]")
        self.algorithm_name = algorithm
        self.n_processes = n_processes
        self.fault_rng = fault_rng
        self.change_generator = change_generator or UniformChangeGenerator()
        # ``observers=[...]`` is the single attachment point for every
        # repro.obs subscriber.  Two subscriber kinds get special
        # wiring: the first InvariantChecker becomes ``self.checker``
        # (its checks run at the exact safety points, before ordinary
        # hooks), and the first PhaseProfiler receives the per-phase
        # timing brackets of run_round.
        subscribers = list(observers)
        if checker is not None:
            warnings.warn(
                "DriverLoop(checker=...) is deprecated; pass the checker "
                "inside observers=[...] instead",
                DeprecationWarning,
                stacklevel=2,
            )
            subscribers.insert(0, checker)
        self.checker = next(
            (s for s in subscribers if isinstance(s, InvariantChecker)), None
        )
        if self.checker is None:
            self.checker = InvariantChecker()
        else:
            subscribers.remove(self.checker)
        self._profiler: Optional[PhaseProfiler] = next(
            (s for s in subscribers if isinstance(s, PhaseProfiler)), None
        )
        #: Dispatch is snapshotted at construction: per hook, the bus
        #: holds the bound methods of exactly the subscribers that
        #: override it, so unwatched events cost an empty iteration.
        self.bus = EventBus(subscribers)
        self._run_start_hooks = self.bus.hooks("on_run_start")
        self._round_hooks = self.bus.hooks("on_round")
        self._change_hooks = self.bus.hooks("on_change")
        self._broadcast_hooks = self.bus.hooks("on_broadcast")
        self._quiescence_hooks = self.bus.hooks("on_quiescence")
        self._run_end_hooks = self.bus.hooks("on_run_end")
        self.max_quiescence_rounds = max_quiescence_rounds
        #: Probability that an affected process *loses* the current
        #: round's messages when a change lands mid-round.  0 means the
        #: change never destroys in-flight deliveries (everyone is
        #: "early"); 1 means it always does.  The thesis does not pin
        #: this down; 0.5 is the symmetric default, and the
        #: ``abl_cut_model`` experiment shows the study's conclusions
        #: are insensitive to it.
        self.cut_probability = cut_probability
        #: Optional override for the mid-round cut: a callable taking
        #: the affected member set and returning the set of "late"
        #: processes.  The exhaustive explorer uses this to enumerate
        #: every possible cut instead of sampling one.
        self.cut_chooser = None
        #: Adversarial fault model (repro.faults).  A clean model (all
        #: engine-affecting knobs off) leaves every delivery path
        #: untouched — the byte-identity tests pin this — so the
        #: injector only exists when link or Byzantine faults are live.
        self.fault_model: Optional[FaultModel] = fault_model
        self._injector: Optional[FaultInjector] = None
        self._amnesiac = False
        self._tolerate_protocol_errors = False
        if fault_model is not None:
            fault_model.validate_for(n_processes)
            self._amnesiac = fault_model.crashrec.amnesiac
            if fault_model.needs_injection():
                self._injector = FaultInjector(fault_model)
            # Under active Byzantine mutation, honest members can
            # detect tampering (e.g. an attempt that contradicts their
            # own deterministic decision) and raise ProtocolError; the
            # delivery loop treats that as "tamper detected, message
            # rejected" instead of crashing the simulation.
            self._tolerate_protocol_errors = fault_model.byzantine.is_active()

        self.initial_view: View = initial_view(n_processes)
        self.endpoints: Dict[ProcessId, ProcessEndpoint] = {
            pid: endpoint_factory(create_algorithm(algorithm, pid, self.initial_view))
            for pid in range(n_processes)
        }
        self.algorithms: Dict[ProcessId, PrimaryComponentAlgorithm] = {
            pid: endpoint.algorithm for pid, endpoint in self.endpoints.items()
        }
        self.topology = Topology.fully_connected(n_processes)
        self.view_seq: int = 0
        self.round_index: int = 0
        self.changes_injected: int = 0
        self.views_installed_this_round: Tuple[View, ...] = ()
        #: Realized fault schedule of the current run, as (gap, change,
        #: late-set) triples — exactly what :meth:`execute_schedule`
        #: replays.  Recording is always on (one append per change);
        #: :meth:`execute_run` resets it at each run start so a
        #: violating run can be turned into an explicit repro plan.
        self._recorded_steps: List[Tuple[int, ConnectivityChange, frozenset]] = []
        self._rounds_since_change: int = 0
        #: Reused across rounds (cleared, not reallocated); populated in
        #: ascending pid order, so iterating it IS sender-id order.
        self._bundles: Dict[ProcessId, Message] = {}

    @property
    def observers(self) -> List[Subscriber]:
        """The attached subscribers (excluding the extracted checker)."""
        return list(self.bus.subscribers)

    # ------------------------------------------------------------------
    # Topology installation.  The poll order (sorted active pids) and
    # the per-sender delivery order (sorted component members) are
    # functions of the topology alone, and a topology lives for many
    # rounds; precomputing them here removes the per-round/per-sender
    # ``sorted`` calls that dominated campaign profiles.  The orders
    # are exactly the tuples the per-round sorts produced.
    # ------------------------------------------------------------------

    @property
    def topology(self) -> Topology:
        return self._topology

    @topology.setter
    def topology(self, topology: Topology) -> None:
        self._topology = topology
        self._active_order = tuple(sorted(topology.active_processes()))
        endpoints = self.endpoints
        delivery: Dict[ProcessId, Tuple[ProcessId, ...]] = {}
        deliver_calls: Dict[ProcessId, tuple] = {}
        for component in topology.components:
            order = tuple(sorted(component))
            calls = tuple(endpoints[pid].deliver for pid in order)
            for pid in component:
                delivery[pid] = order
                deliver_calls[pid] = calls
        self._delivery_order = delivery
        #: Bound ``deliver`` methods in the same recipient order — the
        #: tight loop for rounds with no mid-round cut and no crash.
        self._deliver_calls = deliver_calls

    # ------------------------------------------------------------------
    # One round.
    # ------------------------------------------------------------------

    def run_round(self, change: Optional[ConnectivityChange] = None) -> bool:
        """Execute one round; returns True when any message was sent.

        With a :class:`~repro.obs.PhaseProfiler` attached, each phase
        below is bracketed with wall/CPU timestamps; without one the
        instrumentation collapses to an ``is None`` test per phase.
        """
        self.round_index += 1
        profiler = self._profiler
        if profiler is not None:
            wall_mark, cpu_mark = profiler.open_round()

        # 1. Poll every endpoint (Fig. 2-2's application behaviour),
        #    in ascending pid order.
        bundles = self._bundles
        bundles.clear()
        endpoints = self.endpoints
        for pid in self._active_order:
            message = endpoints[pid].poll()
            if message is not None:
                bundles[pid] = message
        if profiler is not None:
            wall_mark, cpu_mark = profiler.lap("poll", wall_mark, cpu_mark)

        # 2. Decide who the change cuts off mid-round.
        late: frozenset = frozenset()
        dead: frozenset = frozenset()
        new_topology: Optional[Topology] = None
        if change is not None:
            affected = affected_processes(change, self.topology)
            new_topology = apply_change(self.topology, change)
            if self.cut_chooser is not None:
                late = frozenset(self.cut_chooser(affected))
            else:
                late = frozenset(
                    pid
                    for pid in sorted(affected)
                    if self.fault_rng.random() < self.cut_probability
                )
            if isinstance(change, CrashChange):
                dead = frozenset({change.pid})
            self._recorded_steps.append(
                (self._rounds_since_change, change, late)
            )
            self._rounds_since_change = 0
        else:
            self._rounds_since_change += 1
        if profiler is not None:
            wall_mark, cpu_mark = profiler.lap("cut", wall_mark, cpu_mark)

        # 3. Deliver within the pre-change components, sender id order
        #    (bundles was filled in ascending pid order).
        broadcast_hooks = self._broadcast_hooks
        had_matured = False
        if self._injector is not None:
            had_matured = self._deliver_faulted(bundles, late, dead)
        elif late or dead:
            delivery_order = self._delivery_order
            for sender, message in bundles.items():
                for hook in broadcast_hooks:
                    hook(self, sender, message)
                for recipient in delivery_order[sender]:
                    if recipient in dead:
                        continue
                    if recipient != sender and recipient in late:
                        continue
                    endpoints[recipient].deliver(message, sender)
        else:
            # No mid-round cut: everyone in the sender's component
            # receives — the overwhelmingly common round shape.
            deliver_calls = self._deliver_calls
            for sender, message in bundles.items():
                for hook in broadcast_hooks:
                    hook(self, sender, message)
                for deliver in deliver_calls[sender]:
                    deliver(message, sender)
        if profiler is not None:
            wall_mark, cpu_mark = profiler.lap("deliver", wall_mark, cpu_mark)

        # 4. Apply the change and install the new views.
        installed: List[View] = []
        if change is not None:
            assert new_topology is not None
            old_topology = self.topology
            self.topology = new_topology
            self.changes_injected += 1
            if self._amnesiac and isinstance(change, RecoverChange):
                # Amnesiac crash-recovery (repro.faults): the process
                # comes back with its algorithm freshly initialized —
                # every session it ever formed is forgotten — before
                # the recovery view is installed.  The endpoint object
                # persists so the precomputed delivery bindings stay
                # valid.
                endpoint = self.endpoints[change.pid]
                endpoint.algorithm = create_algorithm(
                    self.algorithm_name, change.pid, self.initial_view
                )
                self.algorithms[change.pid] = endpoint.algorithm
            for component in self._views_needed(change, old_topology):
                self.view_seq += 1
                view = View(members=component, seq=self.view_seq)
                installed.append(view)
                for pid in sorted(component):
                    if not self.topology.is_crashed(pid):
                        self.endpoints[pid].install_view(view)
        self.views_installed_this_round = tuple(installed)
        if profiler is not None:
            wall_mark, cpu_mark = profiler.lap("views", wall_mark, cpu_mark)

        if change is not None:
            for hook in self._change_hooks:
                hook(self, change)
        self.checker.check_round(self.algorithms, self.topology.active_processes())
        for hook in self._round_hooks:
            hook(self)
        if profiler is not None:
            profiler.lap("observe", wall_mark, cpu_mark)
        if self._injector is not None:
            # A round is only quiet when nothing was sent, nothing
            # matured, and nothing is still held in flight — otherwise
            # delayed deliveries could be mistaken for quiescence.
            return bool(bundles) or had_matured or self._injector.has_pending()
        return bool(bundles)

    def _deliver_faulted(
        self,
        bundles: Dict[ProcessId, Message],
        late: frozenset,
        dead: frozenset,
    ) -> bool:
        """Delivery phase with an active fault injector.

        Matured (previously delayed) deliveries land first — they are
        the older traffic — then the round's broadcasts, each routed
        through the injector per recipient.  Self-deliveries bypass the
        injector: a process's loop-back is not a network link, and a
        Byzantine member always processes its own *honest* broadcast.
        Late processes lose matured deliveries along with the round's
        (the mid-round cut destroys everything in flight); a crashing
        process's whole queue is discarded.  Returns whether any held
        delivery matured (for the quiescence accounting).
        """
        injector = self._injector
        assert injector is not None
        round_index = self.round_index
        broadcast_hooks = self._broadcast_hooks
        delivery_order = self._delivery_order
        had_matured = False
        for pid in dead:
            injector.drop_for(pid)
        if injector.has_pending():
            for recipient in self._active_order:
                if recipient in dead:
                    continue
                matured = injector.matured(round_index, recipient)
                if not matured or recipient in late:
                    continue
                had_matured = True
                for sender, message in matured:
                    self._deliver_one(recipient, message, sender)
        for sender, message in bundles.items():
            for hook in broadcast_hooks:
                hook(self, sender, message)
            component = delivery_order[sender]
            attacked = injector.attacked(round_index, sender)
            for recipient in component:
                if recipient in dead:
                    continue
                if recipient == sender:
                    self._deliver_one(recipient, message, sender)
                    continue
                if recipient in late:
                    continue
                faulted = injector.transform(
                    round_index, sender, recipient, message, component, attacked
                )
                if faulted is not None:
                    self._deliver_one(recipient, faulted, sender)
        return had_matured

    def _deliver_one(
        self, recipient: ProcessId, message: Message, sender: ProcessId
    ) -> None:
        """One faulted-path delivery, with tamper detection if Byzantine."""
        if self._tolerate_protocol_errors:
            try:
                self.endpoints[recipient].deliver(message, sender)
            except ProtocolError:
                # The recipient detected protocol-inconsistent content
                # (forged evidence contradicting its own deterministic
                # decision); under an active Byzantine model that is
                # the *correct* honest reaction — reject the message.
                pass
        else:
            self.endpoints[recipient].deliver(message, sender)

    @staticmethod
    def _views_needed(
        change: ConnectivityChange, old_topology: Topology
    ) -> List[Members]:
        """The components that must install a new view after a change."""
        if isinstance(change, PartitionChange):
            remaining = frozenset(change.component) - frozenset(change.moved)
            components = [remaining, frozenset(change.moved)]
        elif isinstance(change, MergeChange):
            components = [frozenset(change.first) | frozenset(change.second)]
        elif isinstance(change, CrashChange):
            survivors = old_topology.component_of(change.pid) - {change.pid}
            components = [survivors] if survivors else []
        elif isinstance(change, RecoverChange):
            components = [frozenset({change.pid})]
        else:  # pragma: no cover - exhaustive
            raise TypeError(f"unknown change type {type(change).__name__}")
        return sorted(components, key=sorted_members)

    # ------------------------------------------------------------------
    # Run orchestration.
    # ------------------------------------------------------------------

    def run_until_quiescent(self) -> int:
        """Run change-free rounds until a silent round; returns how many."""
        for elapsed in range(self.max_quiescence_rounds):
            if not self.run_round(None):
                return elapsed + 1
        raise SimulationError(
            f"{self.algorithm_name} did not quiesce within "
            f"{self.max_quiescence_rounds} rounds — livelock?"
        )

    def execute_run(self, gaps: Iterable[int]) -> None:
        """One measured run: inject a change after each gap, then settle.

        ``gaps`` are the change-free round counts drawn from the fault
        schedule; the change itself is drawn from the change generator
        at fire time, so the realized fault sequence depends only on
        the fault RNG and never on the algorithm under test.
        """
        self.reset_schedule_recording()
        for hook in self._run_start_hooks:
            hook(self)
        for gap in gaps:
            for _ in range(gap):
                self.run_round(None)
            change = self.change_generator.propose(self.topology, self.fault_rng)
            self.run_round(change)
        self.run_until_quiescent()
        self._publish_quiescence()
        for hook in self._run_end_hooks:
            hook(self)

    def _publish_quiescence(self) -> None:
        """Safety-check the quiescent state, then notify subscribers.

        The checker's quiescent-agreement check runs first — exactly as
        it always did — so a violation propagates before any ordinary
        subscriber observes the (broken) stable state.
        """
        self.checker.check_quiescent_agreement(
            self.algorithms,
            self.topology.components,
            self.topology.active_processes(),
        )
        for hook in self._quiescence_hooks:
            hook(self)

    # ------------------------------------------------------------------
    # Scripted replay (repro.check and repro.sim.explore).
    # ------------------------------------------------------------------

    def run_scripted_round(
        self, change: Optional[ConnectivityChange], late: Iterable[ProcessId]
    ) -> bool:
        """Run one round injecting ``change`` with an explicit late-set.

        The mid-round cut is forced to exactly ``late ∩ affected``
        instead of being sampled from the fault RNG, which makes the
        round fully deterministic — the building block of exhaustive
        exploration and of schedule replay.
        """
        late_set = frozenset(late)
        previous = self.cut_chooser
        self.cut_chooser = lambda affected: late_set & frozenset(affected)
        try:
            return self.run_round(change)
        finally:
            self.cut_chooser = previous

    def execute_schedule(
        self,
        steps: Iterable[Tuple[int, ConnectivityChange, Optional[frozenset]]],
        settle: bool = True,
    ) -> None:
        """Replay an explicit fault schedule against this system.

        ``steps`` are (gap, change, late) triples: run ``gap`` quiet
        rounds, then inject ``change`` with the given late-set (``None``
        samples the cut from the fault RNG as a random run would).
        With ``settle`` the run afterwards drains to quiescence under
        the quiescent-agreement check, mirroring :meth:`execute_run`.

        Replaying the same steps against the same initial state is
        bit-for-bit deterministic whenever every late-set is explicit,
        whatever the fault RNG — this is the driver-side hook that
        ``repro.check`` (fuzzing, shrinking, repro files) and
        ``repro.sim.explore`` build on.
        """
        self.reset_schedule_recording()
        for hook in self._run_start_hooks:
            hook(self)
        for gap, change, late in steps:
            for _ in range(gap):
                self.run_round(None)
            if late is None:
                self.run_round(change)
            else:
                self.run_scripted_round(change, late)
        if settle:
            self.run_until_quiescent()
            self._publish_quiescence()
        for hook in self._run_end_hooks:
            hook(self)

    def recorded_steps(
        self,
    ) -> List[Tuple[int, ConnectivityChange, frozenset]]:
        """The realized fault schedule of the current run.

        Each entry is a (gap, change, late) triple exactly as
        :meth:`execute_schedule` consumes them, so any random run —
        including one that just raised an :class:`InvariantViolation` —
        can be replayed deterministically from a fresh system.  Valid
        as a standalone plan only for runs started from the pristine
        initial state (fresh-start campaigns; cascading runs replay
        their tail against accumulated state).
        """
        return list(self._recorded_steps)

    def reset_schedule_recording(self) -> None:
        """Start a new recorded schedule (called at each run start)."""
        self._recorded_steps.clear()
        self._rounds_since_change = 0

    # ------------------------------------------------------------------
    # State forking (repro.sim.explore's prefix-sharing model checker).
    # ------------------------------------------------------------------

    def snapshot(self) -> DriverSnapshot:
        """Capture the complete behavioural state of this system.

        Restoring the snapshot (any number of times) resumes execution
        byte-identically: every subsequent round produces the same
        messages, views, primaries and invariant verdicts the original
        execution would have.  Algorithm state is captured by
        :meth:`~repro.core.interface.PrimaryComponentAlgorithm.fork`,
        the checker's accumulated chain by
        :meth:`~repro.sim.invariants.InvariantChecker.snapshot_state`.
        Observer-side state (traces, metrics) is deliberately *not*
        captured — observers watch one linear execution; forking
        explorers emit their own progress events instead.
        """
        return DriverSnapshot(
            topology=self._topology,
            view_seq=self.view_seq,
            round_index=self.round_index,
            changes_injected=self.changes_injected,
            views_installed_this_round=self.views_installed_this_round,
            recorded_steps=tuple(self._recorded_steps),
            rounds_since_change=self._rounds_since_change,
            fault_rng_state=self.fault_rng.getstate(),
            algorithms={
                pid: endpoint.algorithm.fork()
                for pid, endpoint in self.endpoints.items()
            },
            checker_state=self.checker.snapshot_state(),
            fault_state=(
                self._injector.snapshot_state()
                if self._injector is not None
                else ()
            ),
        )

    def restore(self, snapshot: DriverSnapshot) -> None:
        """Rewind this system to a previously captured snapshot.

        The endpoint objects persist (their identities anchor the
        precomputed delivery fast path); each one receives a fresh fork
        of the stored algorithm clone, so the snapshot itself stays
        pristine and can be restored again later.
        """
        for pid, stored in snapshot.algorithms.items():
            self.endpoints[pid].algorithm = stored.fork()
        self.algorithms = {
            pid: endpoint.algorithm for pid, endpoint in self.endpoints.items()
        }
        # Through the setter: recomputes poll/delivery orders against
        # the persistent endpoint objects.
        self.topology = snapshot.topology
        self.view_seq = snapshot.view_seq
        self.round_index = snapshot.round_index
        self.changes_injected = snapshot.changes_injected
        self.views_installed_this_round = snapshot.views_installed_this_round
        self._recorded_steps = list(snapshot.recorded_steps)
        self._rounds_since_change = snapshot.rounds_since_change
        self.fault_rng.setstate(snapshot.fault_rng_state)
        self.checker.restore_state(snapshot.checker_state)
        if self._injector is not None:
            self._injector.restore_state(snapshot.fault_state)
        self._bundles = {}

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------

    def primary_exists(self) -> bool:
        """Is any live process currently inside a primary component?"""
        return any(
            self.algorithms[pid].in_primary()
            for pid in self.topology.active_processes()
        )

    def primary_members(self) -> Optional[Tuple[ProcessId, ...]]:
        """The member tuple of the live primary, or None."""
        claimants = [
            pid
            for pid in self.topology.active_processes()
            if self.algorithms[pid].in_primary()
        ]
        return tuple(sorted(claimants)) if claimants else None

    def describe(self) -> str:  # pragma: no cover - debugging aid
        """One-line snapshot of round, topology and primary."""
        return (
            f"round={self.round_index} changes={self.changes_injected} "
            f"topology={self.topology.describe()} "
            f"primary={self.primary_members()}"
        )
