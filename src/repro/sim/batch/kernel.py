"""The batched campaign kernel: whole batches of runs in lockstep.

The scalar engine advances one run at a time through a graph of Python
objects (endpoints, messages, piggybacks, views, sessions).  This
kernel advances *all* runs of a case together, one compiled change step
at a time, over packed bitmask state:

* membership bookkeeping — who holds which view, with which sequence
  number, and who currently counts as in the primary — lives in
  ``(runs, n)`` numpy arrays updated by one vectorized scatter per
  change step;
* the simple-majority baseline is evaluated entirely vectorized (one
  ``SUBQUORUM`` lane per installed view across the whole batch);
* the dynamic voting algorithms keep sparse per-process *books*
  (sessions as ``(number, member-mask)`` pairs, ``lastFormed`` as an
  inverted session→member-mask map, knowledge as bitmask fact sets)
  and process each view's message exchange as an *episode* — exploiting
  that between a view's installation and its interruption, a member's
  state is touched by nothing but that view's own protocol rounds.

Equivalence contract: for every supported configuration the kernel
reproduces the scalar driver's per-run availability outcomes, final
views, round totals and quiescence failures exactly.  Every rule below
cites the scalar code it mirrors; the differential battery in
``tests/test_batch_differential.py`` enforces the contract per
algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.sim.batch.bitops import (
    bits_list,
    expand_bits,
    is_subquorum_mask,
    is_subquorum_vec,
    iter_bits,
    session_gt,
)
from repro.sim.batch.compile import CompiledRun

#: Session / view as a ``(number-or-seq, member-mask)`` pair.
SessionPair = Tuple[int, int]

#: Algorithms the kernel implements (see also ``repro.sim.batch.api``).
KERNEL_ALGORITHMS = (
    "simple_majority",
    "ykd",
    "ykd_unopt",
    "ykd_aggressive",
    "dfls",
    "one_pending",
    "mr1p",
)


@dataclass
class BatchOutcome:
    """What a batch execution produces, in run order."""

    outcomes: List[bool]
    rounds_total: int
    changes_total: int
    #: Final ``in_primary`` bits per run, packed into one mask per run.
    final_primary_masks: List[int]


def execute_batch(
    algorithm: str,
    n_processes: int,
    runs: Sequence[CompiledRun],
    max_quiescence_rounds: int,
) -> BatchOutcome:
    """Advance every compiled run to quiescence, in lockstep steps."""
    n = n_processes
    batch = len(runs)
    universe = (1 << n) - 1
    # The three bookkeeping arrays: every install step updates them
    # with one vectorized scatter, whatever the algorithm.
    view_mask = np.full((batch, n), np.uint64(universe))
    view_seq = np.zeros((batch, n), dtype=np.int64)
    in_primary = np.ones((batch, n), dtype=bool)

    if algorithm == "simple_majority":
        engine: _Engine = _MajorityEngine(universe)
    elif algorithm == "mr1p":
        engine = _MR1pEngine(batch, universe)
    else:
        engine = _YkdFamilyEngine(algorithm, batch, universe)

    max_steps = max((len(run.changes) for run in runs), default=0)
    for step in range(max_steps):
        rows: List[int] = []
        masks: List[int] = []
        seqs: List[int] = []
        for b, run in enumerate(runs):
            if step >= len(run.changes):
                continue
            change = run.changes[step]
            engine.on_change(b, change)
            for mask, seq in change.installs:
                rows.append(b)
                masks.append(mask)
                seqs.append(seq)
        if rows:
            row_arr = np.asarray(rows)
            mask_arr = np.asarray(masks, dtype=np.uint64)
            seq_arr = np.asarray(seqs, dtype=np.int64)
            bits = expand_bits(mask_arr, n)
            # One install per run per step and installs of one change
            # are disjoint, so the (run, pid) target pairs are unique
            # and plain fancy assignment is exact.
            k_idx, pid_idx = np.nonzero(bits)
            r_idx = row_arr[k_idx]
            view_mask[r_idx, pid_idx] = mask_arr[k_idx]
            view_seq[r_idx, pid_idx] = seq_arr[k_idx]
            engine.on_installs(r_idx, pid_idx, k_idx, mask_arr, in_primary)

    # Finale: settle the surviving episodes, then account rounds the
    # way DriverLoop.execute_run + run_until_quiescent do.
    rounds_total = 0
    changes_total = 0
    for b, run in enumerate(runs):
        last_send = engine.finish_run(b, run, in_primary)
        settle = last_send - run.t_last + 1 if last_send > run.t_last else 1
        if settle > max_quiescence_rounds:
            # Mirrors DriverLoop.run_until_quiescent, including the
            # max_quiescence_rounds=0 edge (always raises).
            raise SimulationError(
                f"{algorithm} did not quiesce within "
                f"{max_quiescence_rounds} rounds — livelock?"
            )
        rounds_total += run.t_last + settle
        changes_total += len(run.changes)

    shifts = np.arange(n, dtype=np.uint64)
    packed = np.bitwise_or.reduce(
        in_primary.astype(np.uint64) << shifts[None, :], axis=1
    )
    outcomes = in_primary.any(axis=1)
    return BatchOutcome(
        outcomes=[bool(v) for v in outcomes],
        rounds_total=rounds_total,
        changes_total=changes_total,
        final_primary_masks=[int(v) for v in packed],
    )


class _Engine:
    """Per-algorithm protocol engine behind the lockstep loop."""

    def on_change(self, b: int, change) -> None:
        """A change lands in run ``b``: settle interrupted episodes."""

    def on_installs(self, r_idx, pid_idx, k_idx, mask_arr, in_primary) -> None:
        """Vectorized install effect on the ``in_primary`` array."""

    def finish_run(self, b: int, run: CompiledRun, in_primary) -> int:
        """Settle run ``b``'s surviving episodes; return its last send round."""
        return 0


# ----------------------------------------------------------------------
# Simple majority (§3.3): stateless, fully vectorized.
# ----------------------------------------------------------------------


class _MajorityEngine(_Engine):
    """``SimpleMajority._on_view`` across the whole batch at once."""

    def __init__(self, universe: int) -> None:
        self._universe = np.uint64(universe)

    def on_installs(self, r_idx, pid_idx, k_idx, mask_arr, in_primary) -> None:
        flags = is_subquorum_vec(mask_arr, self._universe)
        in_primary[r_idx, pid_idx] = flags[k_idx]

    def finish_run(self, b: int, run: CompiledRun, in_primary) -> int:
        return 0  # never sends a message


# ----------------------------------------------------------------------
# The YKD family: ykd, ykd_unopt, ykd_aggressive, dfls, one_pending.
# ----------------------------------------------------------------------


class _YkdBook:
    """One process's persistent state, in bitmask form.

    ``lf`` is the inverted ``lastFormed`` table: session → mask of the
    processes whose ``lastFormed`` entry is that session (every process
    appears in exactly one value mask).  ``kf``/``ki`` mirror the
    :class:`~repro.core.knowledge.KnowledgeBook` fact sets: sessions
    proven formed, and session → mask of members proven innocent.
    """

    __slots__ = ("snum", "lp", "lf", "amb", "kf", "ki")

    def __init__(self, initial: SessionPair, universe: int) -> None:
        self.snum = 0
        self.lp = initial
        self.lf: Dict[SessionPair, int] = {initial: universe}
        self.amb: List[SessionPair] = []
        self.kf: Set[SessionPair] = set()
        self.ki: Dict[SessionPair, int] = {}


#: Install-time snapshot: (session_number, ambiguous tuple,
#: last_primary, lastFormed copy) — the bitmask StateItem.
_Snapshot = Tuple[int, Tuple[SessionPair, ...], SessionPair, Dict[SessionPair, int]]


class _YkdFamilyEngine(_Engine):
    """Staged episode processing for the two/three-round exchanges.

    An installed view's protocol life is three fixed stages: the state
    exchange at R+1, the attempt round at R+2 (if and only if the
    deterministic decision allowed it — all-or-none across members),
    and for DFLS the confirm round at R+3.  An interrupting change at
    round T delivers the in-flight stage-T messages to the non-late
    members only (a singleton's self-delivery always lands), and the
    view install then discards everything still queued.
    """

    def __init__(self, variant: str, batch: int, universe: int) -> None:
        self.optimized = variant in ("ykd", "ykd_aggressive")
        self.aggressive = variant == "ykd_aggressive"
        self.dfls = variant == "dfls"
        self.one_pending = variant == "one_pending"
        self.universe = universe
        initial = (0, universe)
        self.books: List[List[_YkdBook]] = [
            [_YkdBook(initial, universe) for _ in range(universe.bit_count())]
            for _ in range(batch)
        ]
        #: Live episodes per run: component mask -> (view seq, install round).
        self.episodes: List[Dict[int, Tuple[int, int]]] = [
            {} for _ in range(batch)
        ]
        #: Component mask -> sorted member list, shared across runs.
        self._members_cache: Dict[int, List[int]] = {}

    def _session_sort_key(self, session: SessionPair):
        """Sort key realizing the session total order (``session_gt``):
        number first, then the sorted-member-tuple tie-break."""
        members = self._members_cache.get(session[1])
        if members is None:
            members = bits_list(session[1])
            self._members_cache[session[1]] = members
        return (session[0], members)

    # -- lockstep hooks -------------------------------------------------

    def on_change(self, b: int, change) -> None:
        episodes = self.episodes[b]
        affected = change.affected_mask
        for mask in [m for m in episodes if m & affected]:
            seq, installed = episodes.pop(mask)
            self._episode(
                b, mask, seq, installed, change.round_index, change.late_mask
            )
        for mask, seq in change.installs:
            episodes[mask] = (seq, change.round_index)

    def on_installs(self, r_idx, pid_idx, k_idx, mask_arr, in_primary) -> None:
        in_primary[r_idx, pid_idx] = False  # YKD._on_view

    def finish_run(self, b: int, run: CompiledRun, in_primary) -> int:
        last_send = 0
        for mask, (seq, installed) in self.episodes[b].items():
            sent, formed = self._episode(b, mask, seq, installed, None, 0)
            last_send = max(last_send, sent)
            if formed:
                for pid in iter_bits(mask):
                    in_primary[b, pid] = True
        return last_send

    # -- one episode ----------------------------------------------------

    def _episode(
        self,
        b: int,
        mask: int,
        seq: int,
        installed: int,
        cut_round: Optional[int],
        late: int,
    ) -> Tuple[int, bool]:
        """Play out one view's stages; returns (last send round, formed).

        ``cut_round`` is the interrupting change's round (None for a
        final episode); ``late`` the late mask of that change.
        """
        books = self.books[b]
        members = self._members_cache.get(mask)
        if members is None:
            members = bits_list(mask)
            self._members_cache[mask] = members
        size = len(members)
        exchange_round = installed + 1
        attempt_round = installed + 2

        # One pass over the live books: the pooled formed evidence
        # (every last_primary and lastFormed entry any member reports —
        # the max over members of per-member "best formed containing p"
        # equals the max over this union, which turns the O(|C|^2)
        # resolve scan into O(|C| x |evidence|)), the shared decision
        # inputs, and whether anyone carries a pending session.
        evidence: Set[SessionPair] = set()
        max_session = 0
        max_primary = None
        amb_any = False
        for p in members:
            book = books[p]
            if book.snum > max_session:
                max_session = book.snum
            lp = book.lp
            evidence.add(lp)
            evidence.update(book.lf)
            if max_primary is None or session_gt(lp, max_primary):
                max_primary = lp
            if book.amb:
                amb_any = True
        assert max_primary is not None

        # Install-time snapshots (books are untouched between install
        # and this call — the lazy-episode soundness property).  Only
        # pending sessions are judged against other members' snapshots
        # (LEARN, RESOLVE's settled scan, 1-pending's resolvability),
        # so when nobody carries one the copies are skipped entirely —
        # the dominant case at realistic change rates.
        snaps: Optional[Dict[int, _Snapshot]] = None
        if amb_any:
            snaps = {
                p: (
                    books[p].snum,
                    tuple(books[p].amb),
                    books[p].lp,
                    dict(books[p].lf),
                )
                for p in members
            }

        # Evidence sorted best-first: each member's ACCEPT picks the
        # first entry containing it (the max of the per-member subset),
        # so the per-member scan short-circuits after one hit.  Sessions
        # order primarily by number; ties fall back to the member-tuple
        # order, which the cached sorted member lists compare as-is.
        if len(evidence) == 1:
            ev_sorted = list(evidence)
        else:
            ev_sorted = sorted(
                evidence, key=self._session_sort_key, reverse=True
            )
        # Per-episode memos: _outcome rows per pending session (shared
        # by every learner — the snapshots are fixed for the episode)
        # and 1-pending's owner-independent never-formed verdicts.
        outcome_rows: Dict[SessionPair, List[Tuple[int, int]]] = {}
        nf_cache: Dict[SessionPair, bool] = {}

        # The shared, deterministic decision (thesis Figs. 3-2/3-4):
        # every member computes it from the same snapshot, so the
        # attempt round is all-or-none.
        if not amb_any:
            allowed = is_subquorum_mask(mask, max_primary[1])
        elif self.one_pending:
            assert snaps is not None
            allowed = is_subquorum_mask(mask, max_primary[1]) and not any(
                not _resolvable(snaps, evidence, owner, pending, nf_cache)
                for owner, snap in snaps.items()
                for pending in snap[1]
            )
        else:
            assert snaps is not None
            if self.dfls:
                constraints = {
                    s for snap in snaps.values() for s in snap[1]
                }
            else:
                constraints = {
                    s
                    for snap in snaps.values()
                    for s in snap[1]
                    if s[0] > max_primary[0]
                }
            allowed = is_subquorum_mask(mask, max_primary[1]) and all(
                is_subquorum_mask(mask, c[1]) for c in constraints
            )
        new_session = (max_session + 1, mask) if allowed else None

        # Stage 1 — the state exchange at R+1.  Completers run
        # LEARN/RESOLVE/DECIDE; a late member only hears itself and
        # (unless alone) resets on the incoming view with no effects.
        if cut_round is None or cut_round > exchange_round:
            completers = members
        else:  # cut_round == exchange_round
            completers = (
                members
                if size == 1
                else [p for p in members if not (late >> p) & 1]
            )
        if not amb_any:
            # Nobody carried a pending session, so LEARN, the settled
            # scan, and the resolvability checks are all vacuous — a
            # completed exchange reduces to ACCEPT plus (when allowed)
            # opening the new session.  And when the attempt is already
            # known to form with *every* member present — for DFLS,
            # to be confirmed by every member — the opened session is
            # deleted again within this very episode, so recording it
            # (amb append + KnowledgeBook.open_session) is skipped.
            if self.dfls:
                forms = allowed and (
                    cut_round is None or cut_round > installed + 3
                )
            else:
                forms = allowed and (
                    cut_round is None or cut_round > attempt_round
                )
            snum = new_session[0] if allowed else 0
            for p in completers:
                book = books[p]
                best = book.lp
                for session in ev_sorted:
                    if (session[1] >> p) & 1:
                        if session_gt(session, best):
                            best = session
                        break
                if best != book.lp:
                    _adopt(book, best)
                if allowed:
                    book.snum = snum
                    if not forms:
                        book.amb.append(new_session)
                        if self.optimized:
                            book.ki[new_session] = 1 << p
        else:
            for p in completers:
                self._exchange_effects(
                    books[p], p, snaps, evidence, ev_sorted, allowed,
                    new_session, outcome_rows, nf_cache,
                )

        if not allowed or (cut_round is not None and cut_round <= exchange_round):
            # Attempts were never sent (not allowed, or queued at R+1
            # and wiped by the interrupting install).
            return exchange_round, False

        # Stage 2 — the attempt round at R+2: receiving attempts from
        # everyone forms the primary (YKD._form_primary).
        if cut_round is None or cut_round > attempt_round:
            formers = members
        else:  # cut_round == attempt_round
            formers = (
                members
                if size == 1
                else [p for p in members if not (late >> p) & 1]
            )
        for p in formers:
            book = books[p]
            _adopt(book, new_session)
            if not self.dfls:
                book.amb = []
                if self.optimized:
                    book.kf.clear()
                    book.ki.clear()
        if not self.dfls:
            return attempt_round, True

        # Stage 3 — DFLS's confirm round at R+3: only once *everyone*
        # formed (and so broadcast a confirm); hearing all confirms
        # finally deletes the ambiguous sessions.
        confirm_round = installed + 3
        if cut_round is not None and cut_round <= attempt_round:
            return attempt_round, False
        if cut_round is None or cut_round > confirm_round:
            confirmers = members
        else:  # cut_round == confirm_round
            confirmers = (
                members
                if size == 1
                else [p for p in members if not (late >> p) & 1]
            )
        for p in confirmers:
            books[p].amb = []
        return confirm_round, True

    def _exchange_effects(
        self,
        book: _YkdBook,
        pid: int,
        snaps: Optional[Dict[int, _Snapshot]],
        evidence: Set[SessionPair],
        ev_sorted: List[SessionPair],
        allowed: bool,
        new_session: Optional[SessionPair],
        outcome_rows: Dict[SessionPair, List[Tuple[int, int]]],
        nf_cache: Dict[SessionPair, bool],
    ) -> None:
        """One member's persistent effects of a completed exchange.

        The ACCEPT scan (max over members of ``best_formed_by_member``)
        takes the first ``ev_sorted`` entry containing ``pid`` — the
        list is sorted best-first, so that entry is the max of the
        member's evidence subset.  ``snaps`` is None exactly when no
        member carries a pending session, in which case neither LEARN
        nor the resolvability checks can reach it (their loops run over
        the empty ``amb``).
        """
        if self.one_pending:
            # ACCEPT (OnePending._all_states_received).
            best = book.lp
            for session in ev_sorted:
                if (session[1] >> pid) & 1:
                    if session_gt(session, best):
                        best = session
                    break
            if best != book.lp:
                _adopt(book, best)
            if book.amb and _resolvable(
                snaps, evidence, pid, book.amb[0], nf_cache
            ):
                book.amb = []
        else:
            if self.optimized:
                self._learn(book, pid, snaps, outcome_rows)
            # RESOLVE: ACCEPT then (optimized) DELETE (YKD._resolve).
            best = book.lp
            for session in ev_sorted:
                if (session[1] >> pid) & 1:
                    if session_gt(session, best):
                        best = session
                    break
            if self.optimized:
                for session in book.amb:
                    if session in book.kf and session_gt(session, best):
                        best = session
            if best != book.lp:
                _adopt(book, best)
            if self.optimized:
                self._delete_settled(book)
        if allowed:
            assert new_session is not None
            book.snum = new_session[0]
            book.amb.append(new_session)
            if self.optimized:
                book.ki[new_session] = 1 << pid  # KnowledgeBook.open_session

    def _learn(
        self,
        book: _YkdBook,
        pid: int,
        snaps: Optional[Dict[int, _Snapshot]],
        outcome_rows: Dict[SessionPair, List[Tuple[int, int]]],
    ) -> None:
        """KnowledgeBook.learn_from_states for every pending session.

        The (member, outcome) rows depend only on the episode's fixed
        snapshots, so they are computed once per session and shared by
        every learner; each learner skips its own row at use time.
        """
        if not book.amb:
            return
        assert snaps is not None
        for session in book.amb:
            innocents = book.ki.get(session)
            if innocents is None:
                continue
            rows = outcome_rows.get(session)
            if rows is None:
                smask = session[1]
                rows = []
                for member, snap in snaps.items():
                    if not (smask >> member) & 1:
                        continue
                    outcome = _outcome(snap, session)
                    if outcome:
                        rows.append((member, outcome))
                outcome_rows[session] = rows
            for member, outcome in rows:
                if member == pid:
                    continue
                if outcome > 0:
                    book.kf.add(session)
                else:
                    innocents |= 1 << member
            book.ki[session] = innocents

    def _delete_settled(self, book: _YkdBook) -> None:
        """YKD._delete_settled over bitmask books."""
        kept: List[SessionPair] = []
        for session in book.amb:
            superseded = session == book.lp or session[0] < book.lp[0]
            never_formed = False
            if self.aggressive and not superseded:
                # KnowledgeBook.nobody_formed: every member provably
                # innocent, and no formation fact recorded.
                innocents = book.ki.get(session)
                never_formed = (
                    innocents is not None
                    and session not in book.kf
                    and session[1] & ~innocents == 0
                )
            if superseded or never_formed:
                book.ki.pop(session, None)
                book.kf.discard(session)
            else:
                kept.append(session)
        book.amb = kept


def _adopt(book: _YkdBook, session: SessionPair) -> None:
    """``last_primary = session; last_formed[m] = session for m in it``."""
    book.lp = session
    smask = session[1]
    lf = book.lf
    for key in list(lf):
        if key == session:
            continue
        remaining = lf[key] & ~smask
        if remaining:
            lf[key] = remaining
        else:
            del lf[key]
    lf[session] = lf.get(session, 0) | smask


def _outcome(snap: _Snapshot, session: SessionPair) -> int:
    """knowledge.outcome_for: 1 formed, -1 not formed, 0 unknown."""
    if session == snap[2] or session in snap[3]:
        return 1
    number, smask = session
    for other, qmask in snap[3].items():
        if other[0] < number and qmask & smask:
            # Some member's lastFormed entry is still numbered below
            # the session — that member provably never formed it.
            return -1
    return 0


def _resolvable(
    snaps: Dict[int, _Snapshot],
    evidence: Set[SessionPair],
    owner: int,
    pending: SessionPair,
    nf_cache: Dict[SessionPair, bool],
) -> bool:
    """OnePending._session_resolvable over the pooled evidence.

    ``evidence`` is the union of every member's formed evidence, so
    "formed anywhere" is a membership test, and "some member reports a
    formation containing ``owner`` numbered past ``pending``" scans the
    union once instead of every member's book.  The never-formed scan
    is owner-independent, so its verdict is memoized per episode in
    ``nf_cache``.
    """
    if pending in evidence:
        return True  # formed_anywhere
    number = pending[0]
    for session in evidence:
        if (session[1] >> owner) & 1 and session[0] > number:
            return True  # superseded by a later formation
    never_formed = nf_cache.get(pending)
    if never_formed is None:
        never_formed = True
        for member in iter_bits(pending[1]):
            snap = snaps.get(member)
            if snap is None or _outcome(snap, pending) >= 0:
                never_formed = False
                break
        nf_cache[pending] = never_formed
    return never_formed


# ----------------------------------------------------------------------
# MR1p: a message-driven micro engine per episode.
# ----------------------------------------------------------------------


class _MR1pBook:
    """One MR1p process: persistent ballot state plus its send queue."""

    __slots__ = (
        "cur_primary",
        "formed",
        "pending",
        "num",
        "status",
        "in_primary",
        "out",
    )

    def __init__(self, initial: SessionPair) -> None:
        self.cur_primary = initial
        self.formed: Set[SessionPair] = {initial}
        self.pending: Optional[SessionPair] = None
        self.num = 0
        self.status = "none"
        self.in_primary = True
        self.out: List[tuple] = []


class _Transient:
    """MR1p per-view collections (MR1p._reset_collections)."""

    __slots__ = (
        "try_mask",
        "votes",
        "infos",
        "fail_mask",
        "call_done",
        "formed_handled",
        "responded",
    )

    def __init__(self) -> None:
        self.try_mask = 0
        self.votes: Dict[SessionPair, int] = {}
        self.infos: Dict[int, Tuple[int, str]] = {}
        self.fail_mask = 0
        self.call_done = False
        self.formed_handled: Set[SessionPair] = set()
        self.responded: Set[SessionPair] = set()


class _MR1pEngine(_Engine):
    """MR1p's five-round resolution pipeline, simulated message by
    message inside each episode.

    Unlike the YKD family, MR1p's round structure is data-dependent
    (members resolve old sessions at different rounds, ``try-new`` can
    re-fire mid-view), so the engine drains the members' send queues
    round by round — still over bitmask state, still one component at
    a time — until the episode quiesces or its interrupting change
    cuts it short.
    """

    def __init__(self, batch: int, universe: int) -> None:
        self.universe = universe
        initial = (universe, 0)  # views as (member mask, install seq)
        self.books: List[List[_MR1pBook]] = [
            [_MR1pBook(initial) for _ in range(universe.bit_count())]
            for _ in range(batch)
        ]
        self.episodes: List[Dict[int, Tuple[int, int]]] = [
            {} for _ in range(batch)
        ]

    # -- lockstep hooks -------------------------------------------------

    def on_change(self, b: int, change) -> None:
        episodes = self.episodes[b]
        affected = change.affected_mask
        for mask in [m for m in episodes if m & affected]:
            seq, installed = episodes.pop(mask)
            self._episode(
                b, mask, seq, installed, change.round_index, change.late_mask, 0
            )
        for mask, seq in change.installs:
            episodes[mask] = (seq, change.round_index)

    def on_installs(self, r_idx, pid_idx, k_idx, mask_arr, in_primary) -> None:
        in_primary[r_idx, pid_idx] = False  # MR1p._on_view

    def finish_run(self, b: int, run: CompiledRun, in_primary) -> int:
        last_send = 0
        # Cap far enough past the livelock bound that the settle check
        # in execute_batch sees the overrun and raises exactly where
        # the scalar engine would.
        cap = run.t_last + 10_000
        for mask, (seq, installed) in self.episodes[b].items():
            sent = self._episode(b, mask, seq, installed, None, 0, cap)
            last_send = max(last_send, sent)
            for pid in iter_bits(mask):
                in_primary[b, pid] = self.books[b][pid].in_primary
        return last_send

    # -- one episode ----------------------------------------------------

    def _episode(
        self,
        b: int,
        mask: int,
        seq: int,
        installed: int,
        cut_round: Optional[int],
        late: int,
        cap: int,
    ) -> int:
        books = self.books[b]
        members = bits_list(mask)
        size = len(members)
        view = (mask, seq)
        transients = {p: _Transient() for p in members}

        # Install effects (MR1p._on_view).
        for p in members:
            book = books[p]
            book.in_primary = False
            book.out = []
            if book.pending is not None:
                book.out.append(
                    ("share", book.pending, book.num, book.status)
                )
            else:
                self._try_new(book, view)

        last_send = installed
        t = installed
        while True:
            t += 1
            if cut_round is not None and t > cut_round:
                break
            bundles: List[Tuple[int, List[tuple]]] = []
            for p in members:
                book = books[p]
                if book.out:
                    bundles.append((p, book.out))
                    book.out = []
            if not bundles:
                break  # quiescent
            last_send = t
            cut = cut_round is not None and t == cut_round and size > 1
            for sender, items in bundles:
                for recipient in members:
                    if (
                        cut
                        and recipient != sender
                        and (late >> recipient) & 1
                    ):
                        continue
                    self._deliver(
                        books[recipient],
                        transients[recipient],
                        recipient,
                        sender,
                        items,
                        view,
                    )
            if cut_round is None and t > cap:
                break  # livelock: surface through the settle check
        if cut_round is not None:
            for p in members:
                books[p].out = []  # view_changed clears _outgoing
        return last_send

    # -- handlers (each mirrors the MR1p method it is named after) ------

    def _try_new(self, book: _MR1pBook, view: SessionPair) -> None:
        if is_subquorum_mask(view[0], book.cur_primary[0]):
            book.pending = view
            book.num = 1
            book.status = "sent"
            book.out.append(("try", view))
        else:
            book.pending = None
            book.num = 0
            book.status = "none"

    def _deliver(
        self,
        book: _MR1pBook,
        trans: _Transient,
        pid: int,
        sender: int,
        items: List[tuple],
        view: SessionPair,
    ) -> None:
        for item in items:
            kind = item[0]
            if kind == "try":
                trans.try_mask |= 1 << sender
                # _maybe_vote_attempt
                if (
                    book.pending == view
                    and book.status == "sent"
                    and trans.try_mask == view[0]
                ):
                    book.status = "attempt"
                    book.num = 2
                    book.out.append(("vote", view))
            elif kind == "vote":
                voted = item[1]
                votes = trans.votes.get(voted, 0) | (1 << sender)
                trans.votes[voted] = votes
                if 2 * (votes & voted[0]).bit_count() > voted[0].bit_count():
                    self._session_formed(book, trans, voted, view)
            elif kind == "share":
                self._handle_share(book, trans, pid, item)
            elif kind == "info":
                self._handle_info(book, trans, sender, item, view)
            else:  # "fail"
                self._handle_fail(book, trans, sender, item, view)

    def _session_formed(
        self,
        book: _MR1pBook,
        trans: _Transient,
        formed: SessionPair,
        view: SessionPair,
    ) -> None:
        if formed in trans.formed_handled:
            return
        trans.formed_handled.add(formed)
        self._adopt_formed(book, formed)
        if formed == view:
            book.pending = None
            book.num = 0
            book.status = "none"
            book.in_primary = True
        elif book.pending == formed:
            book.pending = None
            book.num = 0
            book.status = "none"
            self._try_new(book, view)

    def _adopt_formed(self, book: _MR1pBook, formed: SessionPair) -> None:
        book.formed.add(formed)
        if formed[0] == self.universe:
            book.formed = {formed}
        if formed[1] > book.cur_primary[1]:
            book.cur_primary = formed

    def _handle_share(
        self, book: _MR1pBook, trans: _Transient, pid: int, item: tuple
    ) -> None:
        session = item[1]
        if session in trans.responded:
            return
        trans.responded.add(session)
        if book.pending is not None and session == book.pending:
            book.out.append(
                ("info", session, "status", book.num, book.status)
            )
        elif session in book.formed and (session[0] >> pid) & 1:
            book.out.append(("info", session, "formed", 0, "none"))
        elif (session[0] >> pid) & 1:
            book.out.append(("info", session, "aborted", 0, "none"))

    def _handle_info(
        self,
        book: _MR1pBook,
        trans: _Transient,
        sender: int,
        item: tuple,
        view: SessionPair,
    ) -> None:
        session, kind = item[1], item[2]
        if book.pending is None or session != book.pending:
            return
        if kind == "formed":
            self._adopt_formed(book, session)
            book.pending = None
            book.num = 0
            book.status = "none"
            self._try_new(book, view)
        elif kind == "aborted":
            book.pending = None
            book.num = 0
            book.status = "none"
            self._try_new(book, view)
        else:  # "status"
            trans.infos[sender] = (item[3], item[4])
            self._maybe_call(book, trans)

    def _maybe_call(self, book: _MR1pBook, trans: _Transient) -> None:
        if trans.call_done or book.pending is None:
            return
        session = book.pending
        smask = session[0]
        known = 0
        for member in trans.infos:
            if (smask >> member) & 1:
                known |= 1 << member
        if 2 * known.bit_count() <= smask.bit_count():
            return
        max_num = max(trans.infos[m][0] for m in iter_bits(known))
        statuses_at_max = {
            trans.infos[m][1]
            for m in iter_bits(known)
            if trans.infos[m][0] == max_num
        }
        trans.call_done = True
        book.num = max_num + 1
        if "attempt" in statuses_at_max:
            book.status = "attempt"
            book.out.append(("vote", session))
        else:
            book.status = "try_fail"
            book.out.append(("fail", session, book.num))

    def _handle_fail(
        self,
        book: _MR1pBook,
        trans: _Transient,
        sender: int,
        item: tuple,
        view: SessionPair,
    ) -> None:
        session = item[1]
        if book.pending is None or session != book.pending:
            return
        trans.fail_mask |= 1 << sender
        smask = session[0]
        if 2 * (trans.fail_mask & smask).bit_count() > smask.bit_count():
            book.pending = None
            book.num = 0
            book.status = "none"
            self._try_new(book, view)
