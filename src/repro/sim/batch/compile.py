"""Compile a case's fault schedules into batched change steps.

The fault environment of a fresh-start case — gap draws, change
content, mid-round cut draws, view installation order and sequence
numbers — never depends on the algorithm under test.  This module
replays exactly the driver's environment decisions *ahead of time*,
using the very same RNG objects and change generators the scalar
engine uses (``derive_rng`` streams, the configured
:class:`~repro.net.schedule.ChangeSchedule`), and emits each run as a
flat list of :class:`CompiledChange` steps over packed bitmasks.
Bit-exactness of the RNG consumption order is the load-bearing
property: the scalar driver draws gaps up front, then per change round
draws the change content and the late-set, and the compiler performs
the identical calls in the identical order.

The generators are fed a :class:`_MirrorTopology` — a lean stand-in
for :class:`~repro.net.topology.Topology` that maintains the identical
component frozensets in the identical canonical order but skips the
full topology machinery (validation, memoized caches, dataclass
construction) the compiler's hot loop would otherwise pay per change.
The mirror is sound because the batched surface excludes crashes:
partition/merge on a crash-free topology touch exactly the query
surface the mirror implements (``splittable_components``,
``mergeable_pairs_exist``, ``live_components``), and
``affected_processes``/``DriverLoop._views_needed`` never consult the
topology for partition/merge changes.  The differential battery holds
the mirror to the scalar engine's draws, change for change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.net.changes import MergeChange, PartitionChange
from repro.sim.batch.bitops import mask_of
from repro.sim.rng import derive_rng


@dataclass(frozen=True)
class CompiledChange:
    """One connectivity change of one run, as the batch kernel sees it.

    ``round_index`` is the absolute round the change lands in (the
    driver's mid-round injection point); ``late_mask`` are the affected
    processes that lose the round's in-flight messages; ``installs``
    are the (member mask, view seq) pairs installed at the end of the
    round, in the driver's deterministic installation order.
    """

    round_index: int
    affected_mask: int
    late_mask: int
    installs: Tuple[Tuple[int, int], ...]


@dataclass(frozen=True)
class CompiledRun:
    """One run's whole fault environment, flattened.

    ``t_last`` is the round of the final change round (``sum(gap+1)``
    over the schedule — counted even when the generator proposed
    nothing); ``final_components`` maps each component standing at the
    end to the view seq its members last installed (seq 0 for processes
    that never installed any view).
    """

    run_index: int
    changes: Tuple[CompiledChange, ...]
    t_last: int
    final_components: Tuple[Tuple[int, int], ...]


class _MirrorTopology:
    """Crash-free topology mirror serving the change generators.

    ``components`` is kept in :class:`Topology`'s canonical order, with
    the matching packed masks in the parallel ``masks`` list, so every
    ``rng.choice`` / ``rng.sample`` over components sees the identical
    list the scalar engine would.  Components are disjoint, so the
    canonical order (lexicographic on sorted member tuples) is decided
    by each component's smallest member — equivalently by the numeric
    value of its mask's lowest set bit, which is what :meth:`replace`
    keeps sorted without ever materializing the member tuples.
    """

    __slots__ = ("components", "masks")

    def __init__(self, n_processes: int) -> None:
        self.components: List[frozenset] = [frozenset(range(n_processes))]
        self.masks: List[int] = [(1 << n_processes) - 1]

    def splittable_components(self) -> List[frozenset]:
        return [c for c in self.components if len(c) >= 2]

    def mergeable_pairs_exist(self) -> bool:
        return len(self.components) >= 2

    def live_components(self) -> List[frozenset]:
        return list(self.components)

    def mask_for(self, component: frozenset) -> int:
        return self.masks[self.components.index(component)]

    def replace(
        self,
        removed: Tuple[frozenset, ...],
        added: Tuple[Tuple[frozenset, int], ...],
    ) -> None:
        components, masks = self.components, self.masks
        for item in removed:
            index = components.index(item)
            del components[index]
            del masks[index]
        for item, mask in added:
            low = mask & -mask
            position = 0
            while (
                position < len(masks)
                and masks[position] & -masks[position] < low
            ):
                position += 1
            components.insert(position, item)
            masks.insert(position, mask)


def compile_run(
    run_index: int,
    gaps: List[int],
    fault_rng,
    change_generator,
    n_processes: int,
    cut_probability: float,
) -> CompiledRun:
    """Replay one run's environment decisions into compiled steps.

    ``fault_rng`` must already have consumed exactly what the scalar
    engine would have before its first change draw (i.e. the gap draws
    for this run); the caller owns that ordering.
    """
    topology = _MirrorTopology(n_processes)
    view_seq = 0
    round_index = 0
    changes: List[CompiledChange] = []
    # Component mask -> seq of the view its members currently hold.
    comp_seq: Dict[int, int] = {mask_of(range(n_processes)): 0}
    draw = fault_rng.random
    for gap in gaps:
        round_index += gap + 1
        change = change_generator.propose(topology, fault_rng)
        if change is None:
            # No feasible change (cannot happen for the stock
            # partition/merge generators at n >= 2, but the scalar
            # engine treats it as a quiet round and so do we).
            continue
        # The affected set and the installed views, in mask arithmetic.
        # ``DriverLoop._views_needed`` orders a partition's two halves
        # canonically; they are disjoint, so lowest-bit order is that
        # order.  The late draws replay the scalar engine exactly: one
        # ``random()`` per affected process, ascending pid.
        if isinstance(change, PartitionChange):
            component = frozenset(change.component)
            affected_mask = topology.mask_for(component)
            moved_mask = mask_of(change.moved)
            remaining_mask = affected_mask & ~moved_mask
            if remaining_mask & -remaining_mask < moved_mask & -moved_mask:
                halves = (remaining_mask, moved_mask)
            else:
                halves = (moved_mask, remaining_mask)
            installs = tuple(
                (half, view_seq + offset + 1)
                for offset, half in enumerate(halves)
            )
            view_seq += 2
            topology.replace(
                (component,),
                (
                    (component - change.moved, remaining_mask),
                    (frozenset(change.moved), moved_mask),
                ),
            )
        else:
            assert isinstance(change, MergeChange)
            first = frozenset(change.first)
            second = frozenset(change.second)
            affected_mask = topology.mask_for(first) | topology.mask_for(
                second
            )
            view_seq += 1
            installs = ((affected_mask, view_seq),)
            topology.replace(
                (first, second), ((first | second, affected_mask),)
            )
        late_mask = 0
        remaining = affected_mask
        while remaining:
            low = remaining & -remaining
            if draw() < cut_probability:
                late_mask |= low
            remaining ^= low
        for mask, seq in installs:
            comp_seq[mask] = seq
        current = set(topology.masks)
        comp_seq = {m: s for m, s in comp_seq.items() if m in current}
        changes.append(
            CompiledChange(
                round_index=round_index,
                affected_mask=affected_mask,
                late_mask=late_mask,
                installs=installs,
            )
        )
    return CompiledRun(
        run_index=run_index,
        changes=tuple(changes),
        t_last=round_index,
        final_components=tuple(sorted(comp_seq.items())),
    )


def compile_case(config) -> List[CompiledRun]:
    """Compile every run of a fresh-start case, in run order.

    One schedule instance serves all runs (exactly as ``run_case``
    builds it once — :class:`~repro.net.schedule.BurstSchedule` is
    stateful across runs, so sharing the instance is part of the
    equivalence contract).
    """
    schedule = config.make_schedule()
    generator = config.change_generator
    if generator is None:
        from repro.net.changes import UniformChangeGenerator

        generator = UniformChangeGenerator()
    compiled: List[CompiledRun] = []
    for run_index in range(config.run_offset, config.run_offset + config.runs):
        fault_rng = derive_rng(
            config.master_seed, *config.case_label(), run_index
        )
        gaps = schedule.draw_gaps(fault_rng, config.n_changes)
        compiled.append(
            compile_run(
                run_index,
                gaps,
                fault_rng,
                generator,
                config.n_processes,
                config.cut_probability,
            )
        )
    return compiled
