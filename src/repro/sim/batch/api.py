"""Public entry point of the batched campaign kernel.

``run_case_batched`` is the drop-in counterpart of
:func:`repro.sim.campaign.run_case` for the configurations the kernel's
equivalence proof covers.  Validation is loud by design: anything the
kernel cannot reproduce *exactly* raises
:class:`~repro.errors.UnsupportedBatchConfig` up front instead of
silently diverging; ``run_case(kernel="batched")`` catches that error
and falls back to the scalar engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.errors import SimulationError, UnsupportedBatchConfig
from repro.net.changes import SkewedPartitionGenerator, UniformChangeGenerator
from repro.sim.batch.bitops import MAX_PROCESSES
from repro.sim.batch.compile import compile_case
from repro.sim.batch.kernel import KERNEL_ALGORITHMS, execute_batch
from repro.sim.campaign import MODE_FRESH, CaseConfig, CaseResult

#: Change generator types the compiler replays bit-exactly.  The checks
#: are exact-type on purpose: a subclass (e.g. the crash/recovery fault
#: generator) may consume RNG draws or propose change kinds the
#: compiler does not model.
SUPPORTED_GENERATORS = (UniformChangeGenerator, SkewedPartitionGenerator)


@dataclass
class BatchCaseResult(CaseResult):
    """A :class:`CaseResult` plus the kernel's final-state fingerprints.

    ``final_components`` holds, per run, the (member mask, view seq)
    pairs of the components standing at the end of the run;
    ``final_primary_masks`` the per-run mask of processes that finished
    in the primary.  The differential suite compares both against the
    scalar engine's final object state.
    """

    final_components: List[Tuple[Tuple[int, int], ...]] = field(
        default_factory=list
    )
    final_primary_masks: List[int] = field(default_factory=list)


def ensure_batchable(
    config: CaseConfig, observers: Sequence = ()
) -> None:
    """Raise ``UnsupportedBatchConfig`` unless the kernel covers ``config``.

    Raises ``SimulationError`` (not ``UnsupportedBatchConfig``) for
    configurations the *scalar* engine rejects too — those must not
    fall back, they must fail the same way everywhere.
    """
    # Scalar-parity rejections first (DriverLoop.__init__).
    if config.n_processes < 2:
        raise SimulationError(
            "the study needs at least two processes (a single process "
            "admits no connectivity changes)"
        )
    if not 0.0 <= config.cut_probability <= 1.0:
        raise SimulationError("cut_probability must be in [0, 1]")

    if observers:
        raise UnsupportedBatchConfig(
            "the batched kernel runs no object engine, so driver-level "
            "observers (tracing, metrics, fault oracles) cannot attach; "
            "use kernel='scalar' for observed runs"
        )
    if config.mode != MODE_FRESH:
        raise UnsupportedBatchConfig(
            "cascading cases thread algorithm state across runs; only "
            "fresh-start cases are batchable"
        )
    if config.n_processes > MAX_PROCESSES:
        raise UnsupportedBatchConfig(
            f"memberships are packed into uint64 lanes; "
            f"n_processes={config.n_processes} exceeds {MAX_PROCESSES}"
        )
    if config.algorithm not in KERNEL_ALGORITHMS:
        raise UnsupportedBatchConfig(
            f"algorithm {config.algorithm!r} has no batched "
            f"implementation (supported: {', '.join(KERNEL_ALGORITHMS)})"
        )
    for flag in (
        "collect_ambiguous",
        "collect_message_sizes",
        "collect_metrics",
        "collect_causal",
    ):
        if getattr(config, flag):
            raise UnsupportedBatchConfig(
                f"{flag} needs the per-round object engine hooks; "
                "use kernel='scalar' to collect statistics"
            )
    generator = config.change_generator
    if generator is not None and type(generator) not in SUPPORTED_GENERATORS:
        raise UnsupportedBatchConfig(
            f"change generator {type(generator).__name__} is outside the "
            "compiler's replayed surface (fault-model generators consume "
            "RNG draws the batch compiler does not model)"
        )
    # config.check_invariants is accepted but inert: the kernel has no
    # object graph to check.  The differential suite, not the runtime
    # checker, is the batched path's safety net.


def run_case_batched(
    config: CaseConfig, observers: Sequence = ()
) -> BatchCaseResult:
    """Execute a case on the batched kernel; exact scalar equivalence."""
    ensure_batchable(config, observers)
    compiled = compile_case(config)
    outcome = execute_batch(
        config.algorithm,
        config.n_processes,
        compiled,
        config.max_quiescence_rounds,
    )
    available = sum(1 for ok in outcome.outcomes if ok)
    return BatchCaseResult(
        config=config,
        availability_percent=100.0 * available / len(outcome.outcomes),
        outcomes=outcome.outcomes,
        rounds_total=outcome.rounds_total,
        changes_total=outcome.changes_total,
        final_components=[run.final_components for run in compiled],
        final_primary_masks=outcome.final_primary_masks,
    )
