"""Batched campaign kernel: whole cases in lockstep on packed bitmasks.

Opt-in backend for :func:`repro.sim.campaign.run_case` (pass
``kernel="batched"``); the scalar :class:`~repro.sim.driver.DriverLoop`
remains the authoritative oracle and ``tests/test_batch_differential.py``
pins exact per-run equivalence.  See ``docs/performance.md`` for the
representation and the supported surface.
"""

from repro.sim.batch.api import (
    BatchCaseResult,
    ensure_batchable,
    run_case_batched,
)
from repro.sim.batch.compile import CompiledChange, CompiledRun, compile_case
from repro.sim.batch.kernel import KERNEL_ALGORITHMS, execute_batch

__all__ = [
    "BatchCaseResult",
    "CompiledChange",
    "CompiledRun",
    "KERNEL_ALGORITHMS",
    "compile_case",
    "ensure_batchable",
    "execute_batch",
    "run_case_batched",
]
