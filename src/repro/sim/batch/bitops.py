"""Bitmask primitives for the batched campaign kernel.

Process sets live as packed bitmasks: bit ``p`` set means process ``p``
is a member.  Two flavours share one semantics:

* scalar helpers over plain Python ints (arbitrary precision, but the
  kernel caps the universe at 64 processes so every mask also fits a
  ``uint64``) — these drive the sparse per-component protocol logic;
* vectorized helpers over numpy ``uint64`` arrays — these drive the
  bulk membership bookkeeping and the simple-majority baseline, one
  batch of runs per operation.

Every predicate mirrors a function of :mod:`repro.core.quorum` (or the
session order of :mod:`repro.core.session`) exactly; the property tests
in ``tests/test_batch_bitops.py`` pin the agreement on random
memberships up to the ``n = 64`` boundary.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Iterator, List, Tuple

import numpy as np

from repro.types import ProcessId

#: The kernel packs memberships into uint64 lanes, so a batch supports
#: at most 64 processes (the thesis' full scale).
MAX_PROCESSES = 64

_ONE = np.uint64(1)


# ----------------------------------------------------------------------
# Scalar (Python int) masks.
# ----------------------------------------------------------------------


def mask_of(members: Iterable[ProcessId]) -> int:
    """Pack an iterable of process ids into a bitmask."""
    mask = 0
    for pid in members:
        mask |= 1 << pid
    return mask


def members_of(mask: int) -> FrozenSet[ProcessId]:
    """Unpack a bitmask into the frozenset the object engine uses."""
    return frozenset(iter_bits(mask))


def iter_bits(mask: int) -> Iterator[ProcessId]:
    """Yield the set bit positions of ``mask`` in ascending order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def bits_list(mask: int) -> List[ProcessId]:
    """The set bit positions of ``mask``, ascending (sorted members)."""
    return list(iter_bits(mask))


def popcount(mask: int) -> int:
    """Number of members in the mask."""
    return mask.bit_count()


def lowest_bit(mask: int) -> int:
    """The lexically smallest member (lowest set bit position)."""
    if not mask:
        raise ValueError("empty mask has no smallest member")
    return (mask & -mask).bit_length() - 1


def is_majority_mask(x: int, y: int) -> bool:
    """``repro.core.quorum.is_majority`` over masks."""
    if not y:
        raise ValueError("majority of an empty set is undefined")
    return 2 * (x & y).bit_count() > y.bit_count()


def is_subquorum_mask(x: int, y: int) -> bool:
    """Thesis Fig. 3-4 SUBQUORUM(X, Y) over masks.

    More than half of ``y`` in ``x``, or exactly half and ``y``'s
    lexically smallest member (its lowest set bit) in ``x``.
    """
    if not y:
        raise ValueError("subquorum of an empty set is undefined")
    doubled = 2 * (x & y).bit_count()
    size = y.bit_count()
    if doubled > size:
        return True
    if doubled == size:
        return x & (y & -y) != 0
    return False


def simple_majority_primary_mask(component: int, universe: int) -> bool:
    """``repro.core.quorum.simple_majority_primary`` over masks."""
    if not component:
        return False
    return is_subquorum_mask(component, universe)


def members_gt(a: int, b: int) -> bool:
    """Does member-mask ``a`` sort after ``b`` as a sorted-pid tuple?

    This is the deterministic tie-break of the session total order
    (:class:`repro.core.session.Session` compares equal numbers by
    ``sorted_members`` tuples).  Derivation: let ``d`` be the lowest
    differing bit — everything below it is a shared tuple prefix.  If
    ``d`` is in ``a``, the tuples first differ where ``a`` holds ``d``
    and ``b`` holds either a later pid (making ``a`` smaller) or
    nothing at all (making ``b`` a proper prefix, hence smaller).
    """
    if a == b:
        return False
    diff = a ^ b
    low = diff & -diff
    if a & low:
        # a holds the first differing pid: a > b only when b has no
        # member beyond it (b is a proper prefix of a's tuple).
        return b & ~((low << 1) - 1) == 0
    # b holds the first differing pid: a > b when a continues past it.
    return a & ~((low << 1) - 1) != 0


def session_gt(a: Tuple[int, int], b: Tuple[int, int]) -> bool:
    """Total session order over ``(number, member_mask)`` pairs.

    Mirrors :meth:`repro.core.session.Session.__gt__`: numbers first,
    then the sorted-member-tuple tie-break.
    """
    if a[0] != b[0]:
        return a[0] > b[0]
    return members_gt(a[1], b[1])


def max_session_pair(sessions: Iterable[Tuple[int, int]]) -> Tuple[int, int]:
    """The maximum of non-empty ``(number, mask)`` pairs under session order."""
    best = None
    for session in sessions:
        if best is None or session_gt(session, best):
            best = session
    if best is None:
        raise ValueError("max of no sessions")
    return best


# ----------------------------------------------------------------------
# Vectorized (numpy uint64) masks.
# ----------------------------------------------------------------------


def masks_array(masks: Iterable[int]) -> np.ndarray:
    """Pack an iterable of scalar masks into a ``uint64`` array."""
    return np.fromiter((int(m) for m in masks), dtype=np.uint64)


def popcount_vec(masks: np.ndarray) -> np.ndarray:
    """Per-lane popcount of a ``uint64`` mask array."""
    return np.bitwise_count(masks)


def lowest_bit_vec(masks: np.ndarray) -> np.ndarray:
    """Per-lane lowest set bit (as a mask; 0 lanes stay 0)."""
    # Two's complement negation under uint64 wraparound isolates the
    # lowest set bit exactly as ``mask & -mask`` does for Python ints.
    return masks & (~masks + _ONE)


def is_majority_vec(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Vectorized ``is_majority`` (lanes with empty ``y`` are False)."""
    return 2 * np.bitwise_count(x & y) > np.bitwise_count(y)


def is_subquorum_vec(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Vectorized SUBQUORUM(X, Y) (lanes with empty ``y`` are False).

    The scalar predicate rejects empty ``y`` loudly; the vectorized
    form is used on component lanes that are non-empty by construction,
    so empty lanes simply report False.
    """
    inter = 2 * np.bitwise_count(x & y)
    size = np.bitwise_count(y)
    tie = (inter == size) & ((x & lowest_bit_vec(y)) != 0) & (y != 0)
    return (inter > size) | tie


def simple_majority_primary_vec(
    components: np.ndarray, universe: np.ndarray
) -> np.ndarray:
    """Vectorized §3.3 baseline (empty component lanes are False)."""
    return is_subquorum_vec(components, universe) & (components != 0)


def expand_bits(masks: np.ndarray, n_processes: int) -> np.ndarray:
    """Expand a ``(K,)`` mask array into a ``(K, n)`` boolean matrix."""
    shifts = np.arange(n_processes, dtype=np.uint64)
    return (masks[:, None] >> shifts[None, :]) & _ONE != 0
