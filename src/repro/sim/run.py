"""Single-run convenience wrappers around the driver loop."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.net.changes import UniformChangeGenerator
from repro.net.schedule import ChangeSchedule, GeometricSchedule
from repro.sim.driver import DriverLoop
from repro.sim.invariants import InvariantChecker
from repro.sim.rng import derive_rng
from repro.sim.stats import RunObserver
from repro.types import ProcessId


@dataclass
class RunConfig:
    """Parameters of one simulated run (one point-sample of a case)."""

    algorithm: str
    n_processes: int = 64
    n_changes: int = 6
    mean_rounds_between_changes: float = 4.0
    seed: int = 0
    check_invariants: bool = True
    max_quiescence_rounds: int = 400
    schedule: Optional[ChangeSchedule] = None
    change_generator: Optional[UniformChangeGenerator] = None

    def make_schedule(self) -> ChangeSchedule:
        """The configured schedule, defaulting to the thesis' geometric."""
        if self.schedule is not None:
            return self.schedule
        return GeometricSchedule(self.mean_rounds_between_changes)


@dataclass(frozen=True)
class RunResult:
    """Outcome of one run, recorded at quiescence."""

    available: bool
    rounds: int
    changes_injected: int
    n_components: int
    primary_members: Optional[Tuple[ProcessId, ...]]


def build_driver(
    config: RunConfig, observers: Sequence[RunObserver] = ()
) -> DriverLoop:
    """A fresh driver for the given configuration.

    The fault RNG's label path deliberately excludes the algorithm
    name: every algorithm tested under the same seed experiences the
    identical fault sequence (thesis §4.1).
    """
    fault_rng = derive_rng(
        config.seed,
        "faults",
        config.n_processes,
        config.n_changes,
        config.mean_rounds_between_changes,
    )
    return DriverLoop(
        algorithm=config.algorithm,
        n_processes=config.n_processes,
        fault_rng=fault_rng,
        change_generator=config.change_generator,
        observers=[InvariantChecker(enabled=config.check_invariants), *observers],
        max_quiescence_rounds=config.max_quiescence_rounds,
    )


def run_single(
    config: RunConfig, observers: Sequence[RunObserver] = ()
) -> RunResult:
    """Execute one fresh-start run and summarize its outcome."""
    driver = build_driver(config, observers)
    schedule = config.make_schedule()
    gaps = schedule.draw_gaps(driver.fault_rng, config.n_changes)
    driver.execute_run(gaps)
    return RunResult(
        available=driver.primary_exists(),
        rounds=driver.round_index,
        changes_injected=driver.changes_injected,
        n_components=len(driver.topology.components),
        primary_members=driver.primary_members(),
    )
