"""Statistics collection for simulations (thesis §4.1, §4.2, §3.4).

Observers hang off the driver loop and record what the thesis measured:

* :class:`AvailabilityCollector` — did each run end with a primary
  component (the availability percentage of Figs. 4-1..4-6);
* :class:`AmbiguousSessionCollector` — how many ambiguous sessions one
  monitored process retains, sampled at every connectivity change
  ("in progress", Fig. 4-8) and at the stable end of each run
  ("stable", Fig. 4-7);
* :class:`MessageSizeCollector` — estimated wire size of the piggyback
  broadcasts (the §3.4/"two kilobytes" accounting);
* :class:`FormationTimeCollector` — rounds from a view's installation
  to its formation as a primary (blocking-period visibility).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, TYPE_CHECKING

from repro.core.message import Message, estimate_piggyback_size_bits
from repro.obs import Subscriber

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.driver import DriverLoop


class RunObserver(Subscriber):
    """Back-compat name for :class:`repro.obs.Subscriber`.

    The historical driver-observer base class; it adds nothing to the
    unified subscriber protocol (deliberately — method identity is how
    the event bus detects overridden hooks).  New code should subclass
    :class:`repro.obs.Subscriber` directly.
    """


class AvailabilityCollector(RunObserver):
    """Fraction of runs that end with a live primary component."""

    def __init__(self) -> None:
        self.outcomes: List[bool] = []

    def on_run_end(self, driver: "DriverLoop") -> None:
        self.outcomes.append(driver.primary_exists())

    @property
    def runs(self) -> int:
        return len(self.outcomes)

    @property
    def available_runs(self) -> int:
        return sum(self.outcomes)

    @property
    def availability_percent(self) -> float:
        if not self.outcomes:
            raise ValueError("no runs recorded")
        return 100.0 * self.available_runs / self.runs


class AmbiguousSessionCollector(RunObserver):
    """Ambiguous-session counts of one monitored process (§4.2).

    "For each run, the process reported both the number of ambiguous
    sessions stored when the network situation stabilized at the end of
    the run and the number of ambiguous sessions present each time a
    connectivity change occurred."
    """

    def __init__(self, monitored_pid: int = 0) -> None:
        self.monitored_pid = monitored_pid
        #: Histogram of counts sampled at each connectivity change.
        self.in_progress: Counter = Counter()
        #: Histogram of counts sampled at the stable end of each run.
        self.stable: Counter = Counter()
        #: As ``stable``, but only for runs the monitored process ends
        #: inside the primary component — the thesis' "at the conclusion
        #: of a successful run, none of the algorithms retains any
        #: ambiguous sessions at all" is about exactly these samples.
        self.stable_in_primary: Counter = Counter()
        self.max_observed: int = 0

    def _sample(self, driver: "DriverLoop") -> Optional[int]:
        if driver.topology.is_crashed(self.monitored_pid):
            return None
        count = driver.algorithms[self.monitored_pid].ambiguous_session_count()
        self.max_observed = max(self.max_observed, count)
        return count

    def on_change(self, driver: "DriverLoop", change: Any) -> None:
        count = self._sample(driver)
        if count is not None:
            self.in_progress[count] += 1

    def on_run_end(self, driver: "DriverLoop") -> None:
        count = self._sample(driver)
        if count is not None:
            self.stable[count] += 1
            if driver.algorithms[self.monitored_pid].in_primary():
                self.stable_in_primary[count] += 1

    @staticmethod
    def _percent_with_sessions(histogram: Counter) -> Dict[int, float]:
        total = sum(histogram.values())
        if total == 0:
            return {}
        return {
            count: 100.0 * occurrences / total
            for count, occurrences in sorted(histogram.items())
            if count > 0
        }

    def stable_percentages(self) -> Dict[int, float]:
        """% of runs retaining k>0 sessions when stable (Fig. 4-7 bars)."""
        return self._percent_with_sessions(self.stable)

    def in_progress_percentages(self) -> Dict[int, float]:
        """% of changes at which k>0 sessions were held (Fig. 4-8 bars)."""
        return self._percent_with_sessions(self.in_progress)


class MessageSizeCollector(RunObserver):
    """Estimated sizes of the algorithm's piggyback broadcasts (§3.4)."""

    def __init__(self) -> None:
        self.broadcasts: int = 0
        self.total_bits: int = 0
        self.max_bits: int = 0

    def on_broadcast(self, driver: "DriverLoop", sender: int, message: Message) -> None:
        if message.piggyback is None:
            return
        bits = estimate_piggyback_size_bits(
            message.piggyback, universe_size=driver.n_processes
        )
        self.broadcasts += 1
        self.total_bits += bits
        self.max_bits = max(self.max_bits, bits)

    @property
    def max_bytes(self) -> float:
        return self.max_bits / 8.0

    @property
    def mean_bytes(self) -> float:
        if not self.broadcasts:
            return 0.0
        return self.total_bits / 8.0 / self.broadcasts


class BlockingCollector(RunObserver):
    """Per-view blocking accounting (thesis Ch. 1/§3.4 concept).

    "When interrupted, dynamic voting algorithms differ in the length
    of their blocking period."  This collector measures it directly:
    for every installed view it records how long the view lived and
    whether it ever became a primary.

    * a view that forms contributes its rounds-to-form to
      :attr:`formed_durations`;
    * a view replaced before forming contributes its full lifetime to
      :attr:`blocked_lifetimes` (the component was blocked throughout);
    * a view still unformed when its run quiesces is *terminally
      blocked* — the component sits without a primary until the next
      connectivity change, however far away that is.
    """

    def __init__(self) -> None:
        self._birth: Dict[int, int] = {}  # view seq -> round installed
        self._members: Dict[int, frozenset] = {}
        self._member_view: Dict[int, int] = {}  # pid -> its current seq
        self._formed: set = set()
        self.views_observed = 0
        self.formed_durations: List[int] = []
        self.blocked_lifetimes: List[int] = []
        self.terminally_blocked = 0

    def on_round(self, driver: "DriverLoop") -> None:
        # New views retire their members' previous views.
        for view in driver.views_installed_this_round:
            for pid in view.members:
                old_seq = self._member_view.get(pid)
                if old_seq is not None and old_seq in self._birth:
                    self._retire(old_seq, driver.round_index)
                self._member_view[pid] = view.seq
            self.views_observed += 1
            self._birth[view.seq] = driver.round_index
            self._members[view.seq] = view.members
        # Detect formations among the views still alive.
        for seq in list(self._birth):
            if seq in self._formed:
                continue
            members = self._members[seq]
            claimant = next(iter(members))
            algorithm = driver.algorithms[claimant]
            if algorithm.in_primary() and algorithm.current_view.seq == seq:
                self._formed.add(seq)
                self.formed_durations.append(
                    driver.round_index - self._birth[seq]
                )

    def _retire(self, seq: int, round_index: int) -> None:
        birth = self._birth.pop(seq)
        self._members.pop(seq, None)
        if seq in self._formed:
            self._formed.discard(seq)
        else:
            self.blocked_lifetimes.append(round_index - birth)

    def on_run_end(self, driver: "DriverLoop") -> None:
        # Views alive and unformed at quiescence are terminally blocked:
        # quiescence means no message will ever arrive, so they cannot
        # form until a connectivity change replaces them.  Stop tracking
        # them so cascading campaigns do not double-count.
        for seq in list(self._birth):
            if seq not in self._formed:
                self.terminally_blocked += 1
                self._birth.pop(seq)
                self._members.pop(seq, None)

    @property
    def formation_rate(self) -> float:
        """Fraction of observed views that became primaries."""
        if not self.views_observed:
            return float("nan")
        return len(self.formed_durations) / self.views_observed

    @property
    def mean_rounds_to_form(self) -> float:
        if not self.formed_durations:
            return float("nan")
        return sum(self.formed_durations) / len(self.formed_durations)

    @property
    def mean_blocked_lifetime(self) -> float:
        if not self.blocked_lifetimes:
            return float("nan")
        return sum(self.blocked_lifetimes) / len(self.blocked_lifetimes)


class FormationTimeCollector(RunObserver):
    """Rounds between a view's installation and its formation as primary.

    Measures the window during which an algorithm is exposed to
    interruption — the §3.4 message-round comparison, observed live.
    """

    def __init__(self) -> None:
        self._view_installed_round: Dict[int, int] = {}
        self._formed_views: set = set()
        self.formation_rounds: List[int] = []

    def on_round(self, driver: "DriverLoop") -> None:
        for view in driver.views_installed_this_round:
            self._view_installed_round[view.seq] = driver.round_index
        for view_seq, installed in list(self._view_installed_round.items()):
            if view_seq in self._formed_views:
                continue
            claimants = [
                pid
                for pid, algorithm in driver.algorithms.items()
                if algorithm.in_primary()
                and algorithm.current_view.seq == view_seq
            ]
            if claimants:
                self._formed_views.add(view_seq)
                self.formation_rounds.append(driver.round_index - installed)
        # A view that was replaced can never form; prune so long
        # campaigns stay linear in time and memory.
        if len(self._view_installed_round) > 256:
            horizon = max(self._view_installed_round) - 128
            for view_seq in list(self._view_installed_round):
                if view_seq < horizon:
                    self._view_installed_round.pop(view_seq)
                    self._formed_views.discard(view_seq)

    @property
    def mean_rounds_to_form(self) -> float:
        if not self.formation_rounds:
            return float("nan")
        return sum(self.formation_rounds) / len(self.formation_rounds)
