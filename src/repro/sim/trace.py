"""Structured execution tracing.

A :class:`TraceRecorder` observes a driver loop and records every
interesting event — rounds, broadcasts, connectivity changes, view
installations, primary formations and losses — as typed, timestamped
(by round) entries.  Traces serve three audiences:

* debugging an algorithm implementation (the renderer draws a compact
  per-round timeline of who sent what and which views exist);
* tests that assert *how* an execution unfolded, not just its outcome;
* export (`to_dicts`) for external tooling.

Recording is allocation-light: one small dataclass per event, bounded
by ``max_events`` so long cascading campaigns cannot exhaust memory.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.message import Message
from repro.obs.canonical import canonical_jsonl, canonical_line
from repro.sim.stats import RunObserver
from repro.types import ProcessId, sorted_members


@dataclass(frozen=True)
class TraceEvent:
    """Base class: something that happened at a given round."""

    round_index: int

    @property
    def kind(self) -> str:
        return type(self).__name__.replace("Event", "").lower()

    def describe(self) -> str:  # pragma: no cover - overridden
        """One-line human-readable rendering for the timeline."""
        return self.kind

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible form of this event."""
        data: Dict[str, Any] = {"kind": self.kind, "round": self.round_index}
        data.update(self._fields())
        return data

    def _fields(self) -> Dict[str, Any]:
        return {}


@dataclass(frozen=True)
class BroadcastEvent(TraceEvent):
    sender: ProcessId
    items: Tuple[str, ...]

    def describe(self) -> str:
        inner = ", ".join(self.items) if self.items else "app payload"
        return f"p{self.sender} ⇒ [{inner}]"

    def _fields(self) -> Dict[str, Any]:
        return {"sender": self.sender, "items": list(self.items)}


@dataclass(frozen=True)
class ChangeEvent(TraceEvent):
    description: str
    components_after: Tuple[Tuple[ProcessId, ...], ...]

    def describe(self) -> str:
        parts = " ".join(
            "{" + ",".join(map(str, c)) + "}" for c in self.components_after
        )
        return f"change {self.description} → {parts}"

    def _fields(self) -> Dict[str, Any]:
        return {
            "change": self.description,
            "components_after": [list(c) for c in self.components_after],
        }


@dataclass(frozen=True)
class ViewEvent(TraceEvent):
    view_seq: int
    members: Tuple[ProcessId, ...]

    def describe(self) -> str:
        inner = ",".join(map(str, self.members))
        return f"view#{self.view_seq}{{{inner}}} installed"

    def _fields(self) -> Dict[str, Any]:
        return {"view_seq": self.view_seq, "members": list(self.members)}


@dataclass(frozen=True)
class PrimaryFormedEvent(TraceEvent):
    members: Tuple[ProcessId, ...]

    def describe(self) -> str:
        inner = ",".join(map(str, self.members))
        return f"PRIMARY {{{inner}}}"

    def _fields(self) -> Dict[str, Any]:
        return {"members": list(self.members)}


@dataclass(frozen=True)
class PrimaryLostEvent(TraceEvent):
    members: Tuple[ProcessId, ...]

    def describe(self) -> str:
        inner = ",".join(map(str, self.members))
        return f"primary {{{inner}}} dissolved"

    def _fields(self) -> Dict[str, Any]:
        return {"members": list(self.members)}


@dataclass(frozen=True)
class RunBoundaryEvent(TraceEvent):
    run_index: int
    boundary: str  # "start" | "end"
    available: Optional[bool] = None

    def describe(self) -> str:
        if self.boundary == "start":
            return f"— run {self.run_index} begins —"
        verdict = "available" if self.available else "NO primary"
        return f"— run {self.run_index} ends: {verdict} —"

    def _fields(self) -> Dict[str, Any]:
        return {
            "run_index": self.run_index,
            "boundary": self.boundary,
            "available": self.available,
        }


#: kind string → event class, the inverse of :attr:`TraceEvent.kind`.
_EVENT_TYPES: Dict[str, type] = {
    "broadcast": BroadcastEvent,
    "change": ChangeEvent,
    "view": ViewEvent,
    "primaryformed": PrimaryFormedEvent,
    "primarylost": PrimaryLostEvent,
    "runboundary": RunBoundaryEvent,
}


def event_from_dict(data: Mapping[str, Any]) -> TraceEvent:
    """Rebuild one :class:`TraceEvent` from its :meth:`~TraceEvent.to_dict` form.

    The exact inverse of the export encoding:
    ``event_from_dict(e.to_dict()).to_dict() == e.to_dict()`` for every
    event kind (property-tested), which is what lets recorded traces be
    replayed offline — through the span reconstructor, the timeline
    renderer, or a fresh digest — from nothing but their JSONL.
    """
    kind = data.get("kind")
    round_index = int(data["round"])
    if kind == "broadcast":
        return BroadcastEvent(
            round_index=round_index,
            sender=int(data["sender"]),
            items=tuple(str(item) for item in data["items"]),
        )
    if kind == "change":
        return ChangeEvent(
            round_index=round_index,
            description=str(data["change"]),
            components_after=tuple(
                tuple(int(p) for p in component)
                for component in data["components_after"]
            ),
        )
    if kind == "view":
        return ViewEvent(
            round_index=round_index,
            view_seq=int(data["view_seq"]),
            members=tuple(int(p) for p in data["members"]),
        )
    if kind == "primaryformed":
        return PrimaryFormedEvent(
            round_index=round_index,
            members=tuple(int(p) for p in data["members"]),
        )
    if kind == "primarylost":
        return PrimaryLostEvent(
            round_index=round_index,
            members=tuple(int(p) for p in data["members"]),
        )
    if kind == "runboundary":
        available = data.get("available")
        return RunBoundaryEvent(
            round_index=round_index,
            run_index=int(data["run_index"]),
            boundary=str(data["boundary"]),
            available=None if available is None else bool(available),
        )
    raise ValueError(f"unknown trace event kind {kind!r}")


class TraceRecorder(RunObserver):
    """Observer that accumulates a bounded event trace."""

    def __init__(self, max_events: int = 100_000) -> None:
        if max_events < 1:
            raise ValueError("max_events must be positive")
        self.max_events = max_events
        self.events: List[TraceEvent] = []
        self.truncated = False
        #: Events that arrived after the cap and were not recorded.
        self.dropped_events = 0
        self._run_index = 0
        self._live_primary: Optional[Tuple[ProcessId, ...]] = None

    # ------------------------------------------------------------------
    # Observer hooks.
    # ------------------------------------------------------------------

    def on_run_start(self, driver) -> None:
        self._append(
            RunBoundaryEvent(
                round_index=driver.round_index,
                run_index=self._run_index,
                boundary="start",
            )
        )

    def on_broadcast(self, driver, sender: ProcessId, message: Message) -> None:
        items: Tuple[str, ...] = ()
        if message.piggyback is not None:
            items = tuple(
                type(item).__name__ for item in message.piggyback.items
            )
        self._append(
            BroadcastEvent(
                round_index=driver.round_index, sender=sender, items=items
            )
        )

    def on_change(self, driver, change) -> None:
        self._append(
            ChangeEvent(
                round_index=driver.round_index,
                description=change.describe(),
                components_after=tuple(
                    sorted_members(c) for c in driver.topology.components
                ),
            )
        )

    def on_round(self, driver) -> None:
        for view in driver.views_installed_this_round:
            self._append(
                ViewEvent(
                    round_index=driver.round_index,
                    view_seq=view.seq,
                    members=sorted_members(view.members),
                )
            )
        current = driver.primary_members()
        if current != self._live_primary:
            if self._live_primary is not None:
                self._append(
                    PrimaryLostEvent(
                        round_index=driver.round_index,
                        members=self._live_primary,
                    )
                )
            if current is not None:
                self._append(
                    PrimaryFormedEvent(
                        round_index=driver.round_index, members=current
                    )
                )
            self._live_primary = current

    def on_run_end(self, driver) -> None:
        self._append(
            RunBoundaryEvent(
                round_index=driver.round_index,
                run_index=self._run_index,
                boundary="end",
                available=driver.primary_exists(),
            )
        )
        self._run_index += 1

    # ------------------------------------------------------------------
    # Queries and export.
    # ------------------------------------------------------------------

    def _append(self, event: TraceEvent) -> None:
        if len(self.events) >= self.max_events:
            self.truncated = True
            self.dropped_events += 1
            return
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def of_kind(self, kind: str) -> List[TraceEvent]:
        """All recorded events of one kind (e.g. ``"view"``)."""
        return [event for event in self.events if event.kind == kind]

    def formations(self) -> List[PrimaryFormedEvent]:
        """Every primary-formation event, in order."""
        return [e for e in self.events if isinstance(e, PrimaryFormedEvent)]

    def rounds_with_traffic(self) -> List[int]:
        """Round indices at which at least one broadcast happened."""
        return sorted({e.round_index for e in self.events if isinstance(e, BroadcastEvent)})

    def to_dicts(self) -> List[Dict[str, Any]]:
        """JSON-ready form of the whole trace.

        A truncated trace ends with an explicit marker entry carrying
        the dropped-event count, so capped exports can never be
        mistaken for complete ones.  Untruncated traces export exactly
        their events — no marker — which keeps historical golden files
        byte-stable.
        """
        dicts = [event.to_dict() for event in self.events]
        if self.truncated:
            dicts.append(
                {
                    "kind": "truncation",
                    "truncated": True,
                    "dropped_events": self.dropped_events,
                    "max_events": self.max_events,
                }
            )
        return dicts

    def iter_rounds(self) -> Iterator[Tuple[int, List[TraceEvent]]]:
        """Events grouped by round, in order."""
        current_round: Optional[int] = None
        bucket: List[TraceEvent] = []
        for event in self.events:
            if current_round is None:
                current_round = event.round_index
            if event.round_index != current_round:
                yield current_round, bucket
                current_round, bucket = event.round_index, []
            bucket.append(event)
        if bucket:
            assert current_round is not None
            yield current_round, bucket


def trace_canonical_json(recorder: TraceRecorder) -> str:
    """Canonical JSON text of a whole trace (sorted keys, fixed layout).

    The same execution always produces the same bytes, so equality of
    two canonical texts *is* byte-identity of the two executions as far
    as the trace can see — rounds, broadcasts, changes, views, primary
    formations and losses.  ``repro.bench`` and the golden-file
    regression tests both build on this.
    """
    payload = {
        "kind": "repro.sim/trace",
        "truncated": recorder.truncated,
        "events": recorder.to_dicts(),
    }
    return json.dumps(payload, sort_keys=True, indent=1) + "\n"


def _event_line(event: TraceEvent) -> bytes:
    """One event as a canonical JSON line (sorted keys, newline-framed).

    Delegates to the shared :mod:`repro.obs.canonical` encoder — the
    same framing the metrics and span exporters use — so every golden
    digest in the repo is defined by one encoder.
    """
    return canonical_line(event.to_dict())


def trace_digest(recorder: TraceRecorder) -> str:
    """SHA-256 hex digest over the canonical per-event JSON stream.

    Digests let large executions (a 10k-round campaign) be pinned in a
    golden file of a few dozen bytes instead of megabytes of JSON.  The
    digest is defined over the newline-framed canonical JSON of each
    event in order, which is exactly what :class:`TraceDigester`
    computes incrementally — the two always agree on the same run.
    """
    sha = hashlib.sha256()
    for event in recorder.events:
        sha.update(_event_line(event))
    return sha.hexdigest()


def trace_to_jsonl(recorder: TraceRecorder) -> str:
    """The whole trace as canonical JSON lines (one event per line).

    Same per-event bytes as the digest stream, newline-framed by the
    shared :func:`repro.obs.canonical.canonical_jsonl` encoder.  A
    truncated trace ends with the explicit ``truncation`` marker line
    from :meth:`TraceRecorder.to_dicts`, so capped exports stay honest.
    """
    return canonical_jsonl(recorder.to_dicts())


def events_from_jsonl(text: str) -> Tuple[List[TraceEvent], bool]:
    """Parse trace JSONL back into events.

    Returns ``(events, truncated)`` — ``truncated`` is True when the
    text ends with a ``truncation`` marker line (which is consumed, not
    returned as an event).
    """
    events: List[TraceEvent] = []
    truncated = False
    for line_number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as error:
            raise ValueError(
                f"trace line {line_number}: not valid JSON ({error})"
            ) from error
        if data.get("kind") == "truncation":
            truncated = True
            continue
        events.append(event_from_dict(data))
    return events, truncated


def write_trace_jsonl(
    recorder: TraceRecorder, path: Union[str, Path]
) -> Path:
    """Write the canonical trace JSONL; returns the written path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(trace_to_jsonl(recorder), encoding="utf-8")
    return path


def load_trace_jsonl(path: Union[str, Path]) -> Tuple[List[TraceEvent], bool]:
    """Read one trace JSONL file back into ``(events, truncated)``."""
    return events_from_jsonl(Path(path).read_text(encoding="utf-8"))


def recorder_from_events(
    events: Iterable[TraceEvent], truncated: bool = False
) -> TraceRecorder:
    """A recorder pre-filled with existing events (offline replay).

    Gives loaded traces access to every recorder-based consumer —
    :func:`render_timeline`, :func:`trace_digest`,
    :func:`~repro.obs.causal.spans_from_recorder` — without having
    observed a live driver.
    """
    recorder = TraceRecorder()
    recorder.events = list(events)
    recorder.max_events = max(recorder.max_events, len(recorder.events))
    recorder.truncated = truncated
    return recorder


class TraceDigester(TraceRecorder):
    """A trace observer that hashes events instead of storing them.

    Observes exactly the events a :class:`TraceRecorder` would record,
    but folds each one into a running SHA-256 the moment it happens, so
    arbitrarily long campaigns can be digest-pinned in O(1) memory.
    ``hexdigest()`` equals :func:`trace_digest` of an untruncated
    recorder observing the same run.
    """

    def __init__(self) -> None:
        super().__init__(max_events=1)
        self._sha = hashlib.sha256()
        self.event_count = 0

    def _append(self, event: TraceEvent) -> None:
        self._sha.update(_event_line(event))
        self.event_count += 1

    def hexdigest(self) -> str:
        """The digest of everything observed so far."""
        return self._sha.hexdigest()


def render_timeline(
    recorder: TraceRecorder,
    max_rounds: int = 200,
    spans: Optional[Iterable[Any]] = None,
) -> str:
    """A compact human-readable timeline of a trace.

    ``spans`` takes attempt spans (any objects with ``members``,
    ``open_round``, ``close_round`` and ``outcome`` — see
    :class:`repro.obs.causal.AttemptSpan`) and weaves their open/close
    marks into the matching round rows, so the timeline shows not just
    what happened but which agreement attempt it belonged to.

    Truncation is marked explicitly at both levels: a display cut at
    ``max_rounds`` appends an elision line counting the rounds and
    events not rendered, and a recording cut at the recorder's
    ``max_events`` appends the dropped-event line — both can appear.
    """
    opened: Dict[int, List[Any]] = {}
    closed: Dict[int, List[Any]] = {}
    if spans is not None:
        for span in spans:
            opened.setdefault(span.open_round, []).append(span)
            if span.close_round is not None:
                closed.setdefault(span.close_round, []).append(span)
    lines: List[str] = []
    shown = 0
    rounds = recorder.iter_rounds()
    for round_index, events in rounds:
        if shown >= max_rounds:
            omitted = 1 + sum(1 for _ in rounds)
            lines.append(
                f"... (timeline cut at max_rounds={max_rounds}: "
                f"{omitted} more rounds omitted, "
                f"{len(recorder.events)} events total)"
            )
            break
        shown += 1
        lines.append(f"r{round_index:>4}:")
        broadcasts = [e for e in events if isinstance(e, BroadcastEvent)]
        others = [e for e in events if not isinstance(e, BroadcastEvent)]
        if broadcasts:
            senders = ",".join(f"p{e.sender}" for e in broadcasts)
            kinds = sorted(
                {item for e in broadcasts for item in e.items}
            )
            suffix = f" [{', '.join(kinds)}]" if kinds else ""
            lines.append(f"       sends: {senders}{suffix}")
        for event in others:
            lines.append(f"       {event.describe()}")
        for span in opened.get(round_index, ()):
            inner = ",".join(map(str, span.members))
            lines.append(f"       ├─ attempt {{{inner}}} opens")
        for span in closed.get(round_index, ()):
            inner = ",".join(map(str, span.members))
            lines.append(f"       └─ attempt {{{inner}}}: {span.outcome}")
    if recorder.truncated:
        lines.append(
            f"(trace truncated at max_events={recorder.max_events}: "
            f"{recorder.dropped_events} events dropped)"
        )
    return "\n".join(lines)
