"""Simulation engine: driver loop, campaigns, invariants, statistics."""

from repro.sim.campaign import (
    MODE_CASCADING,
    MODE_FRESH,
    CaseConfig,
    CaseResult,
    compare_algorithms,
    run_case,
)
from repro.sim.driver import DriverLoop, DriverSnapshot, ProcessEndpoint
from repro.sim.explore import (
    ExplorationResult,
    ExploreStats,
    enumerate_changes,
    enumerate_cuts,
    explore,
    explore_all,
    explore_replay,
)
from repro.sim.invariants import InvariantChecker
from repro.sim.parallel import (
    merge_case_results,
    run_case_sharded,
    run_cases_parallel,
    shard_configs,
)
from repro.sim.rng import derive_rng, derive_seed
from repro.sim.statehash import (
    canonical_driver_state,
    state_digest,
    state_fingerprint,
    symmetric_fingerprint,
)
from repro.sim.run import RunConfig, RunResult, build_driver, run_single
from repro.sim.stats import (
    AmbiguousSessionCollector,
    AvailabilityCollector,
    BlockingCollector,
    FormationTimeCollector,
    MessageSizeCollector,
    RunObserver,
)
from repro.sim.trace import (
    TraceDigester,
    TraceRecorder,
    render_timeline,
    trace_canonical_json,
    trace_digest,
)

__all__ = [
    "AmbiguousSessionCollector",
    "AvailabilityCollector",
    "BlockingCollector",
    "CaseConfig",
    "CaseResult",
    "DriverLoop",
    "DriverSnapshot",
    "ExplorationResult",
    "ExploreStats",
    "FormationTimeCollector",
    "InvariantChecker",
    "MODE_CASCADING",
    "MODE_FRESH",
    "MessageSizeCollector",
    "ProcessEndpoint",
    "RunConfig",
    "RunResult",
    "RunObserver",
    "TraceDigester",
    "TraceRecorder",
    "build_driver",
    "canonical_driver_state",
    "compare_algorithms",
    "derive_rng",
    "derive_seed",
    "enumerate_changes",
    "enumerate_cuts",
    "explore",
    "explore_all",
    "explore_replay",
    "render_timeline",
    "state_digest",
    "state_fingerprint",
    "symmetric_fingerprint",
    "run_case",
    "merge_case_results",
    "run_case_sharded",
    "run_cases_parallel",
    "shard_configs",
    "run_single",
    "trace_canonical_json",
    "trace_digest",
]
