"""Simulation engine: driver loop, campaigns, invariants, statistics."""

from repro.sim.campaign import (
    MODE_CASCADING,
    MODE_FRESH,
    CaseConfig,
    CaseResult,
    compare_algorithms,
    run_case,
)
from repro.sim.driver import DriverLoop, ProcessEndpoint
from repro.sim.explore import (
    ExplorationResult,
    enumerate_changes,
    enumerate_cuts,
    explore,
    explore_all,
)
from repro.sim.invariants import InvariantChecker
from repro.sim.parallel import (
    merge_case_results,
    run_case_sharded,
    run_cases_parallel,
    shard_configs,
)
from repro.sim.rng import derive_rng, derive_seed
from repro.sim.run import RunConfig, RunResult, build_driver, run_single
from repro.sim.stats import (
    AmbiguousSessionCollector,
    AvailabilityCollector,
    BlockingCollector,
    FormationTimeCollector,
    MessageSizeCollector,
    RunObserver,
)
from repro.sim.trace import (
    TraceDigester,
    TraceRecorder,
    render_timeline,
    trace_canonical_json,
    trace_digest,
)

__all__ = [
    "AmbiguousSessionCollector",
    "AvailabilityCollector",
    "BlockingCollector",
    "CaseConfig",
    "CaseResult",
    "DriverLoop",
    "ExplorationResult",
    "FormationTimeCollector",
    "InvariantChecker",
    "MODE_CASCADING",
    "MODE_FRESH",
    "MessageSizeCollector",
    "ProcessEndpoint",
    "RunConfig",
    "RunResult",
    "RunObserver",
    "TraceDigester",
    "TraceRecorder",
    "build_driver",
    "compare_algorithms",
    "derive_rng",
    "derive_seed",
    "enumerate_changes",
    "enumerate_cuts",
    "explore",
    "explore_all",
    "render_timeline",
    "run_case",
    "merge_case_results",
    "run_case_sharded",
    "run_cases_parallel",
    "shard_configs",
    "run_single",
    "trace_canonical_json",
    "trace_digest",
]
