"""Canonical state encoding, hashing and symmetry reduction.

The prefix-sharing explorer (:mod:`repro.sim.explore`) needs to decide,
cheaply and soundly, when two simulation states are *behaviourally
identical* — every future event sequence produces the same messages,
views, primaries and invariant verdicts from both.  This module defines
that judgement:

* :func:`canonical_driver_state` — a nested tuple of primitives built
  from everything behaviour-relevant (topology, view sequence, every
  process's full algorithm state including mid-exchange volatile state,
  and the invariant checker's accumulated chain) and *nothing* else
  (round counters, recorded schedules and the never-consumed fault RNG
  are excluded: they provably do not influence future behaviour).
  Equal encodings imply equal states because the encoder is injective
  on the state space: every container is tagged by kind, every value by
  type, and unknown types fail loudly instead of encoding lossily.
* :func:`state_fingerprint` / :func:`state_digest` — the encoding as a
  hashable memo key / a stable hex digest of it.
* **relabeling** — every encoder takes an optional process-id mapping.
  ``canonical_driver_state(driver, mapping)`` is the *structural*
  relabeling of the encoding: every pid-bearing container is remapped
  through the bijection and re-sorted.  This is a statement about
  encodings of one state, **not** about executions: process ids are
  not behaviourally inert here, because dynamic *linear* voting breaks
  exact-half quorum ties in favour of the lexically smallest member
  (:func:`repro.core.quorum.is_subquorum`, thesis figs. 3-4), so a
  relabeled schedule can take a genuinely different execution path
  whenever a tie-break fires under a min-changing permutation.  That
  is why the explorer's dedup memo always uses the exact fingerprint
  and its symmetry mode is gated to three-process bounds.
* :func:`normalize_view_seqs` — relabeled executions agree everywhere
  *except* the raw ``View.seq`` values: the driver's global counter
  hands the two sibling views of a partition their numbers in raw-pid
  order, so a relabeling that flips which half sorts first swaps the
  two seqs.  That order is bookkeeping, not behaviour — siblings are
  disjoint, so at most one of them can ever form a primary (two would
  be concurrent primaries, which sound algorithms exclude), and every
  equality test on views also keys on the member set.  This function
  quotients the artifact out of an encoding: each seq is replaced by
  its rank *among views with the same member set* (same-member views
  are never siblings, so that order is purely temporal and exactly
  relabeling-equivariant), and repr-sorted containers are re-sorted.
  See ``docs/model-checking.md`` for the full argument.
* :func:`symmetric_fingerprint` — the minimum quotiented encoding over
  all process permutations: equal iff two states are identical up to
  process relabeling and the induced renaming of view sequence
  numbers.  A pure *state* equivalence — because of the linear-voting
  tie-break it does not imply the two states have isomorphic futures,
  so it must never serve as a dedup key.  :func:`canonical_first_step`
  applies the same idea to the explorer's first enumeration level,
  collapsing isomorphic first steps before they are ever executed
  (sound for n=3 only; :func:`repro.sim.explore.explore` enforces
  this).

The encoder is deliberately *type-aware* rather than generic: pid sets,
pid-keyed tables, sessions, views, state items and knowledge books each
have explicit rules, because a generic walk could not know that the
checker's chain is keyed by session numbers (never remapped) while
``last_formed`` is keyed by process ids (always remapped).
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import fields, is_dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.interface import PrimaryComponentAlgorithm
from repro.core.knowledge import KnowledgeBook, StateItem
from repro.core.session import Session
from repro.core.view import View
from repro.net.changes import ConnectivityChange, PartitionChange
from repro.net.topology import Topology
from repro.types import ProcessId

#: Dataclass fields that hold a bare process id and must be remapped
#: under relabeling (protocol items carry pids only under these names).
_PID_FIELD_NAMES = frozenset({"pid", "sender", "owner"})

#: Algorithm attributes holding ``[(pid, item), ...]`` pair lists
#: (early-arrival buffers of the YKD family and DFLS).
_PID_PAIR_LIST_ATTRS = frozenset({"_early_attempts", "_early_confirms"})


def _identity(pid: ProcessId) -> ProcessId:
    return pid


def _as_mapper(
    mapping: Optional[Dict[ProcessId, ProcessId]]
) -> Callable[[ProcessId], ProcessId]:
    if mapping is None:
        return _identity
    return mapping.__getitem__


def _sorted_pids(pids: Iterable[ProcessId], m) -> Tuple[ProcessId, ...]:
    return tuple(sorted(m(pid) for pid in pids))


def encode_value(value: object, m: Callable[[ProcessId], ProcessId]) -> object:
    """One value as a canonical nested tuple of primitives.

    ``m`` maps process ids (identity for plain fingerprints).  The
    rules mirror how the package stores state: bare ints outside the
    known pid positions are protocol quantities (session numbers, view
    sequences) and are never remapped; sets of ints *are* pid sets and
    int-keyed dicts *are* pid-keyed tables (true for every algorithm
    attribute — the one exception, the checker's session-keyed chain,
    is encoded explicitly by :func:`canonical_driver_state`).  Unknown
    types raise ``TypeError`` so a future state attribute cannot be
    silently mis-encoded.
    """
    if value is None or isinstance(value, (bool, int, str, float)):
        return value
    if isinstance(value, Session):
        return ("session", value.number, _sorted_pids(value.members, m))
    if isinstance(value, View):
        return ("view", value.seq, _sorted_pids(value.members, m))
    if isinstance(value, StateItem):
        return (
            "stateitem",
            value.session_number,
            tuple(encode_value(s, m) for s in value.ambiguous),
            encode_value(value.last_primary, m),
            tuple(
                sorted((m(p), encode_value(s, m)) for p, s in value.last_formed)
            ),
        )
    if isinstance(value, KnowledgeBook):
        return (
            "knowledge",
            m(value._owner),
            tuple(
                sorted(
                    (
                        (encode_value(s, m), _sorted_pids(members, m))
                        for s, members in value._not_formed.items()
                    ),
                    key=repr,
                )
            ),
            tuple(sorted((encode_value(s, m) for s in value._formed), key=repr)),
        )
    if isinstance(value, (set, frozenset)):
        if all(isinstance(v, int) and not isinstance(v, bool) for v in value):
            return ("pids", _sorted_pids(value, m))
        return ("set", tuple(sorted((encode_value(v, m) for v in value), key=repr)))
    if isinstance(value, dict):
        if value and all(
            isinstance(k, int) and not isinstance(k, bool) for k in value
        ):
            return (
                "pidmap",
                tuple(
                    sorted(
                        (m(k), encode_value(v, m)) for k, v in value.items()
                    )
                ),
            )
        return (
            "map",
            tuple(
                sorted(
                    (
                        (encode_value(k, m), encode_value(v, m))
                        for k, v in value.items()
                    ),
                    key=lambda pair: repr(pair[0]),
                )
            ),
        )
    if isinstance(value, (list, tuple)):
        return ("seq", tuple(encode_value(v, m) for v in value))
    if is_dataclass(value) and not isinstance(value, type):
        encoded = []
        for f in fields(value):
            v = getattr(value, f.name)
            if f.name in _PID_FIELD_NAMES and isinstance(v, int):
                encoded.append((f.name, m(v)))
            else:
                encoded.append((f.name, encode_value(v, m)))
        return ("dc", type(value).__name__, tuple(encoded))
    raise TypeError(
        f"cannot canonically encode {type(value).__name__!r}; add an "
        "explicit rule to repro.sim.statehash before relying on state "
        "hashing for it"
    )


def encode_algorithm(
    algorithm: PrimaryComponentAlgorithm,
    mapping: Optional[Dict[ProcessId, ProcessId]] = None,
) -> tuple:
    """One process's complete algorithm state, canonically encoded.

    Walks the live ``__dict__`` (attribute-name order), so mid-protocol
    volatile state — half-filled exchanges, queued items, pending
    attempts, ballots — is all captured; nothing behaviour-relevant can
    be missed by construction, because every attribute is encoded or
    the encoder raises.
    """
    m = _as_mapper(mapping)
    state = vars(algorithm)
    encoded = []
    for name in sorted(state):
        value = state[name]
        if name == "pid":
            encoded.append((name, m(value)))
        elif name in _PID_PAIR_LIST_ATTRS:
            encoded.append(
                (name, tuple((m(p), encode_value(item, m)) for p, item in value))
            )
        else:
            encoded.append((name, encode_value(value, m)))
    return ("algorithm", type(algorithm).__name__, tuple(encoded))


def _encode_topology(
    topology: Topology, m: Callable[[ProcessId], ProcessId]
) -> tuple:
    return (
        "topology",
        tuple(sorted(_sorted_pids(c, m) for c in topology.components)),
        _sorted_pids(topology.crashed, m),
    )


def canonical_driver_state(
    driver, mapping: Optional[Dict[ProcessId, ProcessId]] = None
) -> tuple:
    """The whole system as a canonical nested tuple of primitives.

    Covers exactly the behaviour-determining state: topology, view
    sequence counter (future views draw from it), every algorithm's
    full state, and the invariant checker's accumulated formation chain
    (keyed by session number — those keys are protocol quantities and
    are *not* remapped; the member sets are).  Round counters, recorded
    schedules and the fault RNG are excluded: the explorer never
    consumes the RNG (all cuts are explicit) and the counters are
    bookkeeping only, so states differing only there behave
    identically.
    """
    m = _as_mapper(mapping)
    checker = driver.checker
    chain = tuple(
        sorted(
            (order_key, _sorted_pids(members, m))
            for order_key, members in checker._chain.items()
        )
    )
    algorithms = tuple(
        sorted(
            (m(pid), encode_algorithm(alg, mapping))
            for pid, alg in driver.algorithms.items()
        )
    )
    return (
        "driver",
        _encode_topology(driver.topology, m),
        driver.view_seq,
        algorithms,
        ("chain", chain),
    )


def state_fingerprint(driver) -> tuple:
    """A hashable memo key: equal iff the states are identical.

    This *is* the canonical encoding (nested tuples hash fast and need
    no serialization); use :func:`state_digest` when a compact stable
    string is wanted instead.
    """
    return canonical_driver_state(driver, None)


def state_digest(driver) -> str:
    """Stable SHA-256 hex digest of the canonical state encoding."""
    return hashlib.sha256(
        repr(canonical_driver_state(driver, None)).encode("utf-8")
    ).hexdigest()


def _is_view_node(node: object) -> bool:
    return (
        isinstance(node, tuple)
        and len(node) == 3
        and node[0] == "view"
        and isinstance(node[1], int)
        and isinstance(node[2], tuple)
    )


def _collect_view_seqs(node: object, by_members: Dict[tuple, set]) -> None:
    if isinstance(node, tuple):
        if _is_view_node(node):
            by_members.setdefault(node[2], set()).add(node[1])
        for child in node:
            _collect_view_seqs(child, by_members)


def normalize_view_seqs(encoded: tuple) -> tuple:
    """An encoding with raw view sequence numbers quotiented out.

    Every ``("view", seq, members)`` node has its seq replaced by the
    rank of that seq among the seqs carried by views with the *same*
    member set anywhere in the encoding.  Views over identical members
    are never same-round siblings (siblings are the disjoint halves of
    a partition), so their seq order is pure install-time order, which
    relabeling preserves — the replacement is exactly equivariant.
    Containers the encoder sorted by ``repr`` are re-sorted, since the
    rewrite can reorder them.

    The quotient deliberately erases the *cross*-member creation order
    (the part the driver's raw-pid tie-break makes arbitrary), so it is
    for symmetry comparisons only — the explorer's dedup memo keeps
    using the exact :func:`state_fingerprint`.
    """
    by_members: Dict[tuple, set] = {}
    _collect_view_seqs(encoded, by_members)
    rank = {
        (seq, members): index
        for members, seqs in by_members.items()
        for index, seq in enumerate(sorted(seqs))
    }

    def rewrite(node: object) -> object:
        if not isinstance(node, tuple):
            return node
        if _is_view_node(node):
            return ("view", rank[(node[1], node[2])], node[2])
        children = tuple(rewrite(child) for child in node)
        if len(children) == 2 and children[0] == "set":
            return ("set", tuple(sorted(children[1], key=repr)))
        if len(children) == 2 and children[0] == "map":
            return (
                "map",
                tuple(sorted(children[1], key=lambda pair: repr(pair[0]))),
            )
        if len(children) == 4 and children[0] == "knowledge":
            return (
                "knowledge",
                children[1],
                tuple(sorted(children[2], key=repr)),
                tuple(sorted(children[3], key=repr)),
            )
        return children

    return rewrite(encoded)


def _all_mappings(n_processes: int) -> List[Dict[ProcessId, ProcessId]]:
    universe = tuple(range(n_processes))
    return [
        dict(zip(universe, perm)) for perm in itertools.permutations(universe)
    ]


def symmetric_fingerprint(driver) -> tuple:
    """The minimum quotiented encoding over all process relabelings.

    Two states get the same symmetric fingerprint iff some permutation
    of process ids carries one to the other, up to the induced renaming
    of view sequence numbers (:func:`normalize_view_seqs` — the raw
    numbers are a pid-order artifact of the driver's global counter).
    Exhaustive over ``n!`` permutations — intended for the explorer's
    small systems (n ≤ 5), where it is the collapse of isomorphic
    schedules, not the permutation loop, that dominates.
    """
    best: Optional[tuple] = None
    best_repr = ""
    for mapping in _all_mappings(driver.n_processes):
        encoded = normalize_view_seqs(canonical_driver_state(driver, mapping))
        encoded_repr = repr(encoded)
        if best is None or encoded_repr < best_repr:
            best, best_repr = encoded, encoded_repr
    return best


def canonical_first_step(
    n_processes: int,
    gap: int,
    change: ConnectivityChange,
    late: frozenset,
) -> tuple:
    """Orbit key of a first exploration step under process relabeling.

    From the fully connected, fully symmetric initial state the only
    feasible changes are partitions; a first step's behaviour is
    determined by the quiet gap, the *unordered* split it induces and
    the late-set, all up to renaming.  Steps with equal keys lead to
    isomorphic subtrees, so the explorer runs one representative and
    multiplies (soundness: the enumeration itself is
    permutation-equivariant and availability/violation existence are
    permutation-invariant — see ``docs/model-checking.md``).
    """
    if not isinstance(change, PartitionChange):
        raise TypeError(
            "first-step canonicalization only applies to partitions of "
            "the fully connected initial topology"
        )
    moved = frozenset(change.moved)
    remaining = frozenset(change.component) - moved
    best: Optional[tuple] = None
    best_repr = ""
    for mapping in _all_mappings(n_processes):
        m = mapping.__getitem__
        split = tuple(sorted((_sorted_pids(moved, m), _sorted_pids(remaining, m))))
        key = (gap, split, _sorted_pids(late, m))
        key_repr = repr(key)
        if best is None or key_repr < best_repr:
            best, best_repr = key, key_repr
    return best
